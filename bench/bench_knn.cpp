// E8 — k-NN query latency (table "k-NN latency").
//
// k-nearest-detection queries through the full distributed stack, swept
// over k and worker count, plus a local index-level comparison of the grid
// ring search against a bulk kd-tree. Expected shape: latency grows gently
// with k; worker count adds fan-in cost for k-NN (no spatial pruning is
// possible), so fewer workers are better for this query type.
#include <cinttypes>
#include <memory>

#include "baseline/centralized.h"
#include "bench_util.h"
#include "core/framework.h"
#include "index/kdtree.h"
#include "partition/strategies.h"

namespace stcn {
namespace {

void run() {
  // --quick trims the sweep so CI can validate the bench (and its JSON
  // report) in a couple of seconds.
  double scale = bench::quick() ? 0.5 : 2.0;
  auto minutes = bench::quick() ? Duration::minutes(1) : Duration::minutes(4);
  int center_count = bench::quick() ? 8 : 40;
  std::vector<std::uint32_t> ks =
      bench::quick() ? std::vector<std::uint32_t>{1u, 10u}
                     : std::vector<std::uint32_t>{1u, 10u, 100u};
  std::vector<std::size_t> worker_sweep =
      bench::quick() ? std::vector<std::size_t>{4}
                     : std::vector<std::size_t>{1, 4, 16};

  TraceConfig tc = bench::scenario(scale, minutes);
  Trace trace = TraceGenerator::generate(tc);
  Rect world = trace.roads.bounds(150.0);

  bench::print_header(
      "E8 k-NN latency",
      std::to_string(trace.detections.size()) + " detections");
  bench::BenchReport report("knn");
  report.set("detections", static_cast<double>(trace.detections.size()));

  std::printf("-- distributed stack: wall ms per query (%d queries/cell)\n",
              center_count);
  std::printf("%10s %8s %8s %8s\n", "k \\ workers", "1", "4", "16");
  Rng rng(3);
  std::vector<Point> centers;
  for (int i = 0; i < center_count; ++i) {
    centers.push_back({rng.uniform(world.min.x, world.max.x),
                       rng.uniform(world.min.y, world.max.y)});
  }
  for (std::uint32_t k : ks) {
    std::printf("%10u ", k);
    for (std::size_t workers : worker_sweep) {
      ClusterConfig config;
      config.worker_count = workers;
      Cluster cluster(
          world,
          std::make_unique<SpatialGridStrategy>(world, 4, 4, trace.cameras),
          config);
      cluster.ingest_all(trace.detections);
      bench::WallTimer timer;
      for (Point c : centers) {
        (void)cluster.execute(
            Query::knn(cluster.next_query_id(), c, k, TimeInterval::all()));
      }
      double wall_ms = timer.elapsed_ms() / centers.size();
      std::printf("%8.3f ", wall_ms);
      report.set("wall_ms_per_query_k" + std::to_string(k) + "_w" +
                     std::to_string(workers),
                 wall_ms);
      // Virtual-clock quantiles + the full registry from the largest sweep
      // point (the last cluster built).
      if (k == ks.back() && workers == worker_sweep.back()) {
        report.add_histogram(
            "query_latency_us",
            *cluster.coordinator().metrics().histograms().at(
                "query_latency_us"));
        report.add_registry(cluster.metrics_snapshot());
      }
    }
    std::printf("\n");
  }

  std::printf("\n-- index-level: grid ring search vs kd-tree (us per query)\n");
  CentralizedIndex central(world);
  central.ingest_all(trace.detections);
  std::vector<KdTree::Item> items;
  items.reserve(trace.detections.size());
  for (const Detection& d : trace.detections) {
    items.push_back({d.position, d.id.value()});
  }
  KdTree tree(items);
  std::printf("%10s %12s %12s\n", "k", "grid_us", "kdtree_us");
  for (std::size_t k : {1, 10, 100}) {
    bench::WallTimer grid_timer;
    for (Point c : centers) {
      (void)central.indexes().grid.query_knn(central.indexes().store, c, k,
                                             TimeInterval::all());
    }
    double grid_us = grid_timer.elapsed_ms() * 1000.0 / centers.size();
    bench::WallTimer kd_timer;
    for (Point c : centers) {
      (void)tree.knn(c, k);
    }
    double kd_us = kd_timer.elapsed_ms() * 1000.0 / centers.size();
    std::printf("%10zu %12.1f %12.1f\n", k, grid_us, kd_us);
    report.set("grid_us_k" + std::to_string(k), grid_us);
    report.set("kdtree_us_k" + std::to_string(k), kd_us);
  }
  std::printf(
      "\nexpected shape: latency grows mildly with k; k-NN cannot prune\n"
      "partitions, so more workers add fan-in cost rather than speedup.\n");

  // -- EXPLAIN/ANALYZE showcase: one planner-assisted k-NN, profiled.
  // Range queries warm the selectivity estimator first so the plan carries
  // real estimates; the profile lands in the report ("explain" section)
  // with the coordinator's planner-calibration quantiles alongside.
  {
    ClusterConfig config;
    config.worker_count = 4;
    Cluster cluster(
        world,
        std::make_unique<SpatialGridStrategy>(world, 4, 4, trace.cameras),
        config);
    cluster.ingest_all(trace.detections);
    Rng warm_rng(11);
    for (int i = 0; i < 12; ++i) {
      Rect region = Rect::centered(
          {warm_rng.uniform(world.min.x, world.max.x),
           warm_rng.uniform(world.min.y, world.max.y)},
          warm_rng.uniform(100.0, 600.0));
      (void)cluster.execute(
          Query::range(cluster.next_query_id(), region, TimeInterval::all()));
    }
    Cluster::ExplainResult explained = cluster.explain(Query::knn(
        cluster.next_query_id(), centers.front(), 10, TimeInterval::all()));
    std::printf("\n-- EXPLAIN ANALYZE: adaptive k-NN, k=10\n%s",
                explained.profile.render().c_str());
    report.add_section("explain", explained.profile.to_json());
    report.set("explain_stage_count",
               static_cast<double>(explained.profile.stages.size()));
    report.set("explain_total_pruned",
               static_cast<double>(explained.profile.total_pruned()));
    report.set("explain_worst_q_error", explained.profile.worst_q_error());
    const LatencyHistogram& est =
        *cluster.coordinator().metrics().histograms().at(
            "estimate_q_error_x100");
    report.set("estimate_q_error_p50", est.p50() / 100.0);
    report.set("estimate_q_error_p95", est.p95() / 100.0);
    const LatencyHistogram& plan =
        *cluster.coordinator().metrics().histograms().at(
            "knn_plan_q_error_x100");
    report.set("knn_plan_q_error_p50", plan.p50() / 100.0);
    report.set("knn_plan_q_error_p95", plan.p95() / 100.0);
    std::printf(
        "planner calibration: estimate q-error p50=%.2f p95=%.2f, "
        "k-NN plan q-error p50=%.2f p95=%.2f\n",
        est.p50() / 100.0, est.p95() / 100.0, plan.p50() / 100.0,
        plan.p95() / 100.0);
  }
  report.write();
}

}  // namespace
}  // namespace stcn

int main(int argc, char** argv) {
  stcn::bench::parse_args(argc, argv);
  stcn::run();
  return 0;
}
