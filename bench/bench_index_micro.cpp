// E10 — Index micro-benchmarks (table "index microbench").
//
// Three parts:
//  * A before/after "columnar" section comparing the block-skipping
//    DetectionStore scan against a retained reference scan over the
//    array-of-structs layout it replaced, plus the batched appearance
//    kernel against the scalar per-pair dot. Emits speedups and the
//    blocks_skipped_ratio into BENCH_index_micro.json (--quick runs only
//    the report sections, at reduced size, for CI).
//  * A "vectorized" section comparing the morsel-driven vectorized scan
//    and dense heatmap aggregation against the per-row scalar paths they
//    replaced (vectorized_scan_speedup / heatmap_speedup).
//  * google-benchmark timings of the substrate data structures: grid-index
//    insert and queries at several selectivities, kd-tree build/k-NN,
//    temporal-store camera windows, trajectory lookup, and the wire codecs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/appearance_kernel.h"
#include "common/filter_kernel.h"
#include "common/rng.h"
#include "core/protocol.h"
#include "index/grid_index.h"
#include "index/kdtree.h"
#include "index/temporal_store.h"
#include "index/trajectory_store.h"
#include "obs/json.h"

namespace stcn {
namespace {

Detection random_detection(Rng& rng, std::uint64_t id) {
  Detection d;
  d.id = DetectionId(id);
  d.camera = CameraId(1 + rng.uniform_index(100));
  d.object = ObjectId(1 + rng.uniform_index(500));
  d.time = TimePoint(rng.uniform_int(0, 600'000'000));
  d.position = {rng.uniform(0, 2000), rng.uniform(0, 2000)};
  d.appearance.values.resize(16);
  for (auto& v : d.appearance.values) v = static_cast<float>(rng.normal());
  d.appearance.normalize();
  return d;
}

GridIndexConfig grid_config() { return {Rect{{0, 0}, {2000, 2000}}, 50.0}; }

struct Dataset {
  DetectionStore store;
  std::vector<DetectionRef> refs;
  std::vector<Detection> raw;

  explicit Dataset(std::size_t n) {
    Rng rng(7);
    for (std::uint64_t i = 1; i <= n; ++i) {
      Detection d = random_detection(rng, i);
      raw.push_back(d);
      refs.push_back(store.append(d));
    }
  }
};

Dataset& dataset() {
  static Dataset ds(100'000);
  return ds;
}

void BM_GridInsert(benchmark::State& state) {
  Dataset& ds = dataset();
  for (auto _ : state) {
    state.PauseTiming();
    GridIndex index(grid_config());
    state.ResumeTiming();
    for (std::size_t i = 0; i < static_cast<std::size_t>(state.range(0));
         ++i) {
      index.insert(ds.store, ds.refs[i]);
    }
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GridInsert)->Arg(1000)->Arg(10'000)->Arg(100'000);

void BM_GridRangeQuery(benchmark::State& state) {
  Dataset& ds = dataset();
  GridIndex index(grid_config());
  for (DetectionRef r : ds.refs) index.insert(ds.store, r);
  double half = static_cast<double>(state.range(0));
  Rng rng(9);
  for (auto _ : state) {
    Rect region = Rect::centered(
        {rng.uniform(0, 2000), rng.uniform(0, 2000)}, half);
    auto out = index.query_range(ds.store, region, TimeInterval::all());
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_GridRangeQuery)->Arg(25)->Arg(100)->Arg(400)->Arg(1000);

void BM_GridKnn(benchmark::State& state) {
  Dataset& ds = dataset();
  GridIndex index(grid_config());
  for (DetectionRef r : ds.refs) index.insert(ds.store, r);
  auto k = static_cast<std::size_t>(state.range(0));
  Rng rng(10);
  for (auto _ : state) {
    Point center{rng.uniform(0, 2000), rng.uniform(0, 2000)};
    auto out = index.query_knn(ds.store, center, k, TimeInterval::all());
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_GridKnn)->Arg(1)->Arg(10)->Arg(100);

void BM_KdTreeBuild(benchmark::State& state) {
  Dataset& ds = dataset();
  std::vector<KdTree::Item> items;
  for (std::size_t i = 0; i < static_cast<std::size_t>(state.range(0)); ++i) {
    items.push_back({ds.raw[i].position, i});
  }
  for (auto _ : state) {
    KdTree tree(items);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KdTreeBuild)->Arg(10'000)->Arg(100'000);

void BM_KdTreeKnn(benchmark::State& state) {
  Dataset& ds = dataset();
  std::vector<KdTree::Item> items;
  items.reserve(ds.raw.size());
  for (std::size_t i = 0; i < ds.raw.size(); ++i) {
    items.push_back({ds.raw[i].position, i});
  }
  KdTree tree(std::move(items));
  auto k = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  for (auto _ : state) {
    auto out = tree.knn({rng.uniform(0, 2000), rng.uniform(0, 2000)}, k);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_KdTreeKnn)->Arg(1)->Arg(10)->Arg(100);

void BM_TemporalCameraWindow(benchmark::State& state) {
  Dataset& ds = dataset();
  TemporalStore temporal;
  for (DetectionRef r : ds.refs) temporal.insert(ds.store, r);
  Rng rng(12);
  for (auto _ : state) {
    CameraId cam(1 + rng.uniform_index(100));
    TimePoint begin(rng.uniform_int(0, 500'000'000));
    auto out = temporal.query_camera(
        cam, {begin, begin + Duration::seconds(60)});
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_TemporalCameraWindow);

void BM_TrajectoryQuery(benchmark::State& state) {
  Dataset& ds = dataset();
  TrajectoryStore trajectories;
  for (DetectionRef r : ds.refs) trajectories.insert(ds.store, r);
  Rng rng(13);
  for (auto _ : state) {
    ObjectId obj(1 + rng.uniform_index(500));
    auto out = trajectories.query(obj, TimeInterval::all());
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_TrajectoryQuery);

void BM_DetectionEncode(benchmark::State& state) {
  Dataset& ds = dataset();
  std::size_t i = 0;
  for (auto _ : state) {
    BinaryWriter w;
    serialize(w, ds.raw[i++ % ds.raw.size()]);
    benchmark::DoNotOptimize(w.size());
  }
}
BENCHMARK(BM_DetectionEncode);

void BM_DetectionDecode(benchmark::State& state) {
  Dataset& ds = dataset();
  BinaryWriter w;
  serialize(w, ds.raw[0]);
  auto bytes = w.take();
  for (auto _ : state) {
    BinaryReader r(bytes);
    Detection d = deserialize_detection(r);
    benchmark::DoNotOptimize(d.id);
  }
}
BENCHMARK(BM_DetectionDecode);

// ------------------------------------------------------ columnar section
//
// Before/after comparison against the layout the columnar store replaced:
// an array-of-structs vector<Detection> scanned record by record. The
// workload is selective range queries (narrow time window over
// near-time-ordered ingest), where zone maps skip most blocks wholesale.

struct ColumnarReport {
  double ref_ms = 0;
  double col_ms = 0;
  double scan_speedup = 0;
  double blocks_skipped_ratio = 0;
  std::uint64_t blocks_scanned = 0;
  std::uint64_t blocks_skipped = 0;
  double kernel_scalar_ms = 0;
  double kernel_batched_ms = 0;
  double kernel_speedup = 0;
  std::size_t rows = 0;
  std::size_t queries = 0;
  std::size_t matched = 0;
};

ColumnarReport run_columnar_section() {
  ColumnarReport rep;
  rep.rows = bench::quick() ? 16 * kDetectionBlockRows
                            : 64 * kDetectionBlockRows;
  rep.queries = bench::quick() ? 200 : 500;
  const std::int64_t time_span = 600'000'000;  // 10 simulated minutes
  const std::int64_t step = time_span / static_cast<std::int64_t>(rep.rows);

  // Near-time-ordered ingest (the realistic arrival pattern: bounded
  // reordering from network jitter), random positions.
  Rng rng(7);
  DetectionStore store;
  std::vector<Detection> reference;  // the pre-change AoS layout, retained
  reference.reserve(rep.rows);
  for (std::size_t i = 0; i < rep.rows; ++i) {
    Detection d;
    d.id = DetectionId(i + 1);
    d.camera = CameraId(1 + rng.uniform_index(100));
    d.object = ObjectId(1 + rng.uniform_index(500));
    d.time = TimePoint(static_cast<std::int64_t>(i) * step +
                       rng.uniform_int(0, 4 * step));
    d.position = {rng.uniform(0, 2000), rng.uniform(0, 2000)};
    d.appearance.values.resize(16);
    for (auto& v : d.appearance.values) v = static_cast<float>(rng.normal());
    d.appearance.normalize();
    reference.push_back(d);
    (void)store.append(d);
  }

  // Selective workload: ~1% time window, 400 m square — the "find what
  // happened near X in that minute" query shape.
  std::vector<Rect> regions;
  std::vector<TimeInterval> windows;
  Rng qrng(21);
  for (std::size_t q = 0; q < rep.queries; ++q) {
    regions.push_back(Rect::centered(
        {qrng.uniform(200, 1800), qrng.uniform(200, 1800)}, 200));
    std::int64_t begin = qrng.uniform_int(0, time_span - time_span / 100);
    windows.push_back(
        {TimePoint(begin), TimePoint(begin + time_span / 100)});
  }

  // Before: naive reference scan over the AoS records.
  std::size_t ref_matched = 0;
  bench::WallTimer ref_timer;
  for (std::size_t q = 0; q < rep.queries; ++q) {
    for (const Detection& d : reference) {
      if (regions[q].contains(d.position) && windows[q].contains(d.time)) {
        ++ref_matched;
      }
    }
  }
  rep.ref_ms = ref_timer.elapsed_ms();

  // After: columnar scan with zone-map block skipping.
  std::size_t col_matched = 0;
  bench::WallTimer col_timer;
  for (std::size_t q = 0; q < rep.queries; ++q) {
    col_matched += store.scan_range(regions[q], windows[q]).size();
  }
  rep.col_ms = col_timer.elapsed_ms();
  if (col_matched != ref_matched) {
    std::fprintf(stderr, "MISMATCH: columnar %zu vs reference %zu\n",
                 col_matched, ref_matched);
  }
  rep.matched = col_matched;
  rep.scan_speedup = rep.col_ms > 0 ? rep.ref_ms / rep.col_ms : 0;
  rep.blocks_scanned = store.blocks_scanned();
  rep.blocks_skipped = store.blocks_skipped();
  std::uint64_t visited = rep.blocks_scanned + rep.blocks_skipped;
  rep.blocks_skipped_ratio =
      visited > 0 ? static_cast<double>(rep.blocks_skipped) /
                        static_cast<double>(visited)
                  : 0;

  // Kernel before/after: scalar per-pair similarity vs one batched pass
  // over the candidates (the re-id scoring hot loop).
  const std::size_t dim = 16;
  const std::size_t rounds = bench::quick() ? 20 : 50;
  AppearanceFeature probe = reference[0].appearance;
  double scalar_sum = 0;
  bench::WallTimer scalar_timer;
  for (std::size_t r = 0; r < rounds; ++r) {
    for (const Detection& d : reference) {
      scalar_sum += probe.similarity(d.appearance);
    }
  }
  rep.kernel_scalar_ms = scalar_timer.elapsed_ms();
  std::vector<const float*> ptrs;
  ptrs.reserve(reference.size());
  for (const Detection& d : reference) {
    ptrs.push_back(d.appearance.values.data());
  }
  std::vector<double> sims(reference.size());
  double batched_sum = 0;
  bench::WallTimer batched_timer;
  for (std::size_t r = 0; r < rounds; ++r) {
    appearance_score_batch(probe.values.data(), dim, ptrs.data(),
                           ptrs.size(), sims.data());
    for (double s : sims) batched_sum += s;
  }
  rep.kernel_batched_ms = batched_timer.elapsed_ms();
  if (std::abs(scalar_sum - batched_sum) >
      1e-6 * static_cast<double>(rounds * reference.size())) {
    std::fprintf(stderr, "KERNEL MISMATCH: %f vs %f\n", scalar_sum,
                 batched_sum);
  }
  rep.kernel_speedup = rep.kernel_batched_ms > 0
                           ? rep.kernel_scalar_ms / rep.kernel_batched_ms
                           : 0;
  return rep;
}

// ---------------------------------------------------- vectorized section
//
// Before/after comparison inside the columnar store itself: the per-row
// scalar block scan this change replaced (retained as scan_range_scalar,
// the differential-test reference) against the morsel-driven vectorized
// scan, and the old per-row std::map heatmap aggregation (the executor's
// previous behaviour: materialize refs, then tree-insert per row) against
// the selection-vector dense-grid aggregation the executor now uses.
//
// The scan workload is zone-selective (time windows prune ~3/4 of blocks
// over near-time-ordered ingest) with an unpredictable spatial residue,
// so surviving morsels split between the fully-inside fast path and the
// branch-free filter kernels.

struct VectorizedReport {
  std::size_t rows = 0;
  std::size_t scan_queries = 0;
  std::size_t heatmap_queries = 0;
  std::size_t matched = 0;
  double scalar_scan_ms = 0;
  double vectorized_scan_ms = 0;
  double vectorized_scan_speedup = 0;
  double heatmap_map_ms = 0;
  double heatmap_dense_ms = 0;
  double heatmap_speedup = 0;
  std::uint64_t rows_evaluated = 0;
  std::uint64_t rows_selected = 0;
  std::uint64_t zone_fast_path = 0;
  std::uint64_t morsels = 0;
  std::uint64_t heatmap_rows = 0;
};

VectorizedReport run_vectorized_section() {
  VectorizedReport rep;
  const std::size_t blocks = bench::quick() ? 16 : 64;
  rep.rows = blocks * kDetectionBlockRows;
  rep.scan_queries = bench::quick() ? 150 : 400;
  rep.heatmap_queries = bench::quick() ? 20 : 50;
  const std::int64_t time_span = 600'000'000;
  const std::int64_t step = time_span / static_cast<std::int64_t>(rep.rows);
  const Rect world{{0, 0}, {2000, 2000}};

  // Same near-time-ordered arrival pattern as the columnar section; the
  // scan path never touches appearance features, so none are generated.
  Rng rng(7);
  DetectionStore store;
  for (std::size_t i = 0; i < rep.rows; ++i) {
    Detection d;
    d.id = DetectionId(i + 1);
    d.camera = CameraId(1 + rng.uniform_index(100));
    d.object = ObjectId(1 + rng.uniform_index(500));
    d.time = TimePoint(static_cast<std::int64_t>(i) * step +
                       rng.uniform_int(0, 4 * step));
    d.position = {rng.uniform(0, 2000), rng.uniform(0, 2000)};
    (void)store.append(d);
  }

  // Zone-selective scan workload: time windows covering 1/4 of the span,
  // so zone maps skip ~3/4 of blocks either way. Two in three queries
  // carry a random sub-rect whose per-row pass rate (~10–80%) the scalar
  // scan's per-row branch cannot predict — the selectivity regime the
  // branch-free kernels serve — and every third query is spatially
  // unbounded, exercising the fully-inside fast path.
  const std::int64_t width = time_span / 4;
  std::vector<Rect> regions;
  std::vector<TimeInterval> windows;
  Rng qrng(33);
  for (std::size_t q = 0; q < rep.scan_queries; ++q) {
    std::int64_t begin = qrng.uniform_int(0, time_span - width);
    windows.push_back({TimePoint(begin), TimePoint(begin + width)});
    if (q % 3 == 0) {
      regions.push_back(world);
    } else {
      regions.push_back(Rect::centered(
          {qrng.uniform(400, 1600), qrng.uniform(400, 1600)},
          qrng.uniform(300, 900)));
    }
  }
  const std::size_t warmup = std::min<std::size_t>(8, rep.scan_queries);

  // Before: the per-row scalar block scan (pre-change code path).
  std::size_t scalar_matched = 0;
  for (std::size_t q = 0; q < warmup; ++q) {
    (void)store.scan_range_scalar(regions[q], windows[q]).size();
  }
  bench::WallTimer scalar_timer;
  for (std::size_t q = 0; q < rep.scan_queries; ++q) {
    scalar_matched += store.scan_range_scalar(regions[q], windows[q]).size();
  }
  rep.scalar_scan_ms = scalar_timer.elapsed_ms();

  // After: the morsel-driven vectorized scan.
  std::size_t vec_matched = 0;
  MorselStats ms;
  for (std::size_t q = 0; q < warmup; ++q) {
    (void)store.scan_range(regions[q], windows[q]).size();
  }
  bench::WallTimer vec_timer;
  for (std::size_t q = 0; q < rep.scan_queries; ++q) {
    vec_matched += store.scan_range(regions[q], windows[q], &ms).size();
  }
  rep.vectorized_scan_ms = vec_timer.elapsed_ms();
  if (vec_matched != scalar_matched) {
    std::fprintf(stderr, "VECTORIZED MISMATCH: %zu vs scalar %zu\n",
                 vec_matched, scalar_matched);
  }
  rep.matched = vec_matched;
  rep.vectorized_scan_speedup =
      rep.vectorized_scan_ms > 0 ? rep.scalar_scan_ms / rep.vectorized_scan_ms
                                 : 0;
  rep.rows_evaluated = ms.rows_evaluated;
  rep.rows_selected = ms.rows_selected;
  rep.zone_fast_path = ms.zone_fast_path;
  rep.morsels = ms.morsels;

  // Heatmap workload: broad aggregations (full world, 25% time windows)
  // into a 40x40 cell grid — the query shape the dense selection-vector
  // aggregation serves.
  const double cell = 50.0;
  const std::uint64_t cols = 40;
  const std::uint64_t grid_rows = 40;
  std::vector<TimeInterval> hwindows;
  for (std::size_t q = 0; q < rep.heatmap_queries; ++q) {
    std::int64_t begin = qrng.uniform_int(0, time_span - time_span / 4);
    hwindows.push_back({TimePoint(begin), TimePoint(begin + time_span / 4)});
  }
  std::span<const double> xs = store.x_column();
  std::span<const double> ys = store.y_column();

  // Before: materialize refs, then per-row tree inserts into a std::map
  // keyed by cell (the executor's previous aggregation).
  std::vector<std::map<std::uint64_t, std::uint64_t>> map_results;
  bench::WallTimer map_timer;
  for (std::size_t q = 0; q < rep.heatmap_queries; ++q) {
    std::map<std::uint64_t, std::uint64_t> counts;
    for (DetectionRef r : store.scan_range_scalar(world, hwindows[q])) {
      std::size_t row = to_index(r);
      auto cx = static_cast<std::uint64_t>(xs[row] / cell);
      auto cy = static_cast<std::uint64_t>(ys[row] / cell);
      ++counts[cy * cols + cx];
    }
    map_results.push_back(std::move(counts));
  }
  rep.heatmap_map_ms = map_timer.elapsed_ms();

  // After: block-granular scan into selection vectors, accumulated into a
  // dense cell grid, folded to the sparse result at the end.
  bool heatmap_parity = true;
  std::vector<std::uint64_t> dense(cols * grid_rows);
  std::uint32_t sel[kDetectionBlockRows];
  bench::WallTimer dense_timer;
  for (std::size_t q = 0; q < rep.heatmap_queries; ++q) {
    std::fill(dense.begin(), dense.end(), 0);
    MorselStats hms;
    for (std::size_t b = 0; b < store.block_count(); ++b) {
      std::uint32_t n = store.scan_range_block(b, world, hwindows[q], sel, hms);
      heatmap_accumulate(xs.data(), ys.data(), 0, sel, n, {0, 0}, cell, cols,
                         dense.data());
    }
    std::map<std::uint64_t, std::uint64_t> counts;
    for (std::uint64_t c = 0; c < dense.size(); ++c) {
      if (dense[c] != 0) {
        counts[c] = dense[c];
        rep.heatmap_rows += dense[c];
      }
    }
    heatmap_parity = heatmap_parity && counts == map_results[q];
  }
  rep.heatmap_dense_ms = dense_timer.elapsed_ms();
  if (!heatmap_parity) {
    std::fprintf(stderr, "HEATMAP MISMATCH: dense != map aggregation\n");
  }
  rep.heatmap_speedup = rep.heatmap_dense_ms > 0
                            ? rep.heatmap_map_ms / rep.heatmap_dense_ms
                            : 0;
  return rep;
}

// --------------------------------------------------- compression section
//
// The tiered cold path: how much smaller a sealed block gets once encoded
// (FOR/dictionary/quantized columns + int8 embeddings), what decode-fused
// scans cost relative to the same scan over hot columns, and what the int8
// appearance kernel buys over decode-to-float + float dot — with its error
// against the exact float scores and the documented bound those errors
// must stay inside.

struct CompressionReport {
  std::size_t rows = 0;
  std::size_t dim = 0;
  double raw_bytes_per_row = 0;
  double cold_bytes_per_row = 0;
  double compression_ratio = 0;
  std::size_t scan_queries = 0;
  std::size_t matched = 0;
  double hot_scan_ms = 0;
  double cold_scan_ms = 0;
  double cold_hot_scan_ratio = 0;
  std::uint64_t cold_blocks_scanned = 0;
  std::uint64_t cold_blocks_skipped = 0;
  std::uint64_t decode_morsels = 0;
  double float_score_ms = 0;      // decode embeddings, then float dots
  double quantized_score_ms = 0;  // int8 dots on the stored codes
  double quantized_speedup = 0;
  double quantized_rmse = 0;
  double quantized_max_err = 0;
  double quantized_bound = 0;  // largest documented per-pair bound
};

CompressionReport run_compression_section() {
  CompressionReport rep;
  const std::size_t blocks = bench::quick() ? 8 : 32;
  rep.rows = blocks * kDetectionBlockRows;
  rep.dim = 64;  // production re-id feature width; the embedding arena
                 // dominates the raw footprint at this dim
  rep.scan_queries = bench::quick() ? 150 : 400;
  const std::int64_t step = 1000;  // ~1 ms between detections
  const std::int64_t time_span = static_cast<std::int64_t>(rep.rows) * step;

  // Same near-time-ordered arrival as the sections above; one copy kept
  // raw for exact-score references, one store left hot, one demoted cold.
  Rng rng(7);
  std::vector<Detection> raws;
  raws.reserve(rep.rows);
  DetectionStore hot_store;
  DetectionStore cold_store;
  for (std::size_t i = 0; i < rep.rows; ++i) {
    Detection d;
    d.id = DetectionId(i + 1);
    d.camera = CameraId(1 + rng.uniform_index(100));
    d.object = ObjectId(1 + rng.uniform_index(500));
    d.time = TimePoint(static_cast<std::int64_t>(i) * step +
                       rng.uniform_int(0, 4 * step));
    d.position = {rng.uniform(0, 2000), rng.uniform(0, 2000)};
    d.confidence = rng.uniform(0, 1);
    d.appearance.values.resize(rep.dim);
    for (auto& v : d.appearance.values) v = static_cast<float>(rng.normal());
    d.appearance.normalize();
    raws.push_back(d);
    (void)hot_store.append(d);
    (void)cold_store.append(d);
  }
  cold_store.set_tier_config({true, 0});  // demote every sealed block
  if (cold_store.cold_block_count() != blocks) {
    std::fprintf(stderr, "COLD TIER MISMATCH: %zu blocks cold, want %zu\n",
                 cold_store.cold_block_count(), blocks);
  }

  // Footprint: live hot bytes per row (columns + embedding arena + zones,
  // no allocator slack) against the encoded block bytes per row.
  double raw_live =
      static_cast<double>(rep.rows) * (8.0 * sizeof(std::uint64_t) +
                                       static_cast<double>(rep.dim) *
                                           sizeof(float)) +
      static_cast<double>(hot_store.block_count() *
                          sizeof(DetectionBlockZone));
  rep.raw_bytes_per_row = raw_live / static_cast<double>(rep.rows);
  rep.cold_bytes_per_row = static_cast<double>(cold_store.compressed_bytes()) /
                           static_cast<double>(rep.rows);
  rep.compression_ratio = rep.raw_bytes_per_row / rep.cold_bytes_per_row;

  // Selective scans (~1% time window, 400 m square) over identical zone
  // maps: the cold store pays decode-fused kernels on the blocks that
  // survive skipping, the hot store scans its columns directly.
  std::vector<Rect> regions;
  std::vector<TimeInterval> windows;
  Rng qrng(21);
  for (std::size_t q = 0; q < rep.scan_queries; ++q) {
    regions.push_back(Rect::centered(
        {qrng.uniform(200, 1800), qrng.uniform(200, 1800)}, 200));
    std::int64_t begin = qrng.uniform_int(0, time_span - time_span / 100);
    windows.push_back(
        {TimePoint(begin), TimePoint(begin + time_span / 100)});
  }
  const std::size_t warmup = std::min<std::size_t>(8, rep.scan_queries);
  std::size_t hot_matched = 0;
  for (std::size_t q = 0; q < warmup; ++q) {
    (void)hot_store.scan_range(regions[q], windows[q]).size();
  }
  bench::WallTimer hot_timer;
  for (std::size_t q = 0; q < rep.scan_queries; ++q) {
    hot_matched += hot_store.scan_range(regions[q], windows[q]).size();
  }
  rep.hot_scan_ms = hot_timer.elapsed_ms();

  std::size_t cold_matched = 0;
  MorselStats ms;
  for (std::size_t q = 0; q < warmup; ++q) {
    (void)cold_store.scan_range(regions[q], windows[q]).size();
  }
  bench::WallTimer cold_timer;
  for (std::size_t q = 0; q < rep.scan_queries; ++q) {
    cold_matched += cold_store.scan_range(regions[q], windows[q], &ms).size();
  }
  rep.cold_scan_ms = cold_timer.elapsed_ms();
  // Positions requantize at ~1 µm; a differing match count would mean a
  // detection sitting within that of a query border, which these random
  // queries cannot produce.
  if (cold_matched != hot_matched) {
    std::fprintf(stderr, "COLD SCAN MISMATCH: %zu vs hot %zu\n",
                 cold_matched, hot_matched);
  }
  rep.matched = cold_matched;
  rep.cold_hot_scan_ratio =
      rep.hot_scan_ms > 0 ? rep.cold_scan_ms / rep.hot_scan_ms : 0;
  rep.cold_blocks_scanned = ms.cold_blocks_scanned;
  rep.cold_blocks_skipped = ms.cold_blocks_skipped;
  rep.decode_morsels = ms.decode_morsels;

  // Appearance scoring on cold rows: the pre-change path decodes each
  // block's int8 arena back to floats and runs the float kernel; the
  // quantized path dots the stored codes directly (int8×int8 in int32,
  // closed-form cross terms).
  const std::size_t rounds = bench::quick() ? 10 : 25;
  const AppearanceFeature& probe = raws[0].appearance;
  std::vector<std::int8_t> probe_codes(rep.dim);
  EmbeddingQuantParams probe_q =
      quantize_embedding(probe.values.data(), rep.dim, probe_codes.data());
  std::vector<float> decoded(kDetectionBlockRows * rep.dim);
  std::vector<double> sims(kDetectionBlockRows);
  double float_sum = 0;
  bench::WallTimer float_timer;
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t b = 0; b < blocks; ++b) {
      const CompressedBlock& cb = cold_store.cold_block(b);
      for (std::uint32_t i = 0; i < cb.rows; ++i) {
        cb.decode_embedding(i, decoded.data() + i * rep.dim);
      }
      appearance_score_batch_contiguous(probe.values.data(), rep.dim,
                                        decoded.data(), cb.rows, sims.data());
      for (std::uint32_t i = 0; i < cb.rows; ++i) float_sum += sims[i];
    }
  }
  rep.float_score_ms = float_timer.elapsed_ms();

  double quant_sum = 0;
  bench::WallTimer quant_timer;
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t b = 0; b < blocks; ++b) {
      const CompressedBlock& cb = cold_store.cold_block(b);
      const std::int8_t* codes = cb.emb_codes.data();
      for (std::uint32_t i = 0; i < cb.rows; ++i) {
        quant_sum += quantized_dot(probe_codes.data(), probe_q,
                                   codes + cb.emb_begin(i),
                                   cb.quant_params(i), rep.dim);
      }
    }
  }
  rep.quantized_score_ms = quant_timer.elapsed_ms();
  rep.quantized_speedup = rep.quantized_score_ms > 0
                              ? rep.float_score_ms / rep.quantized_score_ms
                              : 0;
  if (std::abs(float_sum - quant_sum) >
      0.1 * static_cast<double>(rounds * rep.rows)) {
    std::fprintf(stderr, "QUANTIZED SUM DIVERGED: %f vs %f\n", quant_sum,
                 float_sum);
  }

  // Error accounting against the exact float dot on the ORIGINAL
  // (pre-quantization) vectors: every per-pair error must sit inside the
  // documented sound bound — that inequality is what makes prefilter +
  // float rescoring exact.
  double sq_err = 0;
  for (std::size_t i = 0; i < rep.rows; ++i) {
    std::size_t b = i / kDetectionBlockRows;
    auto row = static_cast<std::uint32_t>(i % kDetectionBlockRows);
    const CompressedBlock& cb = cold_store.cold_block(b);
    double exact = appearance_dot(probe.values.data(),
                                  raws[i].appearance.values.data(), rep.dim);
    EmbeddingQuantParams p = cb.quant_params(row);
    double approx =
        quantized_dot(probe_codes.data(), probe_q,
                      cb.emb_codes.data() + cb.emb_begin(row), p, rep.dim);
    double bound = quantized_dot_error_bound(probe_q, p, rep.dim);
    double err = std::abs(approx - exact);
    sq_err += err * err;
    rep.quantized_max_err = std::max(rep.quantized_max_err, err);
    rep.quantized_bound = std::max(rep.quantized_bound, bound);
    if (err > bound) {
      std::fprintf(stderr, "QUANTIZED BOUND VIOLATED: row %zu err %g > %g\n",
                   i, err, bound);
    }
  }
  rep.quantized_rmse = std::sqrt(sq_err / static_cast<double>(rep.rows));
  return rep;
}

void write_report(const ColumnarReport& rep, const VectorizedReport& vec,
                  const CompressionReport& comp) {
  bench::print_header("E10", "columnar store vs reference scan");
  std::printf("rows %zu, %zu selective range queries (%zu matches)\n",
              rep.rows, rep.queries, rep.matched);
  std::printf("  reference AoS scan : %9.2f ms\n", rep.ref_ms);
  std::printf("  columnar + zonemap : %9.2f ms   (%.1fx)\n", rep.col_ms,
              rep.scan_speedup);
  std::printf("  blocks scanned %llu / skipped %llu (ratio %.3f)\n",
              static_cast<unsigned long long>(rep.blocks_scanned),
              static_cast<unsigned long long>(rep.blocks_skipped),
              rep.blocks_skipped_ratio);
  std::printf("  kernel scalar %.2f ms vs batched %.2f ms (%.2fx)\n",
              rep.kernel_scalar_ms, rep.kernel_batched_ms,
              rep.kernel_speedup);

  bench::print_header("E10b", "vectorized morsel scan vs scalar block scan");
  std::printf("rows %zu, %zu zone-selective scans (%zu matches)\n", vec.rows,
              vec.scan_queries, vec.matched);
  std::printf("  scalar block scan  : %9.2f ms\n", vec.scalar_scan_ms);
  std::printf("  vectorized morsels : %9.2f ms   (%.1fx)\n",
              vec.vectorized_scan_ms, vec.vectorized_scan_speedup);
  std::printf("  morsels %llu, fast-path %llu, evaluated %llu / selected %llu\n",
              static_cast<unsigned long long>(vec.morsels),
              static_cast<unsigned long long>(vec.zone_fast_path),
              static_cast<unsigned long long>(vec.rows_evaluated),
              static_cast<unsigned long long>(vec.rows_selected));
  std::printf("  heatmap map %.2f ms vs dense %.2f ms (%.1fx, %zu queries)\n",
              vec.heatmap_map_ms, vec.heatmap_dense_ms, vec.heatmap_speedup,
              vec.heatmap_queries);

  obs::JsonWriter w;
  w.begin_object();
  w.key("rows");
  w.value(static_cast<double>(rep.rows));
  w.key("queries");
  w.value(static_cast<double>(rep.queries));
  w.key("matched");
  w.value(static_cast<double>(rep.matched));
  w.key("reference_scan_ms");
  w.value(rep.ref_ms);
  w.key("columnar_scan_ms");
  w.value(rep.col_ms);
  w.key("scan_speedup");
  w.value(rep.scan_speedup);
  w.key("blocks_scanned");
  w.value(static_cast<double>(rep.blocks_scanned));
  w.key("blocks_skipped");
  w.value(static_cast<double>(rep.blocks_skipped));
  w.key("blocks_skipped_ratio");
  w.value(rep.blocks_skipped_ratio);
  w.key("kernel_scalar_ms");
  w.value(rep.kernel_scalar_ms);
  w.key("kernel_batched_ms");
  w.value(rep.kernel_batched_ms);
  w.key("kernel_speedup");
  w.value(rep.kernel_speedup);
  w.end_object();

  obs::JsonWriter vw;
  vw.begin_object();
  vw.key("rows");
  vw.value(static_cast<double>(vec.rows));
  vw.key("scan_queries");
  vw.value(static_cast<double>(vec.scan_queries));
  vw.key("matched");
  vw.value(static_cast<double>(vec.matched));
  vw.key("scalar_scan_ms");
  vw.value(vec.scalar_scan_ms);
  vw.key("vectorized_scan_ms");
  vw.value(vec.vectorized_scan_ms);
  vw.key("vectorized_scan_speedup");
  vw.value(vec.vectorized_scan_speedup);
  vw.key("morsels");
  vw.value(static_cast<double>(vec.morsels));
  vw.key("zone_fast_path");
  vw.value(static_cast<double>(vec.zone_fast_path));
  vw.key("rows_evaluated");
  vw.value(static_cast<double>(vec.rows_evaluated));
  vw.key("rows_selected");
  vw.value(static_cast<double>(vec.rows_selected));
  vw.key("heatmap_queries");
  vw.value(static_cast<double>(vec.heatmap_queries));
  vw.key("heatmap_map_ms");
  vw.value(vec.heatmap_map_ms);
  vw.key("heatmap_dense_ms");
  vw.value(vec.heatmap_dense_ms);
  vw.key("heatmap_speedup");
  vw.value(vec.heatmap_speedup);
  vw.end_object();

  bench::print_header("E10c", "tiered compression: cold blocks + int8 path");
  std::printf("rows %zu (dim-%zu embeddings), all blocks demoted cold\n",
              comp.rows, comp.dim);
  std::printf("  raw %.1f B/row -> cold %.1f B/row  (ratio %.2fx)\n",
              comp.raw_bytes_per_row, comp.cold_bytes_per_row,
              comp.compression_ratio);
  std::printf("  selective scans: hot %.2f ms vs cold %.2f ms (%.2fx, "
              "%zu queries, %zu matches)\n",
              comp.hot_scan_ms, comp.cold_scan_ms, comp.cold_hot_scan_ratio,
              comp.scan_queries, comp.matched);
  std::printf("  cold blocks scanned %llu / skipped %llu, decode morsels %llu\n",
              static_cast<unsigned long long>(comp.cold_blocks_scanned),
              static_cast<unsigned long long>(comp.cold_blocks_skipped),
              static_cast<unsigned long long>(comp.decode_morsels));
  std::printf("  scoring: decode+float %.2f ms vs int8 %.2f ms (%.2fx)\n",
              comp.float_score_ms, comp.quantized_score_ms,
              comp.quantized_speedup);
  std::printf("  error: rmse %.2e, max %.2e, documented bound %.2e\n",
              comp.quantized_rmse, comp.quantized_max_err,
              comp.quantized_bound);

  obs::JsonWriter cw;
  cw.begin_object();
  cw.key("rows");
  cw.value(static_cast<double>(comp.rows));
  cw.key("embedding_dim");
  cw.value(static_cast<double>(comp.dim));
  cw.key("raw_bytes_per_row");
  cw.value(comp.raw_bytes_per_row);
  cw.key("cold_bytes_per_row");
  cw.value(comp.cold_bytes_per_row);
  cw.key("compression_ratio");
  cw.value(comp.compression_ratio);
  cw.key("scan_queries");
  cw.value(static_cast<double>(comp.scan_queries));
  cw.key("matched");
  cw.value(static_cast<double>(comp.matched));
  cw.key("hot_scan_ms");
  cw.value(comp.hot_scan_ms);
  cw.key("cold_scan_ms");
  cw.value(comp.cold_scan_ms);
  cw.key("cold_hot_scan_ratio");
  cw.value(comp.cold_hot_scan_ratio);
  cw.key("cold_blocks_scanned");
  cw.value(static_cast<double>(comp.cold_blocks_scanned));
  cw.key("cold_blocks_skipped");
  cw.value(static_cast<double>(comp.cold_blocks_skipped));
  cw.key("decode_morsels");
  cw.value(static_cast<double>(comp.decode_morsels));
  cw.key("float_score_ms");
  cw.value(comp.float_score_ms);
  cw.key("quantized_score_ms");
  cw.value(comp.quantized_score_ms);
  cw.key("quantized_speedup");
  cw.value(comp.quantized_speedup);
  cw.key("quantized_rmse");
  cw.value(comp.quantized_rmse);
  cw.key("quantized_max_err");
  cw.value(comp.quantized_max_err);
  cw.key("quantized_bound");
  cw.value(comp.quantized_bound);
  cw.end_object();

  bench::BenchReport report("index_micro");
  report.set("scan_speedup", rep.scan_speedup);
  report.set("blocks_skipped_ratio", rep.blocks_skipped_ratio);
  report.set("kernel_speedup", rep.kernel_speedup);
  report.set("vectorized_scan_speedup", vec.vectorized_scan_speedup);
  report.set("heatmap_speedup", vec.heatmap_speedup);
  report.set("compression_ratio", comp.compression_ratio);
  report.set("cold_hot_scan_ratio", comp.cold_hot_scan_ratio);
  report.set("quantized_speedup", comp.quantized_speedup);
  report.add_section("columnar", w.take());
  report.add_section("vectorized", vw.take());
  report.add_section("compression", cw.take());
  report.write();
}

}  // namespace
}  // namespace stcn

int main(int argc, char** argv) {
  stcn::bench::parse_args(argc, argv);
  stcn::write_report(stcn::run_columnar_section(),
                     stcn::run_vectorized_section(),
                     stcn::run_compression_section());
  if (stcn::bench::quick()) return 0;  // CI smoke: skip the gbench suites

  // Strip --quick before handing argv to google-benchmark (it rejects
  // arguments it does not recognize).
  std::vector<char*> filtered;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) != "--quick") filtered.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(filtered.size());
  benchmark::Initialize(&filtered_argc, filtered.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, filtered.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
