// E10 — Index micro-benchmarks (table "index microbench").
//
// google-benchmark timings of the substrate data structures: grid-index
// insert and queries at several selectivities, kd-tree build/k-NN,
// temporal-store camera windows, trajectory lookup, and the wire codecs.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/protocol.h"
#include "index/grid_index.h"
#include "index/kdtree.h"
#include "index/temporal_store.h"
#include "index/trajectory_store.h"

namespace stcn {
namespace {

Detection random_detection(Rng& rng, std::uint64_t id) {
  Detection d;
  d.id = DetectionId(id);
  d.camera = CameraId(1 + rng.uniform_index(100));
  d.object = ObjectId(1 + rng.uniform_index(500));
  d.time = TimePoint(rng.uniform_int(0, 600'000'000));
  d.position = {rng.uniform(0, 2000), rng.uniform(0, 2000)};
  d.appearance.values.resize(16);
  for (auto& v : d.appearance.values) v = static_cast<float>(rng.normal());
  d.appearance.normalize();
  return d;
}

GridIndexConfig grid_config() { return {Rect{{0, 0}, {2000, 2000}}, 50.0}; }

struct Dataset {
  DetectionStore store;
  std::vector<DetectionRef> refs;
  std::vector<Detection> raw;

  explicit Dataset(std::size_t n) {
    Rng rng(7);
    for (std::uint64_t i = 1; i <= n; ++i) {
      Detection d = random_detection(rng, i);
      raw.push_back(d);
      refs.push_back(store.append(d));
    }
  }
};

Dataset& dataset() {
  static Dataset ds(100'000);
  return ds;
}

void BM_GridInsert(benchmark::State& state) {
  Dataset& ds = dataset();
  for (auto _ : state) {
    state.PauseTiming();
    GridIndex index(grid_config());
    state.ResumeTiming();
    for (std::size_t i = 0; i < static_cast<std::size_t>(state.range(0));
         ++i) {
      index.insert(ds.store, ds.refs[i]);
    }
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GridInsert)->Arg(1000)->Arg(10'000)->Arg(100'000);

void BM_GridRangeQuery(benchmark::State& state) {
  Dataset& ds = dataset();
  GridIndex index(grid_config());
  for (DetectionRef r : ds.refs) index.insert(ds.store, r);
  double half = static_cast<double>(state.range(0));
  Rng rng(9);
  for (auto _ : state) {
    Rect region = Rect::centered(
        {rng.uniform(0, 2000), rng.uniform(0, 2000)}, half);
    auto out = index.query_range(ds.store, region, TimeInterval::all());
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_GridRangeQuery)->Arg(25)->Arg(100)->Arg(400)->Arg(1000);

void BM_GridKnn(benchmark::State& state) {
  Dataset& ds = dataset();
  GridIndex index(grid_config());
  for (DetectionRef r : ds.refs) index.insert(ds.store, r);
  auto k = static_cast<std::size_t>(state.range(0));
  Rng rng(10);
  for (auto _ : state) {
    Point center{rng.uniform(0, 2000), rng.uniform(0, 2000)};
    auto out = index.query_knn(ds.store, center, k, TimeInterval::all());
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_GridKnn)->Arg(1)->Arg(10)->Arg(100);

void BM_KdTreeBuild(benchmark::State& state) {
  Dataset& ds = dataset();
  std::vector<KdTree::Item> items;
  for (std::size_t i = 0; i < static_cast<std::size_t>(state.range(0)); ++i) {
    items.push_back({ds.raw[i].position, i});
  }
  for (auto _ : state) {
    KdTree tree(items);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KdTreeBuild)->Arg(10'000)->Arg(100'000);

void BM_KdTreeKnn(benchmark::State& state) {
  Dataset& ds = dataset();
  std::vector<KdTree::Item> items;
  items.reserve(ds.raw.size());
  for (std::size_t i = 0; i < ds.raw.size(); ++i) {
    items.push_back({ds.raw[i].position, i});
  }
  KdTree tree(std::move(items));
  auto k = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  for (auto _ : state) {
    auto out = tree.knn({rng.uniform(0, 2000), rng.uniform(0, 2000)}, k);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_KdTreeKnn)->Arg(1)->Arg(10)->Arg(100);

void BM_TemporalCameraWindow(benchmark::State& state) {
  Dataset& ds = dataset();
  TemporalStore temporal;
  for (DetectionRef r : ds.refs) temporal.insert(ds.store, r);
  Rng rng(12);
  for (auto _ : state) {
    CameraId cam(1 + rng.uniform_index(100));
    TimePoint begin(rng.uniform_int(0, 500'000'000));
    auto out = temporal.query_camera(
        cam, {begin, begin + Duration::seconds(60)});
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_TemporalCameraWindow);

void BM_TrajectoryQuery(benchmark::State& state) {
  Dataset& ds = dataset();
  TrajectoryStore trajectories;
  for (DetectionRef r : ds.refs) trajectories.insert(ds.store, r);
  Rng rng(13);
  for (auto _ : state) {
    ObjectId obj(1 + rng.uniform_index(500));
    auto out = trajectories.query(obj, TimeInterval::all());
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_TrajectoryQuery);

void BM_DetectionEncode(benchmark::State& state) {
  Dataset& ds = dataset();
  std::size_t i = 0;
  for (auto _ : state) {
    BinaryWriter w;
    serialize(w, ds.raw[i++ % ds.raw.size()]);
    benchmark::DoNotOptimize(w.size());
  }
}
BENCHMARK(BM_DetectionEncode);

void BM_DetectionDecode(benchmark::State& state) {
  Dataset& ds = dataset();
  BinaryWriter w;
  serialize(w, ds.raw[0]);
  auto bytes = w.take();
  for (auto _ : state) {
    BinaryReader r(bytes);
    Detection d = deserialize_detection(r);
    benchmark::DoNotOptimize(d.id);
  }
}
BENCHMARK(BM_DetectionDecode);

}  // namespace
}  // namespace stcn

BENCHMARK_MAIN();
