// E10 — Index micro-benchmarks (table "index microbench").
//
// Two parts:
//  * A before/after "columnar" section comparing the block-skipping
//    DetectionStore scan against a retained reference scan over the
//    array-of-structs layout it replaced, plus the batched appearance
//    kernel against the scalar per-pair dot. Emits speedups and the
//    blocks_skipped_ratio into BENCH_index_micro.json (--quick runs only
//    this part, at reduced size, for CI).
//  * google-benchmark timings of the substrate data structures: grid-index
//    insert and queries at several selectivities, kd-tree build/k-NN,
//    temporal-store camera windows, trajectory lookup, and the wire codecs.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/appearance_kernel.h"
#include "common/rng.h"
#include "core/protocol.h"
#include "index/grid_index.h"
#include "index/kdtree.h"
#include "index/temporal_store.h"
#include "index/trajectory_store.h"
#include "obs/json.h"

namespace stcn {
namespace {

Detection random_detection(Rng& rng, std::uint64_t id) {
  Detection d;
  d.id = DetectionId(id);
  d.camera = CameraId(1 + rng.uniform_index(100));
  d.object = ObjectId(1 + rng.uniform_index(500));
  d.time = TimePoint(rng.uniform_int(0, 600'000'000));
  d.position = {rng.uniform(0, 2000), rng.uniform(0, 2000)};
  d.appearance.values.resize(16);
  for (auto& v : d.appearance.values) v = static_cast<float>(rng.normal());
  d.appearance.normalize();
  return d;
}

GridIndexConfig grid_config() { return {Rect{{0, 0}, {2000, 2000}}, 50.0}; }

struct Dataset {
  DetectionStore store;
  std::vector<DetectionRef> refs;
  std::vector<Detection> raw;

  explicit Dataset(std::size_t n) {
    Rng rng(7);
    for (std::uint64_t i = 1; i <= n; ++i) {
      Detection d = random_detection(rng, i);
      raw.push_back(d);
      refs.push_back(store.append(d));
    }
  }
};

Dataset& dataset() {
  static Dataset ds(100'000);
  return ds;
}

void BM_GridInsert(benchmark::State& state) {
  Dataset& ds = dataset();
  for (auto _ : state) {
    state.PauseTiming();
    GridIndex index(grid_config());
    state.ResumeTiming();
    for (std::size_t i = 0; i < static_cast<std::size_t>(state.range(0));
         ++i) {
      index.insert(ds.store, ds.refs[i]);
    }
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GridInsert)->Arg(1000)->Arg(10'000)->Arg(100'000);

void BM_GridRangeQuery(benchmark::State& state) {
  Dataset& ds = dataset();
  GridIndex index(grid_config());
  for (DetectionRef r : ds.refs) index.insert(ds.store, r);
  double half = static_cast<double>(state.range(0));
  Rng rng(9);
  for (auto _ : state) {
    Rect region = Rect::centered(
        {rng.uniform(0, 2000), rng.uniform(0, 2000)}, half);
    auto out = index.query_range(ds.store, region, TimeInterval::all());
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_GridRangeQuery)->Arg(25)->Arg(100)->Arg(400)->Arg(1000);

void BM_GridKnn(benchmark::State& state) {
  Dataset& ds = dataset();
  GridIndex index(grid_config());
  for (DetectionRef r : ds.refs) index.insert(ds.store, r);
  auto k = static_cast<std::size_t>(state.range(0));
  Rng rng(10);
  for (auto _ : state) {
    Point center{rng.uniform(0, 2000), rng.uniform(0, 2000)};
    auto out = index.query_knn(ds.store, center, k, TimeInterval::all());
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_GridKnn)->Arg(1)->Arg(10)->Arg(100);

void BM_KdTreeBuild(benchmark::State& state) {
  Dataset& ds = dataset();
  std::vector<KdTree::Item> items;
  for (std::size_t i = 0; i < static_cast<std::size_t>(state.range(0)); ++i) {
    items.push_back({ds.raw[i].position, i});
  }
  for (auto _ : state) {
    KdTree tree(items);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KdTreeBuild)->Arg(10'000)->Arg(100'000);

void BM_KdTreeKnn(benchmark::State& state) {
  Dataset& ds = dataset();
  std::vector<KdTree::Item> items;
  items.reserve(ds.raw.size());
  for (std::size_t i = 0; i < ds.raw.size(); ++i) {
    items.push_back({ds.raw[i].position, i});
  }
  KdTree tree(std::move(items));
  auto k = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  for (auto _ : state) {
    auto out = tree.knn({rng.uniform(0, 2000), rng.uniform(0, 2000)}, k);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_KdTreeKnn)->Arg(1)->Arg(10)->Arg(100);

void BM_TemporalCameraWindow(benchmark::State& state) {
  Dataset& ds = dataset();
  TemporalStore temporal;
  for (DetectionRef r : ds.refs) temporal.insert(ds.store, r);
  Rng rng(12);
  for (auto _ : state) {
    CameraId cam(1 + rng.uniform_index(100));
    TimePoint begin(rng.uniform_int(0, 500'000'000));
    auto out = temporal.query_camera(
        cam, {begin, begin + Duration::seconds(60)});
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_TemporalCameraWindow);

void BM_TrajectoryQuery(benchmark::State& state) {
  Dataset& ds = dataset();
  TrajectoryStore trajectories;
  for (DetectionRef r : ds.refs) trajectories.insert(ds.store, r);
  Rng rng(13);
  for (auto _ : state) {
    ObjectId obj(1 + rng.uniform_index(500));
    auto out = trajectories.query(obj, TimeInterval::all());
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_TrajectoryQuery);

void BM_DetectionEncode(benchmark::State& state) {
  Dataset& ds = dataset();
  std::size_t i = 0;
  for (auto _ : state) {
    BinaryWriter w;
    serialize(w, ds.raw[i++ % ds.raw.size()]);
    benchmark::DoNotOptimize(w.size());
  }
}
BENCHMARK(BM_DetectionEncode);

void BM_DetectionDecode(benchmark::State& state) {
  Dataset& ds = dataset();
  BinaryWriter w;
  serialize(w, ds.raw[0]);
  auto bytes = w.take();
  for (auto _ : state) {
    BinaryReader r(bytes);
    Detection d = deserialize_detection(r);
    benchmark::DoNotOptimize(d.id);
  }
}
BENCHMARK(BM_DetectionDecode);

// ------------------------------------------------------ columnar section
//
// Before/after comparison against the layout the columnar store replaced:
// an array-of-structs vector<Detection> scanned record by record. The
// workload is selective range queries (narrow time window over
// near-time-ordered ingest), where zone maps skip most blocks wholesale.

struct ColumnarReport {
  double ref_ms = 0;
  double col_ms = 0;
  double scan_speedup = 0;
  double blocks_skipped_ratio = 0;
  std::uint64_t blocks_scanned = 0;
  std::uint64_t blocks_skipped = 0;
  double kernel_scalar_ms = 0;
  double kernel_batched_ms = 0;
  double kernel_speedup = 0;
  std::size_t rows = 0;
  std::size_t queries = 0;
  std::size_t matched = 0;
};

ColumnarReport run_columnar_section() {
  ColumnarReport rep;
  rep.rows = bench::quick() ? 16 * kDetectionBlockRows
                            : 64 * kDetectionBlockRows;
  rep.queries = bench::quick() ? 200 : 500;
  const std::int64_t time_span = 600'000'000;  // 10 simulated minutes
  const std::int64_t step = time_span / static_cast<std::int64_t>(rep.rows);

  // Near-time-ordered ingest (the realistic arrival pattern: bounded
  // reordering from network jitter), random positions.
  Rng rng(7);
  DetectionStore store;
  std::vector<Detection> reference;  // the pre-change AoS layout, retained
  reference.reserve(rep.rows);
  for (std::size_t i = 0; i < rep.rows; ++i) {
    Detection d;
    d.id = DetectionId(i + 1);
    d.camera = CameraId(1 + rng.uniform_index(100));
    d.object = ObjectId(1 + rng.uniform_index(500));
    d.time = TimePoint(static_cast<std::int64_t>(i) * step +
                       rng.uniform_int(0, 4 * step));
    d.position = {rng.uniform(0, 2000), rng.uniform(0, 2000)};
    d.appearance.values.resize(16);
    for (auto& v : d.appearance.values) v = static_cast<float>(rng.normal());
    d.appearance.normalize();
    reference.push_back(d);
    (void)store.append(d);
  }

  // Selective workload: ~1% time window, 400 m square — the "find what
  // happened near X in that minute" query shape.
  std::vector<Rect> regions;
  std::vector<TimeInterval> windows;
  Rng qrng(21);
  for (std::size_t q = 0; q < rep.queries; ++q) {
    regions.push_back(Rect::centered(
        {qrng.uniform(200, 1800), qrng.uniform(200, 1800)}, 200));
    std::int64_t begin = qrng.uniform_int(0, time_span - time_span / 100);
    windows.push_back(
        {TimePoint(begin), TimePoint(begin + time_span / 100)});
  }

  // Before: naive reference scan over the AoS records.
  std::size_t ref_matched = 0;
  bench::WallTimer ref_timer;
  for (std::size_t q = 0; q < rep.queries; ++q) {
    for (const Detection& d : reference) {
      if (regions[q].contains(d.position) && windows[q].contains(d.time)) {
        ++ref_matched;
      }
    }
  }
  rep.ref_ms = ref_timer.elapsed_ms();

  // After: columnar scan with zone-map block skipping.
  std::size_t col_matched = 0;
  bench::WallTimer col_timer;
  for (std::size_t q = 0; q < rep.queries; ++q) {
    col_matched += store.scan_range(regions[q], windows[q]).size();
  }
  rep.col_ms = col_timer.elapsed_ms();
  if (col_matched != ref_matched) {
    std::fprintf(stderr, "MISMATCH: columnar %zu vs reference %zu\n",
                 col_matched, ref_matched);
  }
  rep.matched = col_matched;
  rep.scan_speedup = rep.col_ms > 0 ? rep.ref_ms / rep.col_ms : 0;
  rep.blocks_scanned = store.blocks_scanned();
  rep.blocks_skipped = store.blocks_skipped();
  std::uint64_t visited = rep.blocks_scanned + rep.blocks_skipped;
  rep.blocks_skipped_ratio =
      visited > 0 ? static_cast<double>(rep.blocks_skipped) /
                        static_cast<double>(visited)
                  : 0;

  // Kernel before/after: scalar per-pair similarity vs one batched pass
  // over the candidates (the re-id scoring hot loop).
  const std::size_t dim = 16;
  const std::size_t rounds = bench::quick() ? 20 : 50;
  AppearanceFeature probe = reference[0].appearance;
  double scalar_sum = 0;
  bench::WallTimer scalar_timer;
  for (std::size_t r = 0; r < rounds; ++r) {
    for (const Detection& d : reference) {
      scalar_sum += probe.similarity(d.appearance);
    }
  }
  rep.kernel_scalar_ms = scalar_timer.elapsed_ms();
  std::vector<const float*> ptrs;
  ptrs.reserve(reference.size());
  for (const Detection& d : reference) {
    ptrs.push_back(d.appearance.values.data());
  }
  std::vector<double> sims(reference.size());
  double batched_sum = 0;
  bench::WallTimer batched_timer;
  for (std::size_t r = 0; r < rounds; ++r) {
    appearance_score_batch(probe.values.data(), dim, ptrs.data(),
                           ptrs.size(), sims.data());
    for (double s : sims) batched_sum += s;
  }
  rep.kernel_batched_ms = batched_timer.elapsed_ms();
  if (std::abs(scalar_sum - batched_sum) >
      1e-6 * static_cast<double>(rounds * reference.size())) {
    std::fprintf(stderr, "KERNEL MISMATCH: %f vs %f\n", scalar_sum,
                 batched_sum);
  }
  rep.kernel_speedup = rep.kernel_batched_ms > 0
                           ? rep.kernel_scalar_ms / rep.kernel_batched_ms
                           : 0;
  return rep;
}

void write_columnar_report(const ColumnarReport& rep) {
  bench::print_header("E10", "columnar store vs reference scan");
  std::printf("rows %zu, %zu selective range queries (%zu matches)\n",
              rep.rows, rep.queries, rep.matched);
  std::printf("  reference AoS scan : %9.2f ms\n", rep.ref_ms);
  std::printf("  columnar + zonemap : %9.2f ms   (%.1fx)\n", rep.col_ms,
              rep.scan_speedup);
  std::printf("  blocks scanned %llu / skipped %llu (ratio %.3f)\n",
              static_cast<unsigned long long>(rep.blocks_scanned),
              static_cast<unsigned long long>(rep.blocks_skipped),
              rep.blocks_skipped_ratio);
  std::printf("  kernel scalar %.2f ms vs batched %.2f ms (%.2fx)\n",
              rep.kernel_scalar_ms, rep.kernel_batched_ms,
              rep.kernel_speedup);

  obs::JsonWriter w;
  w.begin_object();
  w.key("rows");
  w.value(static_cast<double>(rep.rows));
  w.key("queries");
  w.value(static_cast<double>(rep.queries));
  w.key("matched");
  w.value(static_cast<double>(rep.matched));
  w.key("reference_scan_ms");
  w.value(rep.ref_ms);
  w.key("columnar_scan_ms");
  w.value(rep.col_ms);
  w.key("scan_speedup");
  w.value(rep.scan_speedup);
  w.key("blocks_scanned");
  w.value(static_cast<double>(rep.blocks_scanned));
  w.key("blocks_skipped");
  w.value(static_cast<double>(rep.blocks_skipped));
  w.key("blocks_skipped_ratio");
  w.value(rep.blocks_skipped_ratio);
  w.key("kernel_scalar_ms");
  w.value(rep.kernel_scalar_ms);
  w.key("kernel_batched_ms");
  w.value(rep.kernel_batched_ms);
  w.key("kernel_speedup");
  w.value(rep.kernel_speedup);
  w.end_object();

  bench::BenchReport report("index_micro");
  report.set("scan_speedup", rep.scan_speedup);
  report.set("blocks_skipped_ratio", rep.blocks_skipped_ratio);
  report.set("kernel_speedup", rep.kernel_speedup);
  report.add_section("columnar", w.take());
  report.write();
}

}  // namespace
}  // namespace stcn

int main(int argc, char** argv) {
  stcn::bench::parse_args(argc, argv);
  stcn::write_columnar_report(stcn::run_columnar_section());
  if (stcn::bench::quick()) return 0;  // CI smoke: skip the gbench suites

  // Strip --quick before handing argv to google-benchmark (it rejects
  // arguments it does not recognize).
  std::vector<char*> filtered;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) != "--quick") filtered.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(filtered.size());
  benchmark::Initialize(&filtered_argc, filtered.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, filtered.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
