// Shared helpers for the experiment benchmarks (E1–E10).
//
// Each bench binary regenerates one table/figure of the evaluation:
// it builds a synthetic scenario, runs the framework and the relevant
// baseline, and prints the rows EXPERIMENTS.md records. Besides the
// human-readable tables, every bench emits a machine-readable
// BENCH_<name>.json (BenchReport) with its key scalars, latency quantiles,
// and optionally a full metrics-registry snapshot, so runs can be diffed
// by tooling instead of by eyeball.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "trace/generator.h"

namespace stcn::bench {

/// --quick trims scenario sizes so CI can smoke-run a bench in seconds.
inline bool& quick_flag() {
  static bool quick = false;
  return quick;
}
[[nodiscard]] inline bool quick() { return quick_flag(); }

/// Recognizes shared bench flags (currently just --quick). Call first thing
/// in main; unrecognized arguments are left for the bench to interpret.
inline void parse_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick_flag() = true;
  }
}

/// Wall-clock stopwatch (milliseconds).
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Standard scenario sizes used across benches. `scale` multiplies camera
/// and object counts; road grid grows with sqrt(scale) to keep density
/// realistic.
inline TraceConfig scenario(double scale = 1.0, Duration duration = Duration::minutes(4)) {
  TraceConfig c;
  auto grid = static_cast<std::uint32_t>(10 * std::sqrt(scale));
  c.roads.grid_cols = std::max(4u, grid);
  c.roads.grid_rows = std::max(4u, grid);
  c.roads.block_size_m = 120.0;
  c.roads.seed = 101;
  c.cameras.camera_count = static_cast<std::size_t>(60 * scale);
  c.cameras.seed = 102;
  c.mobility.object_count = static_cast<std::size_t>(50 * scale);
  c.mobility.seed = 103;
  c.duration = duration;
  c.tick = Duration::millis(500);
  c.seed = 104;
  return c;
}

inline void print_header(const std::string& experiment,
                         const std::string& description) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", experiment.c_str(), description.c_str());
  std::printf("================================================================\n");
}

/// Machine-readable bench output. Usage:
///
///   BenchReport report("knn");
///   report.set("ingest_rate_eps", rate);
///   report.add_histogram("query_latency_us", coordinator_latency_hist);
///   report.add_registry(cluster.metrics_snapshot());
///   report.write();   // → BENCH_knn.json in the working directory
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void set(const std::string& key, double value) { scalars_[key] = value; }
  void set(const std::string& key, const std::string& value) {
    strings_[key] = value;
  }

  /// Records a histogram's summary: count, mean, min, max, p50/p95/p99.
  void add_histogram(const std::string& name, const LatencyHistogram& h) {
    histograms_.emplace_back(name, h);  // copies the fixed-size buckets
  }

  /// Attaches a full registry snapshot (typically Cluster::metrics_snapshot).
  void add_registry(MetricsRegistry registry) {
    registry_ = std::move(registry);
  }

  /// Embeds a pre-serialized JSON value under `key` (an EXPLAIN profile,
  /// a health-monitor snapshot, ...). `raw_json` must be valid JSON; it is
  /// emitted verbatim as a top-level section of the report.
  void add_section(const std::string& key, std::string raw_json) {
    sections_[key] = std::move(raw_json);
  }

  /// Serializes the report. Schema:
  /// {"bench": name, "quick": bool, "scalars": {...}, "labels": {...},
  ///  "histograms": {name: {count,mean,min,max,p50,p95,p99}},
  ///  <sections...>, "metrics": <registry JSON>}
  [[nodiscard]] std::string to_json() const {
    obs::JsonWriter w;
    w.begin_object();
    w.key("bench");
    w.value(name_);
    w.key("quick");
    w.value(quick());
    w.key("scalars");
    w.begin_object();
    for (const auto& [k, v] : scalars_) {
      w.key(k);
      w.value(v);
    }
    w.end_object();
    w.key("labels");
    w.begin_object();
    for (const auto& [k, v] : strings_) {
      w.key(k);
      w.value(v);
    }
    w.end_object();
    w.key("histograms");
    w.begin_object();
    for (const auto& [name, h] : histograms_) {
      w.key(name);
      w.begin_object();
      w.key("count");
      w.value(h.count());
      w.key("mean");
      w.value(h.mean());
      w.key("min");
      w.value(h.min());
      w.key("max");
      w.value(h.max());
      w.key("p50");
      w.value(h.p50());
      w.key("p95");
      w.value(h.p95());
      w.key("p99");
      w.value(h.p99());
      w.end_object();
    }
    w.end_object();
    for (const auto& [key, raw] : sections_) {
      w.key(key);
      w.raw_value(raw);
    }
    if (registry_.has_value()) {
      w.key("metrics");
      w.raw_value(registry_->to_json());
    }
    w.end_object();
    return w.take();
  }

  /// Writes BENCH_<name>.json into the working directory. Returns false if
  /// the file could not be opened (report printed a warning).
  bool write() const {
    std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
      return false;
    }
    std::string json = to_json();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("[report] wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::string name_;
  std::map<std::string, double> scalars_;
  std::map<std::string, std::string> strings_;
  std::vector<std::pair<std::string, LatencyHistogram>> histograms_;
  std::map<std::string, std::string> sections_;  // key → raw JSON
  std::optional<MetricsRegistry> registry_;
};

}  // namespace stcn::bench
