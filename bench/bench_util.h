// Shared helpers for the experiment benchmarks (E1–E10).
//
// Each bench binary regenerates one table/figure of the evaluation:
// it builds a synthetic scenario, runs the framework and the relevant
// baseline, and prints the rows EXPERIMENTS.md records.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

#include "trace/generator.h"

namespace stcn::bench {

/// Wall-clock stopwatch (milliseconds).
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Standard scenario sizes used across benches. `scale` multiplies camera
/// and object counts; road grid grows with sqrt(scale) to keep density
/// realistic.
inline TraceConfig scenario(double scale = 1.0, Duration duration = Duration::minutes(4)) {
  TraceConfig c;
  auto grid = static_cast<std::uint32_t>(10 * std::sqrt(scale));
  c.roads.grid_cols = std::max(4u, grid);
  c.roads.grid_rows = std::max(4u, grid);
  c.roads.block_size_m = 120.0;
  c.roads.seed = 101;
  c.cameras.camera_count = static_cast<std::size_t>(60 * scale);
  c.cameras.seed = 102;
  c.mobility.object_count = static_cast<std::size_t>(50 * scale);
  c.mobility.seed = 103;
  c.duration = duration;
  c.tick = Duration::millis(500);
  c.seed = 104;
  return c;
}

inline void print_header(const std::string& experiment,
                         const std::string& description) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", experiment.c_str(), description.c_str());
  std::printf("================================================================\n");
}

}  // namespace stcn::bench
