# Empty dependencies file for bench_camera_scalability.
# This may be replaced when dependencies are built.
