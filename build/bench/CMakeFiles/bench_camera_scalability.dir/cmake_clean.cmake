file(REMOVE_RECURSE
  "CMakeFiles/bench_camera_scalability.dir/bench_camera_scalability.cpp.o"
  "CMakeFiles/bench_camera_scalability.dir/bench_camera_scalability.cpp.o.d"
  "bench_camera_scalability"
  "bench_camera_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_camera_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
