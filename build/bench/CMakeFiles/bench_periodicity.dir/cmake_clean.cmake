file(REMOVE_RECURSE
  "CMakeFiles/bench_periodicity.dir/bench_periodicity.cpp.o"
  "CMakeFiles/bench_periodicity.dir/bench_periodicity.cpp.o.d"
  "bench_periodicity"
  "bench_periodicity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_periodicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
