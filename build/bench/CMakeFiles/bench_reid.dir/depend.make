# Empty dependencies file for bench_reid.
# This may be replaced when dependencies are built.
