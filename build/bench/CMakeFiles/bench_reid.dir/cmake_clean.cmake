file(REMOVE_RECURSE
  "CMakeFiles/bench_reid.dir/bench_reid.cpp.o"
  "CMakeFiles/bench_reid.dir/bench_reid.cpp.o.d"
  "bench_reid"
  "bench_reid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
