file(REMOVE_RECURSE
  "CMakeFiles/bench_path_reconstruction.dir/bench_path_reconstruction.cpp.o"
  "CMakeFiles/bench_path_reconstruction.dir/bench_path_reconstruction.cpp.o.d"
  "bench_path_reconstruction"
  "bench_path_reconstruction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_path_reconstruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
