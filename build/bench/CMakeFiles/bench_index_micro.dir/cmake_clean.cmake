file(REMOVE_RECURSE
  "CMakeFiles/bench_index_micro.dir/bench_index_micro.cpp.o"
  "CMakeFiles/bench_index_micro.dir/bench_index_micro.cpp.o.d"
  "bench_index_micro"
  "bench_index_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_index_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
