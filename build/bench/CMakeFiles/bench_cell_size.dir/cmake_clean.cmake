file(REMOVE_RECURSE
  "CMakeFiles/bench_cell_size.dir/bench_cell_size.cpp.o"
  "CMakeFiles/bench_cell_size.dir/bench_cell_size.cpp.o.d"
  "bench_cell_size"
  "bench_cell_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cell_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
