# Empty dependencies file for bench_cell_size.
# This may be replaced when dependencies are built.
