file(REMOVE_RECURSE
  "CMakeFiles/bench_ingest_scalability.dir/bench_ingest_scalability.cpp.o"
  "CMakeFiles/bench_ingest_scalability.dir/bench_ingest_scalability.cpp.o.d"
  "bench_ingest_scalability"
  "bench_ingest_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ingest_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
