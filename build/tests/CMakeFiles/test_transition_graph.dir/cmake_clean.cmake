file(REMOVE_RECURSE
  "CMakeFiles/test_transition_graph.dir/test_transition_graph.cpp.o"
  "CMakeFiles/test_transition_graph.dir/test_transition_graph.cpp.o.d"
  "test_transition_graph"
  "test_transition_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transition_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
