# Empty dependencies file for test_transition_graph.
# This may be replaced when dependencies are built.
