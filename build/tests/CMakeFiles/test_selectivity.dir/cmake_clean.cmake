file(REMOVE_RECURSE
  "CMakeFiles/test_selectivity.dir/test_selectivity.cpp.o"
  "CMakeFiles/test_selectivity.dir/test_selectivity.cpp.o.d"
  "test_selectivity"
  "test_selectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
