# Empty compiler generated dependencies file for test_temporal_store.
# This may be replaced when dependencies are built.
