file(REMOVE_RECURSE
  "CMakeFiles/test_temporal_store.dir/test_temporal_store.cpp.o"
  "CMakeFiles/test_temporal_store.dir/test_temporal_store.cpp.o.d"
  "test_temporal_store"
  "test_temporal_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_temporal_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
