file(REMOVE_RECURSE
  "CMakeFiles/test_camera_failures.dir/test_camera_failures.cpp.o"
  "CMakeFiles/test_camera_failures.dir/test_camera_failures.cpp.o.d"
  "test_camera_failures"
  "test_camera_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_camera_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
