# Empty dependencies file for test_camera_failures.
# This may be replaced when dependencies are built.
