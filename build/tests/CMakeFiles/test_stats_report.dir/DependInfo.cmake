
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_stats_report.cpp" "tests/CMakeFiles/test_stats_report.dir/test_stats_report.cpp.o" "gcc" "tests/CMakeFiles/test_stats_report.dir/test_stats_report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/stcn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/stcn_query.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/stcn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/stcn_index.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/stcn_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/reid/CMakeFiles/stcn_reid.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/stcn_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/stcn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
