# Empty dependencies file for test_limits.
# This may be replaced when dependencies are built.
