file(REMOVE_RECURSE
  "CMakeFiles/test_limits.dir/test_limits.cpp.o"
  "CMakeFiles/test_limits.dir/test_limits.cpp.o.d"
  "test_limits"
  "test_limits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
