file(REMOVE_RECURSE
  "CMakeFiles/test_path_reconstruction.dir/test_path_reconstruction.cpp.o"
  "CMakeFiles/test_path_reconstruction.dir/test_path_reconstruction.cpp.o.d"
  "test_path_reconstruction"
  "test_path_reconstruction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_path_reconstruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
