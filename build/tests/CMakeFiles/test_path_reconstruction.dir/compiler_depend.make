# Empty compiler generated dependencies file for test_path_reconstruction.
# This may be replaced when dependencies are built.
