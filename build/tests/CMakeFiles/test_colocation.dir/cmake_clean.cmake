file(REMOVE_RECURSE
  "CMakeFiles/test_colocation.dir/test_colocation.cpp.o"
  "CMakeFiles/test_colocation.dir/test_colocation.cpp.o.d"
  "test_colocation"
  "test_colocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_colocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
