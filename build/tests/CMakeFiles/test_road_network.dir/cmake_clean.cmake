file(REMOVE_RECURSE
  "CMakeFiles/test_road_network.dir/test_road_network.cpp.o"
  "CMakeFiles/test_road_network.dir/test_road_network.cpp.o.d"
  "test_road_network"
  "test_road_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_road_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
