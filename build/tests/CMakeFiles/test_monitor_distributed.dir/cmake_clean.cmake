file(REMOVE_RECURSE
  "CMakeFiles/test_monitor_distributed.dir/test_monitor_distributed.cpp.o"
  "CMakeFiles/test_monitor_distributed.dir/test_monitor_distributed.cpp.o.d"
  "test_monitor_distributed"
  "test_monitor_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_monitor_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
