file(REMOVE_RECURSE
  "CMakeFiles/test_reid.dir/test_reid.cpp.o"
  "CMakeFiles/test_reid.dir/test_reid.cpp.o.d"
  "test_reid"
  "test_reid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
