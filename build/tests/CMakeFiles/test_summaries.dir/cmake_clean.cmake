file(REMOVE_RECURSE
  "CMakeFiles/test_summaries.dir/test_summaries.cpp.o"
  "CMakeFiles/test_summaries.dir/test_summaries.cpp.o.d"
  "test_summaries"
  "test_summaries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_summaries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
