# Empty dependencies file for test_summaries.
# This may be replaced when dependencies are built.
