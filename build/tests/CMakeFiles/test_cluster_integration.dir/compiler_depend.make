# Empty compiler generated dependencies file for test_cluster_integration.
# This may be replaced when dependencies are built.
