# Empty dependencies file for test_trajectory_store.
# This may be replaced when dependencies are built.
