file(REMOVE_RECURSE
  "CMakeFiles/test_trajectory_store.dir/test_trajectory_store.cpp.o"
  "CMakeFiles/test_trajectory_store.dir/test_trajectory_store.cpp.o.d"
  "test_trajectory_store"
  "test_trajectory_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trajectory_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
