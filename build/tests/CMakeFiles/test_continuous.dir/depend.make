# Empty dependencies file for test_continuous.
# This may be replaced when dependencies are built.
