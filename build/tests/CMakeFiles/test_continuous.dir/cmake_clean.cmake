file(REMOVE_RECURSE
  "CMakeFiles/test_continuous.dir/test_continuous.cpp.o"
  "CMakeFiles/test_continuous.dir/test_continuous.cpp.o.d"
  "test_continuous"
  "test_continuous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_continuous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
