file(REMOVE_RECURSE
  "libstcn_net.a"
)
