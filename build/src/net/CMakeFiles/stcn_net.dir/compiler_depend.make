# Empty compiler generated dependencies file for stcn_net.
# This may be replaced when dependencies are built.
