file(REMOVE_RECURSE
  "CMakeFiles/stcn_net.dir/sim_network.cpp.o"
  "CMakeFiles/stcn_net.dir/sim_network.cpp.o.d"
  "libstcn_net.a"
  "libstcn_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcn_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
