file(REMOVE_RECURSE
  "libstcn_trace.a"
)
