# Empty dependencies file for stcn_trace.
# This may be replaced when dependencies are built.
