
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/camera.cpp" "src/trace/CMakeFiles/stcn_trace.dir/camera.cpp.o" "gcc" "src/trace/CMakeFiles/stcn_trace.dir/camera.cpp.o.d"
  "/root/repo/src/trace/generator.cpp" "src/trace/CMakeFiles/stcn_trace.dir/generator.cpp.o" "gcc" "src/trace/CMakeFiles/stcn_trace.dir/generator.cpp.o.d"
  "/root/repo/src/trace/mobility.cpp" "src/trace/CMakeFiles/stcn_trace.dir/mobility.cpp.o" "gcc" "src/trace/CMakeFiles/stcn_trace.dir/mobility.cpp.o.d"
  "/root/repo/src/trace/road_network.cpp" "src/trace/CMakeFiles/stcn_trace.dir/road_network.cpp.o" "gcc" "src/trace/CMakeFiles/stcn_trace.dir/road_network.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/trace/CMakeFiles/stcn_trace.dir/trace_io.cpp.o" "gcc" "src/trace/CMakeFiles/stcn_trace.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/stcn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
