file(REMOVE_RECURSE
  "CMakeFiles/stcn_trace.dir/camera.cpp.o"
  "CMakeFiles/stcn_trace.dir/camera.cpp.o.d"
  "CMakeFiles/stcn_trace.dir/generator.cpp.o"
  "CMakeFiles/stcn_trace.dir/generator.cpp.o.d"
  "CMakeFiles/stcn_trace.dir/mobility.cpp.o"
  "CMakeFiles/stcn_trace.dir/mobility.cpp.o.d"
  "CMakeFiles/stcn_trace.dir/road_network.cpp.o"
  "CMakeFiles/stcn_trace.dir/road_network.cpp.o.d"
  "CMakeFiles/stcn_trace.dir/trace_io.cpp.o"
  "CMakeFiles/stcn_trace.dir/trace_io.cpp.o.d"
  "libstcn_trace.a"
  "libstcn_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcn_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
