file(REMOVE_RECURSE
  "libstcn_query.a"
)
