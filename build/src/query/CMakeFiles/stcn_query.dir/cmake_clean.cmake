file(REMOVE_RECURSE
  "CMakeFiles/stcn_query.dir/colocation.cpp.o"
  "CMakeFiles/stcn_query.dir/colocation.cpp.o.d"
  "libstcn_query.a"
  "libstcn_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcn_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
