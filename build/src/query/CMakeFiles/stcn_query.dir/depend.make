# Empty dependencies file for stcn_query.
# This may be replaced when dependencies are built.
