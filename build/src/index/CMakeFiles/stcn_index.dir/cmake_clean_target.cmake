file(REMOVE_RECURSE
  "libstcn_index.a"
)
