file(REMOVE_RECURSE
  "CMakeFiles/stcn_index.dir/grid_index.cpp.o"
  "CMakeFiles/stcn_index.dir/grid_index.cpp.o.d"
  "CMakeFiles/stcn_index.dir/kdtree.cpp.o"
  "CMakeFiles/stcn_index.dir/kdtree.cpp.o.d"
  "libstcn_index.a"
  "libstcn_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcn_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
