# Empty dependencies file for stcn_index.
# This may be replaced when dependencies are built.
