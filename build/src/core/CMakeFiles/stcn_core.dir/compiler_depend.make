# Empty compiler generated dependencies file for stcn_core.
# This may be replaced when dependencies are built.
