file(REMOVE_RECURSE
  "CMakeFiles/stcn_core.dir/coordinator.cpp.o"
  "CMakeFiles/stcn_core.dir/coordinator.cpp.o.d"
  "CMakeFiles/stcn_core.dir/framework.cpp.o"
  "CMakeFiles/stcn_core.dir/framework.cpp.o.d"
  "CMakeFiles/stcn_core.dir/worker.cpp.o"
  "CMakeFiles/stcn_core.dir/worker.cpp.o.d"
  "libstcn_core.a"
  "libstcn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
