file(REMOVE_RECURSE
  "libstcn_core.a"
)
