
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reid/path_reconstruction.cpp" "src/reid/CMakeFiles/stcn_reid.dir/path_reconstruction.cpp.o" "gcc" "src/reid/CMakeFiles/stcn_reid.dir/path_reconstruction.cpp.o.d"
  "/root/repo/src/reid/reid_engine.cpp" "src/reid/CMakeFiles/stcn_reid.dir/reid_engine.cpp.o" "gcc" "src/reid/CMakeFiles/stcn_reid.dir/reid_engine.cpp.o.d"
  "/root/repo/src/reid/tracker.cpp" "src/reid/CMakeFiles/stcn_reid.dir/tracker.cpp.o" "gcc" "src/reid/CMakeFiles/stcn_reid.dir/tracker.cpp.o.d"
  "/root/repo/src/reid/transition_graph.cpp" "src/reid/CMakeFiles/stcn_reid.dir/transition_graph.cpp.o" "gcc" "src/reid/CMakeFiles/stcn_reid.dir/transition_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/stcn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/stcn_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
