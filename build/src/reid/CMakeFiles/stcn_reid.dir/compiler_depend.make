# Empty compiler generated dependencies file for stcn_reid.
# This may be replaced when dependencies are built.
