file(REMOVE_RECURSE
  "libstcn_reid.a"
)
