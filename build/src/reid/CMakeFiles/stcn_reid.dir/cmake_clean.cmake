file(REMOVE_RECURSE
  "CMakeFiles/stcn_reid.dir/path_reconstruction.cpp.o"
  "CMakeFiles/stcn_reid.dir/path_reconstruction.cpp.o.d"
  "CMakeFiles/stcn_reid.dir/reid_engine.cpp.o"
  "CMakeFiles/stcn_reid.dir/reid_engine.cpp.o.d"
  "CMakeFiles/stcn_reid.dir/tracker.cpp.o"
  "CMakeFiles/stcn_reid.dir/tracker.cpp.o.d"
  "CMakeFiles/stcn_reid.dir/transition_graph.cpp.o"
  "CMakeFiles/stcn_reid.dir/transition_graph.cpp.o.d"
  "libstcn_reid.a"
  "libstcn_reid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcn_reid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
