# Empty dependencies file for stcn_common.
# This may be replaced when dependencies are built.
