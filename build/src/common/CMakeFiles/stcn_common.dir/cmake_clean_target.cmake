file(REMOVE_RECURSE
  "libstcn_common.a"
)
