file(REMOVE_RECURSE
  "CMakeFiles/stcn_common.dir/geometry.cpp.o"
  "CMakeFiles/stcn_common.dir/geometry.cpp.o.d"
  "CMakeFiles/stcn_common.dir/rng.cpp.o"
  "CMakeFiles/stcn_common.dir/rng.cpp.o.d"
  "libstcn_common.a"
  "libstcn_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcn_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
