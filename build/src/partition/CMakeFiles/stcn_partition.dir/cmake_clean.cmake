file(REMOVE_RECURSE
  "CMakeFiles/stcn_partition.dir/strategies.cpp.o"
  "CMakeFiles/stcn_partition.dir/strategies.cpp.o.d"
  "libstcn_partition.a"
  "libstcn_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcn_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
