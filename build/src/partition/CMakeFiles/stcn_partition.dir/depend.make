# Empty dependencies file for stcn_partition.
# This may be replaced when dependencies are built.
