file(REMOVE_RECURSE
  "libstcn_partition.a"
)
