# Empty compiler generated dependencies file for vehicle_reid.
# This may be replaced when dependencies are built.
