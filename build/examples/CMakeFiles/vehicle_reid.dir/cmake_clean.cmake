file(REMOVE_RECURSE
  "CMakeFiles/vehicle_reid.dir/vehicle_reid.cpp.o"
  "CMakeFiles/vehicle_reid.dir/vehicle_reid.cpp.o.d"
  "vehicle_reid"
  "vehicle_reid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vehicle_reid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
