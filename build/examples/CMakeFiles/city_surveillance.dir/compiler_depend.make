# Empty compiler generated dependencies file for city_surveillance.
# This may be replaced when dependencies are built.
