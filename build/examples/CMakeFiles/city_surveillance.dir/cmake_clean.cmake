file(REMOVE_RECURSE
  "CMakeFiles/city_surveillance.dir/city_surveillance.cpp.o"
  "CMakeFiles/city_surveillance.dir/city_surveillance.cpp.o.d"
  "city_surveillance"
  "city_surveillance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/city_surveillance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
