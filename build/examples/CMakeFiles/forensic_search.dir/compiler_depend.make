# Empty compiler generated dependencies file for forensic_search.
# This may be replaced when dependencies are built.
