file(REMOVE_RECURSE
  "CMakeFiles/forensic_search.dir/forensic_search.cpp.o"
  "CMakeFiles/forensic_search.dir/forensic_search.cpp.o.d"
  "forensic_search"
  "forensic_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forensic_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
