// Quickstart: the 60-second tour of the framework.
//
// Generates a small synthetic city, stands up a 4-worker cluster, ingests
// the camera detections, and runs one of each query type.
//
//   ./quickstart
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/framework.h"
#include "partition/strategies.h"
#include "trace/generator.h"

using namespace stcn;

int main() {
  // 1. A synthetic scenario: an 8×8-block city, 24 cameras at
  //    intersections, 20 moving objects, 5 minutes of traffic.
  TraceConfig trace_config;
  trace_config.roads.grid_cols = 8;
  trace_config.roads.grid_rows = 8;
  trace_config.cameras.camera_count = 24;
  trace_config.mobility.object_count = 20;
  trace_config.duration = Duration::minutes(5);
  Trace trace = TraceGenerator::generate(trace_config);
  Rect world = trace.roads.bounds(120.0);
  std::printf("generated %zu detections from %zu cameras\n",
              trace.detections.size(), trace.cameras.size());

  // 2. A 4-worker cluster partitioned with the hybrid strategy.
  HybridStrategy::Config hybrid;
  hybrid.tiles_x = 4;
  hybrid.tiles_y = 4;
  ClusterConfig cluster_config;
  cluster_config.worker_count = 4;
  Cluster cluster(world,
                  std::make_unique<HybridStrategy>(world, trace.cameras, hybrid),
                  cluster_config);

  // 3. Ingest the detection stream (routed, replicated, indexed).
  cluster.ingest_all(trace.detections);
  std::printf("ingested; cluster moved %llu bytes over the network\n",
              static_cast<unsigned long long>(
                  cluster.network().counters().get("bytes_sent")));

  // 4. Spatio-temporal range query: everything near the city center in the
  //    first two minutes.
  Rect downtown = Rect::centered(world.center(), 250.0);
  QueryResult range = cluster.execute(
      Query::range(cluster.next_query_id(), downtown,
                   {TimePoint::origin(),
                    TimePoint::origin() + Duration::minutes(2)}));
  std::printf("range query: %zu detections downtown in the first 2 min\n",
              range.detections.size());

  // 5. k-NN: the 5 detections nearest an incident location.
  QueryResult knn = cluster.execute(Query::knn(
      cluster.next_query_id(), world.center(), 5, TimeInterval::all()));
  std::printf("knn query: nearest %zu detections to the incident\n",
              knn.detections.size());
  for (const Detection& d : knn.detections) {
    std::printf("  obj/%llu at (%.0f, %.0f) seen by cam/%llu\n",
                static_cast<unsigned long long>(d.object.value()),
                d.position.x, d.position.y,
                static_cast<unsigned long long>(d.camera.value()));
  }

  // 6. Trajectory reconstruction for one object.
  QueryResult trajectory = cluster.execute(Query::trajectory(
      cluster.next_query_id(), ObjectId(1), TimeInterval::all()));
  std::printf("trajectory of obj/1: %zu sightings\n",
              trajectory.detections.size());

  // 7. Aggregate: per-camera detection counts over the whole run.
  QueryResult counts = cluster.execute(
      Query::count(cluster.next_query_id(), world, TimeInterval::all(),
                   GroupBy::kCamera));
  std::printf("busiest cameras:\n");
  std::vector<std::pair<std::uint64_t, std::uint64_t>> by_count(
      counts.counts.begin(), counts.counts.end());
  std::sort(by_count.begin(), by_count.end(),
            [](auto a, auto b) { return a.second > b.second; });
  for (std::size_t i = 0; i < 3 && i < by_count.size(); ++i) {
    std::printf("  cam/%llu: %llu detections\n",
                static_cast<unsigned long long>(by_count[i].first),
                static_cast<unsigned long long>(by_count[i].second));
  }
  return 0;
}
