// City surveillance: continuous monitoring of sensitive zones.
//
// The scenario the paper's introduction motivates: a city-wide camera
// network where operators register standing queries over sensitive areas
// (a stadium, a transit hub) and receive live, incremental updates of who
// is inside each zone — plus an end-of-day occupancy report per zone.
//
//   ./city_surveillance
#include <cstdio>
#include <memory>
#include <set>
#include <vector>

#include "core/framework.h"
#include "partition/strategies.h"
#include "trace/generator.h"

using namespace stcn;

int main() {
  // A mid-size city with hotspot traffic (rush-hour style skew).
  TraceConfig trace_config;
  trace_config.roads.grid_cols = 12;
  trace_config.roads.grid_rows = 12;
  trace_config.cameras.camera_count = 80;
  trace_config.mobility.object_count = 60;
  trace_config.mobility.hotspot_fraction = 0.5;
  trace_config.duration = Duration::minutes(6);
  Trace trace = TraceGenerator::generate(trace_config);
  Rect world = trace.roads.bounds(150.0);

  ClusterConfig cluster_config;
  cluster_config.worker_count = 6;
  HybridStrategy::Config hybrid;
  hybrid.tiles_x = 6;
  hybrid.tiles_y = 6;
  hybrid.hot_camera_threshold = 4;
  Cluster cluster(world,
                  std::make_unique<HybridStrategy>(world, trace.cameras, hybrid),
                  cluster_config);

  // Register standing zone monitors BEFORE the stream starts: each emits
  // +/- deltas as objects enter and age out of a 90-second window.
  struct Zone {
    const char* name;
    QueryId id;
    Rect region;
  };
  std::vector<Zone> zones = {
      {"stadium", cluster.next_query_id(),
       Rect::centered({world.min.x + world.width() * 0.3,
                       world.min.y + world.height() * 0.3},
                      180.0)},
      {"transit-hub", cluster.next_query_id(),
       Rect::centered({world.min.x + world.width() * 0.7,
                       world.min.y + world.height() * 0.6},
                      180.0)},
      {"city-hall", cluster.next_query_id(),
       Rect::centered(world.center(), 120.0)},
  };
  for (const Zone& zone : zones) {
    cluster.install_monitor({zone.id, zone.region, Duration::seconds(90)});
  }

  // Replay the day's detection stream.
  cluster.ingest_all(trace.detections);
  cluster.advance_time(Duration::seconds(5));  // drain delta flushes

  std::printf("=== live zone status (delta-maintained) ===\n");
  for (const Zone& zone : zones) {
    auto deltas = cluster.drain_deltas(zone.id);
    std::size_t enters = 0;
    std::size_t exits = 0;
    for (const DeltaUpdate& d : deltas) {
      (d.positive ? enters : exits) += 1;
    }
    auto live = cluster.live_answer(zone.id);
    std::printf("%-12s %5zu entered, %5zu aged out, %4zu currently inside\n",
                zone.name, enters, exits, live.size());
  }

  // End-of-day occupancy report: per-zone detection counts by camera.
  std::printf("\n=== occupancy report ===\n");
  for (const Zone& zone : zones) {
    QueryResult counts = cluster.execute(
        Query::count(cluster.next_query_id(), zone.region,
                     TimeInterval::all(), GroupBy::kCamera));
    std::printf("%-12s %llu total detections across %zu cameras\n",
                zone.name,
                static_cast<unsigned long long>(counts.total_count()),
                counts.counts.size());
  }

  // Investigate: who was in the stadium zone during a specific window?
  std::printf("\n=== investigation: stadium, minutes 2-3 ===\n");
  QueryResult window = cluster.execute(Query::range(
      cluster.next_query_id(), zones[0].region,
      {TimePoint::origin() + Duration::minutes(2),
       TimePoint::origin() + Duration::minutes(3)}));
  std::set<std::uint64_t> objects;
  for (const Detection& d : window.detections) objects.insert(d.object.value());
  std::printf("%zu distinct objects sighted (%zu detections)\n",
              objects.size(), window.detections.size());
  return 0;
}
