// Live dashboard: a terminal heat-map of city activity, refreshed from
// streaming aggregation queries while the cluster rides out a worker crash.
//
// Demonstrates: streaming ingest in windows, per-cell occupancy aggregation,
// failover transparency (one worker crashes mid-run and answers stay
// complete), and recovery resync.
//
//   ./live_dashboard
#include <cstdio>
#include <memory>
#include <string>

#include <iostream>

#include "core/framework.h"
#include "core/stats_report.h"
#include "partition/strategies.h"
#include "trace/generator.h"

using namespace stcn;

namespace {

void render_heatmap(Cluster& cluster, const Rect& world,
                    const TimeInterval& window, std::uint32_t tenant) {
  constexpr int kCells = 12;
  double cw = world.width() / kCells;
  double ch = world.height() / kCells;
  // One count query per row keeps fan-out small per query.
  std::printf("   +%s+\n", std::string(kCells * 2, '-').c_str());
  for (int row = kCells - 1; row >= 0; --row) {
    std::printf("   |");
    for (int col = 0; col < kCells; ++col) {
      Rect cell{{world.min.x + col * cw, world.min.y + row * ch},
                {world.min.x + (col + 1) * cw, world.min.y + (row + 1) * ch}};
      QueryResult r = cluster.execute(
          Query::count(cluster.next_query_id(), cell, window)
              .with_tenant(tenant));
      std::uint64_t n = r.total_count();
      const char* glyph = n == 0   ? "  "
                          : n < 3  ? ". "
                          : n < 8  ? "o "
                          : n < 20 ? "O "
                                   : "# ";
      std::printf("%s", glyph);
    }
    std::printf("|\n");
  }
  std::printf("   +%s+\n", std::string(kCells * 2, '-').c_str());
}

// The operator panels under the heat-map: error-budget burn per objective
// and the ledger's heavy hitters per attribution dimension.
void render_slo_table(Cluster& cluster) {
  std::printf("\n--- SLO burn rates (5m/1h windows, sim clock) ---\n");
  std::printf("   %-20s %10s %10s %10s %8s\n", "objective", "target",
              "burn_5m", "burn_1h", "state");
  for (const SloEngine::Status& st : cluster.slo_engine().status()) {
    std::printf("   %-20s %9.2f%% %10.2f %10.2f %8s\n", st.name.c_str(),
                st.objective * 100.0, st.short_burn, st.long_burn,
                st.firing ? "FIRING" : "ok");
  }
}

// Partition heat table + the read-only placement advisor's ranked moves.
void render_heat_panel(Cluster& cluster) {
  const HeatMapSnapshot& heat = cluster.coordinator().heat();
  if (heat.empty()) return;
  HeatMapSnapshot::Skew skew =
      heat.skew(cluster.now(), &cluster.coordinator().partition_map());
  std::printf(
      "\n--- partition heat: stddev/mean %.2f, hot/cold %.1fx, "
      "gini %.2f ---\n",
      skew.load_relative_stddev, skew.hot_cold_ratio, skew.scan_gini);
  std::printf("%s", heat.render(cluster.now()).c_str());
  std::printf("--- placement advisor (read-only) ---\n%s",
              PlacementAdvisor::render(
                  cluster.coordinator().placement_advice(cluster.now()))
                  .c_str());
}

// Hot vs cold storage across all workers: the summed per-worker tier
// gauges, plus how the scan path touched the cold tier (blocks pruned by
// zone maps vs decoded into scratch).
void render_store_tiers(Cluster& cluster) {
  MetricsRegistry m = cluster.metrics_snapshot();
  double hot = m.gauge("worker.store_hot_bytes").value();
  double compressed = m.gauge("worker.store.compressed_bytes").value();
  double cold_blocks = m.gauge("worker.store.cold_blocks").value();
  // Decode scratch is per-process; in the simulator every worker shares
  // one process, so read the global figure instead of summing the
  // per-worker gauges.
  double scratch = static_cast<double>(cold_scratch_bytes());
  std::printf("\n--- storage tiers (all workers) ---\n");
  std::printf("   %-6s %12s %8s\n", "tier", "bytes", "blocks");
  std::printf("   %-6s %12.0f %8s\n", "hot", hot, "-");
  std::printf("   %-6s %12.0f %8.0f   (+%.0f B decode scratch)\n", "cold",
              compressed, cold_blocks, scratch);
  std::printf(
      "   cold scan path: %llu blocks scanned, %llu zone-skipped, "
      "%llu decode morsels\n",
      static_cast<unsigned long long>(
          m.counter("worker.store_cold_blocks_scanned").value()),
      static_cast<unsigned long long>(
          m.counter("worker.store_cold_blocks_skipped").value()),
      static_cast<unsigned long long>(
          m.counter("worker.store.decode_morsels").value()));
}

void render_heavy_hitters(Cluster& cluster) {
  const ResourceLedger& ledger = cluster.cost_ledger();
  std::printf("\n--- query cost: %llu queries, top consumers ---\n",
              static_cast<unsigned long long>(ledger.queries()));
  auto table = [](const char* dim, const TopKSketch& sketch) {
    auto rows = sketch.top();
    if (rows.empty()) return;
    std::printf("   by %-8s %-14s %8s %14s %12s\n", dim, "key", "queries",
                "rows_evaluated", "bytes_in");
    std::size_t shown = 0;
    for (const auto& r : rows) {
      if (++shown > 3) break;
      std::printf("   %-11s %-14s %8llu %14llu %12llu\n", "",
                  r.key.c_str(), static_cast<unsigned long long>(r.count),
                  static_cast<unsigned long long>(r.cost.rows_evaluated),
                  static_cast<unsigned long long>(r.cost.bytes_in));
    }
  };
  table("kind", ledger.by_kind());
  table("tenant", ledger.by_tenant());
  table("camera", ledger.by_camera());
}

}  // namespace

int main() {
  TraceConfig trace_config;
  trace_config.roads.grid_cols = 10;
  trace_config.roads.grid_rows = 10;
  trace_config.cameras.camera_count = 60;
  // Dense enough that hot partitions seal (and demote) full 4096-row
  // blocks within the run.
  trace_config.mobility.object_count = 300;
  trace_config.detection.redetect_interval = Duration::millis(500);
  trace_config.mobility.hotspot_fraction = 0.5;
  trace_config.duration = Duration::minutes(6);
  Trace trace = TraceGenerator::generate(trace_config);
  Rect world = trace.roads.bounds(150.0);

  ClusterConfig cluster_config;
  cluster_config.worker_count = 6;
  cluster_config.coordinator.query_timeout = Duration::millis(20);
  cluster_config.health.enabled = true;  // SLO burn rates on the sim clock
  cluster_config.tiered_storage = true;  // compress sealed blocks in place
  cluster_config.hot_sealed_blocks = 0;
  Cluster cluster(
      world,
      std::make_unique<SpatialGridStrategy>(world, 4, 4, trace.cameras),
      cluster_config);

  // Stream the trace in 2-minute windows, rendering after each.
  Duration window = Duration::minutes(2);
  std::size_t cursor = 0;
  for (int frame = 0; frame < 3; ++frame) {
    TimePoint window_end =
        TimePoint::origin() + window * static_cast<std::int64_t>(frame + 1);
    std::size_t begin = cursor;
    while (cursor < trace.detections.size() &&
           trace.detections[cursor].time < window_end) {
      ++cursor;
    }
    cluster.ingest_all(std::span<const Detection>(
        trace.detections.data() + begin, cursor - begin));

    if (frame == 1) {
      std::printf("\n*** worker 2 crashes (state lost) ***\n");
      cluster.crash_worker(WorkerId(2));
    }

    std::printf("\n=== window %d: t in [%lds, %lds), %zu new detections ===\n",
                frame, static_cast<long>((window_end - window).to_seconds()),
                static_cast<long>(window_end.to_seconds()), cursor - begin);
    render_heatmap(cluster, world, {window_end - window, window_end},
                   static_cast<std::uint32_t>(frame + 1));

    if (frame == 1) {
      Cluster::RecoveryReport recovery = cluster.restart_worker(WorkerId(2));
      std::printf(
          "*** worker 2 restarted; recovered %zu/%zu partitions in "
          "%.2f virtual ms ***\n",
          recovery.partitions_recovered, recovery.partitions_total,
          recovery.duration.to_seconds() * 1000.0);
    }
  }

  // Confirm nothing was lost across the crash.
  QueryResult all = cluster.execute(
      Query::count(cluster.next_query_id(), world, TimeInterval::all()));
  std::printf("\ntotal detections queryable: %llu (ingested %zu)\n",
              static_cast<unsigned long long>(all.total_count()), cursor);

  render_slo_table(cluster);
  render_heat_panel(cluster);
  render_store_tiers(cluster);
  render_heavy_hitters(cluster);
  std::printf("\n");
  std::cout << collect_stats(cluster);
  return 0;
}
