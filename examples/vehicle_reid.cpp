// Vehicle re-identification: "where did that car go?"
//
// An operator flags a detection at one camera; the framework learns a
// camera transition graph from the stream, expands the spatio-temporal
// cone of plausible reappearances, fetches only those camera windows from
// the distributed store, and reconstructs the vehicle's multi-camera path.
//
//   ./vehicle_reid
#include <cstdio>
#include <memory>
#include <set>

#include "core/framework.h"
#include "partition/strategies.h"
#include "reid/path_reconstruction.h"
#include "trace/generator.h"

using namespace stcn;

int main() {
  TraceConfig trace_config;
  trace_config.roads.grid_cols = 10;
  trace_config.roads.grid_rows = 10;
  trace_config.cameras.camera_count = 50;
  trace_config.mobility.object_count = 40;
  trace_config.duration = Duration::minutes(8);
  trace_config.detection.appearance_noise = 0.12;
  Trace trace = TraceGenerator::generate(trace_config);
  Rect world = trace.roads.bounds(150.0);

  ClusterConfig cluster_config;
  cluster_config.worker_count = 5;
  Cluster cluster(
      world,
      std::make_unique<SpatialGridStrategy>(world, 4, 4, trace.cameras),
      cluster_config);
  cluster.ingest_all(trace.detections);

  // Learn camera-to-camera travel times from the stream itself.
  TransitionGraph graph;
  graph.learn(trace.detections);
  std::printf("transition graph: %zu cameras, %zu edges\n",
              graph.camera_count(), graph.edge_count());

  // Pick a probe: a detection whose object is later seen elsewhere.
  const Detection* probe = nullptr;
  {
    std::unordered_map<ObjectId, const Detection*> first;
    std::unordered_map<ObjectId, std::set<std::uint64_t>> cameras;
    for (const Detection& d : trace.detections) {
      first.try_emplace(d.object, &d);
      cameras[d.object].insert(d.camera.value());
    }
    for (const auto& [obj, cams] : cameras) {
      if (cams.size() >= 4) {
        probe = first[obj];
        break;
      }
    }
  }
  if (probe == nullptr) {
    std::printf("no multi-camera object in this trace\n");
    return 1;
  }
  std::printf("\nprobe: obj seen at cam/%llu, t=%.1fs, pos (%.0f, %.0f)\n",
              static_cast<unsigned long long>(probe->camera.value()),
              probe->time.to_seconds(), probe->position.x,
              probe->position.y);

  // Single-hop re-id: where does it most likely reappear next?
  ReidParams reid_params;
  reid_params.cone.max_hops = 2;
  reid_params.cone.min_edge_count = 2;
  reid_params.min_similarity = 0.55;
  ReidEngine engine(graph, reid_params);
  DistributedCandidateSource source(cluster, trace.cameras);

  TimeInterval horizon{probe->time, probe->time + Duration::minutes(3)};
  ReidOutcome outcome = engine.find_matches(*probe, horizon, source);
  std::printf(
      "cone search: %llu cameras queried, %llu candidates examined\n",
      static_cast<unsigned long long>(outcome.cameras_queried),
      static_cast<unsigned long long>(outcome.candidates_examined));
  std::printf("top matches:\n");
  for (std::size_t i = 0; i < outcome.matches.size() && i < 3; ++i) {
    const ReidMatch& m = outcome.matches[i];
    std::printf("  score %6.2f  cam/%llu t=%.1fs  %s\n", m.score,
                static_cast<unsigned long long>(m.detection.camera.value()),
                m.detection.time.to_seconds(),
                m.detection.object == probe->object ? "(TRUE match)"
                                                    : "(impostor)");
  }

  // Full path reconstruction with beam search.
  PathParams path_params;
  path_params.beam_width = 4;
  path_params.max_path_length = 10;
  path_params.hop_horizon = Duration::minutes(2);
  PathReconstructor reconstructor(engine, path_params);
  ReconstructedPath path = reconstructor.reconstruct(*probe, source);

  std::printf("\nreconstructed path (%zu hops, score %.2f):\n",
              path.hops.size(), path.score);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < path.hops.size(); ++i) {
    const Detection& d = path.hops[i];
    bool truth = d.object == probe->object;
    if (i > 0 && truth) ++correct;
    std::printf("  hop %zu: cam/%llu t=%6.1fs (%.0f, %.0f) %s\n", i,
                static_cast<unsigned long long>(d.camera.value()),
                d.time.to_seconds(), d.position.x, d.position.y,
                truth ? "✓" : "✗");
  }
  if (path.hops.size() > 1) {
    std::printf("hop accuracy: %zu/%zu\n", correct, path.hops.size() - 1);
  }
  return 0;
}
