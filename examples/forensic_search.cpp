// Forensic search: an incident-response investigation workflow.
//
// A full analyst session over the distributed store, chaining the
// framework's query types:
//   1. An incident is reported at a location and time → k-NN finds the
//      detections closest to the scene.
//   2. A range query over the surrounding block reconstructs the scene's
//      population in the minutes before the incident.
//   3. The most suspicious object (closest at incident time) is traced
//      backward and forward with trajectory queries.
//   4. Appearance-based re-identification (cone-pruned) finds where the
//      suspect went after leaving the scene, even across coverage gaps.
//   5. A heatmap of the suspect's era shows city-wide context.
//
//   ./forensic_search
#include <cstdio>
#include <memory>
#include <set>

#include "core/framework.h"
#include "partition/strategies.h"
#include "query/colocation.h"
#include "reid/path_reconstruction.h"
#include "trace/generator.h"

using namespace stcn;

int main() {
  TraceConfig trace_config;
  trace_config.roads.grid_cols = 10;
  trace_config.roads.grid_rows = 10;
  trace_config.cameras.camera_count = 55;
  trace_config.mobility.object_count = 45;
  trace_config.duration = Duration::minutes(8);
  trace_config.seed = 2024;
  Trace trace = TraceGenerator::generate(trace_config);
  Rect world = trace.roads.bounds(150.0);

  ClusterConfig cluster_config;
  cluster_config.worker_count = 6;
  HybridStrategy::Config hybrid;
  hybrid.tiles_x = 5;
  hybrid.tiles_y = 5;
  Cluster cluster(world,
                  std::make_unique<HybridStrategy>(world, trace.cameras, hybrid),
                  cluster_config);
  cluster.ingest_all(trace.detections);

  // ---- 1. The incident ---------------------------------------------------
  Point scene = world.center();
  TimePoint incident_time = TimePoint::origin() + Duration::minutes(4);
  std::printf("INCIDENT at (%.0f, %.0f), t=%.0fs\n", scene.x, scene.y,
              incident_time.to_seconds());

  TimeInterval incident_window{incident_time - Duration::seconds(30),
                               incident_time + Duration::seconds(30)};
  QueryResult nearest = cluster.execute(Query::knn(
      cluster.next_query_id(), scene, 5, incident_window));
  std::printf("\n[1] %zu detections nearest the scene (±30 s):\n",
              nearest.detections.size());
  for (const Detection& d : nearest.detections) {
    std::printf("    obj/%llu at %.0f m, cam/%llu, t=%.0fs\n",
                static_cast<unsigned long long>(d.object.value()),
                distance(d.position, scene),
                static_cast<unsigned long long>(d.camera.value()),
                d.time.to_seconds());
  }
  if (nearest.detections.empty()) {
    std::printf("no witnesses; case cold.\n");
    return 0;
  }
  const Detection suspect_sighting = nearest.detections.front();
  ObjectId suspect = suspect_sighting.object;

  // ---- 2. Who else was around --------------------------------------------
  QueryResult scene_population = cluster.execute(Query::range(
      cluster.next_query_id(), Rect::centered(scene, 150.0),
      {incident_time - Duration::minutes(2), incident_time}));
  std::set<std::uint64_t> bystanders;
  for (const Detection& d : scene_population.detections) {
    bystanders.insert(d.object.value());
  }
  std::printf("\n[2] scene population in the prior 2 min: %zu objects, "
              "%zu detections\n",
              bystanders.size(), scene_population.detections.size());

  // ---- 3. The suspect's movements -----------------------------------------
  QueryResult before = cluster.execute(Query::trajectory(
      cluster.next_query_id(), suspect,
      {TimePoint::origin(), incident_time}));
  QueryResult after = cluster.execute(Query::trajectory(
      cluster.next_query_id(), suspect,
      {incident_time, TimePoint::origin() + Duration::minutes(8)}));
  std::printf("\n[3] suspect obj/%llu: %zu sightings before, %zu after\n",
              static_cast<unsigned long long>(suspect.value()),
              before.detections.size(), after.detections.size());
  if (!before.detections.empty()) {
    const Detection& first = before.detections.front();
    std::printf("    first seen t=%.0fs at cam/%llu\n",
                first.time.to_seconds(),
                static_cast<unsigned long long>(first.camera.value()));
  }

  // ---- 4. Appearance-based pursuit (as if the id were unknown) -----------
  TransitionGraph graph;
  graph.learn(trace.detections);
  ReidParams reid_params;
  reid_params.cone.max_hops = 2;
  reid_params.cone.min_edge_count = 2;
  reid_params.min_similarity = 0.55;
  ReidEngine engine(graph, reid_params);
  PathParams path_params;
  path_params.beam_width = 4;
  path_params.max_path_length = 8;
  path_params.hop_horizon = Duration::minutes(2);
  PathReconstructor reconstructor(engine, path_params);
  DistributedCandidateSource source(cluster, trace.cameras);

  ReconstructedPath pursuit = reconstructor.reconstruct(suspect_sighting,
                                                        source);
  std::printf("\n[4] appearance-only pursuit: %zu hops "
              "(%llu candidates examined)\n",
              pursuit.hops.size(),
              static_cast<unsigned long long>(pursuit.candidates_examined));
  std::size_t correct = 0;
  for (std::size_t i = 1; i < pursuit.hops.size(); ++i) {
    if (pursuit.hops[i].object == suspect) ++correct;
    std::printf("    hop %zu: cam/%llu t=%.0fs %s\n", i,
                static_cast<unsigned long long>(
                    pursuit.hops[i].camera.value()),
                pursuit.hops[i].time.to_seconds(),
                pursuit.hops[i].object == suspect ? "(suspect)"
                                                  : "(lookalike)");
  }
  if (pursuit.hops.size() > 1) {
    std::printf("    pursuit accuracy: %zu/%zu\n", correct,
                pursuit.hops.size() - 1);
  }

  // ---- 4b. Who was the suspect meeting with? ------------------------------
  // Co-location mining over the suspect's era: pairs repeatedly seen
  // within 25 m / 10 s of each other.
  QueryResult era = cluster.execute(Query::range(
      cluster.next_query_id(), world,
      {incident_time - Duration::minutes(3),
       incident_time + Duration::minutes(3)}));
  CoLocationParams meet_params;
  meet_params.max_distance = 25.0;
  meet_params.max_gap = Duration::seconds(10);
  meet_params.min_events = 3;
  auto meetings = find_meetings(era.detections, meet_params);
  std::printf("\n[4b] co-location mining (±3 min): %zu significant pairs\n",
              meetings.size());
  for (const Meeting& m : meetings) {
    if (m.a != suspect && m.b != suspect) continue;
    ObjectId companion = m.a == suspect ? m.b : m.a;
    std::printf("    suspect repeatedly near obj/%llu: %zu events over "
                "%zu cameras\n",
                static_cast<unsigned long long>(companion.value()), m.events,
                m.distinct_cameras);
  }

  // ---- 5. City-wide context ----------------------------------------------
  QueryResult heat = cluster.execute(Query::heatmap(
      cluster.next_query_id(), world, world.width() / 8,
      {incident_time - Duration::minutes(2),
       incident_time + Duration::minutes(2)}));
  std::uint64_t busiest_cell = 0;
  std::uint64_t busiest_count = 0;
  for (const auto& [cell, count] : heat.counts) {
    if (count > busiest_count) {
      busiest_count = count;
      busiest_cell = cell;
    }
  }
  std::printf("\n[5] city heatmap around the incident: %llu detections, "
              "busiest cell #%llu with %llu\n",
              static_cast<unsigned long long>(heat.total_count()),
              static_cast<unsigned long long>(busiest_cell),
              static_cast<unsigned long long>(busiest_count));

  std::printf("\ninvestigation complete: fan-out averaged %.2f workers "
              "per query.\n",
              cluster.coordinator().mean_fanout());
  return 0;
}
