#include "reid/tracker.h"

#include <gtest/gtest.h>

#include <set>

#include "trace/generator.h"

namespace stcn {
namespace {

AppearanceFeature embedding(std::initializer_list<float> values) {
  AppearanceFeature f;
  f.values = values;
  f.normalize();
  return f;
}

Detection det(std::uint64_t id, std::uint64_t camera, std::uint64_t object,
              std::int64_t t_seconds, AppearanceFeature appearance) {
  Detection d;
  d.id = DetectionId(id);
  d.camera = CameraId(camera);
  d.object = ObjectId(object);
  d.time = TimePoint(t_seconds * 1'000'000);
  d.appearance = std::move(appearance);
  return d;
}

TrackerConfig config() {
  TrackerConfig c;
  c.transition.min_edge_count = 1;
  return c;
}

/// A graph where 1→2 takes ~10 s.
TransitionGraph simple_graph() {
  TransitionGraph g;
  for (int s : {9, 10, 11}) {
    g.observe(CameraId(1), CameraId(2), Duration::seconds(s));
  }
  return g;
}

TEST(OnlineTracker, FirstDetectionOpensTrack) {
  TransitionGraph g = simple_graph();
  OnlineTracker tracker(g, config());
  TrackId t = tracker.observe(det(1, 1, 7, 0, embedding({1, 0, 0, 0})));
  EXPECT_EQ(t, TrackId(1));
  EXPECT_EQ(tracker.active_count(), 1u);
  EXPECT_EQ(tracker.all_tracks().size(), 1u);
}

TEST(OnlineTracker, SameCameraRedetectionAssociates) {
  TransitionGraph g = simple_graph();
  OnlineTracker tracker(g, config());
  AppearanceFeature f = embedding({1, 0, 0, 0});
  TrackId a = tracker.observe(det(1, 1, 7, 0, f));
  TrackId b = tracker.observe(det(2, 1, 7, 3, f));
  EXPECT_EQ(a, b);
  EXPECT_EQ(tracker.track(a).detections.size(), 2u);
}

TEST(OnlineTracker, CrossCameraAssociatesViaTransitionEdge) {
  TransitionGraph g = simple_graph();
  OnlineTracker tracker(g, config());
  AppearanceFeature f = embedding({1, 0, 0, 0});
  TrackId a = tracker.observe(det(1, 1, 7, 0, f));
  TrackId b = tracker.observe(det(2, 2, 7, 10, f));  // plausible travel
  EXPECT_EQ(a, b);
}

TEST(OnlineTracker, ImplausibleTravelTimeOpensNewTrack) {
  TransitionGraph g = simple_graph();
  OnlineTracker tracker(g, config());
  AppearanceFeature f = embedding({1, 0, 0, 0});
  TrackId a = tracker.observe(det(1, 1, 7, 0, f));
  // Arrives after 100 s on a ~10 s edge: gated out.
  TrackId b = tracker.observe(det(2, 2, 7, 100, f));
  EXPECT_NE(a, b);
}

TEST(OnlineTracker, NoTransitionEdgeOpensNewTrack) {
  TransitionGraph g = simple_graph();
  OnlineTracker tracker(g, config());
  AppearanceFeature f = embedding({1, 0, 0, 0});
  TrackId a = tracker.observe(det(1, 1, 7, 0, f));
  TrackId b = tracker.observe(det(2, 9, 7, 10, f));  // camera 9 unknown
  EXPECT_NE(a, b);
}

TEST(OnlineTracker, DissimilarAppearanceOpensNewTrack) {
  TransitionGraph g = simple_graph();
  OnlineTracker tracker(g, config());
  TrackId a = tracker.observe(det(1, 1, 7, 0, embedding({1, 0, 0, 0})));
  TrackId b =
      tracker.observe(det(2, 2, 8, 10, embedding({0, 1, 0, 0})));
  EXPECT_NE(a, b);
}

TEST(OnlineTracker, PicksBestScoringTrackAmongCandidates) {
  TransitionGraph g = simple_graph();
  OnlineTracker tracker(g, config());
  // Two tracks at camera 1 with different appearances.
  TrackId red = tracker.observe(det(1, 1, 1, 0, embedding({1, 0, 0, 0})));
  TrackId blue = tracker.observe(det(2, 1, 2, 0, embedding({0, 1, 0, 0})));
  // A red-looking detection at camera 2 after plausible travel.
  TrackId chosen =
      tracker.observe(det(3, 2, 1, 10, embedding({0.95f, 0.2f, 0, 0})));
  EXPECT_EQ(chosen, red);
  EXPECT_NE(chosen, blue);
}

TEST(OnlineTracker, RetiredTracksDoNotAssociate) {
  TransitionGraph g = simple_graph();
  TrackerConfig cfg = config();
  cfg.max_silence = Duration::seconds(30);
  OnlineTracker tracker(g, cfg);
  AppearanceFeature f = embedding({1, 0, 0, 0});
  TrackId a = tracker.observe(det(1, 1, 7, 0, f));
  tracker.advance_to(TimePoint(60'000'000));  // a retires
  EXPECT_EQ(tracker.active_count(), 0u);
  TrackId b = tracker.observe(det(2, 1, 7, 61, f));
  EXPECT_NE(a, b);
  EXPECT_TRUE(tracker.track(a).retired);
}

TEST(OnlineTracker, EndToEndTracksAreMostlyPure) {
  TraceConfig tc;
  tc.roads.grid_cols = 8;
  tc.roads.grid_rows = 8;
  tc.cameras.camera_count = 30;
  tc.mobility.object_count = 25;
  tc.duration = Duration::minutes(8);
  tc.detection.appearance_noise = 0.08;
  Trace trace = TraceGenerator::generate(tc);

  TransitionGraph graph;
  graph.learn(trace.detections);

  TrackerConfig cfg;
  cfg.transition.min_edge_count = 2;
  OnlineTracker tracker(graph, cfg);
  for (const Detection& d : trace.detections) {
    tracker.observe(d);
    tracker.advance_to(d.time);
  }
  TrackingMetrics m = TrackingMetrics::evaluate(tracker.all_tracks());
  EXPECT_GT(m.tracks, 0u);
  EXPECT_EQ(m.true_objects, 25u);
  EXPECT_GT(m.purity, 0.85) << "tracks should rarely mix objects";
  // Fragmentation bounded: objects may split at unseen transitions, but
  // not into dozens of fragments.
  EXPECT_LT(m.fragmentation, 20.0);
}

TEST(OnlineTracker, MoreNoiseMorePureTracksTradeoff) {
  auto run = [](double noise) {
    TraceConfig tc;
    tc.roads.grid_cols = 8;
    tc.roads.grid_rows = 8;
    tc.cameras.camera_count = 25;
    tc.mobility.object_count = 20;
    tc.duration = Duration::minutes(6);
    tc.detection.appearance_noise = noise;
    Trace trace = TraceGenerator::generate(tc);
    TransitionGraph graph;
    graph.learn(trace.detections);
    TrackerConfig cfg;
    cfg.transition.min_edge_count = 2;
    OnlineTracker tracker(graph, cfg);
    for (const Detection& d : trace.detections) {
      tracker.observe(d);
      tracker.advance_to(d.time);
    }
    return TrackingMetrics::evaluate(tracker.all_tracks());
  };
  TrackingMetrics clean = run(0.05);
  TrackingMetrics noisy = run(0.5);
  // Heavy appearance noise fragments tracks (associations fail the gate).
  EXPECT_GT(noisy.fragmentation, clean.fragmentation);
}

TEST(TrackingMetrics, HandConstructedCases) {
  // Perfect: one pure track per object.
  Track t1;
  t1.id = TrackId(1);
  t1.detections = {det(1, 1, 7, 0, {}), det(2, 2, 7, 10, {})};
  Track t2;
  t2.id = TrackId(2);
  t2.detections = {det(3, 1, 8, 0, {})};
  TrackingMetrics perfect = TrackingMetrics::evaluate({t1, t2});
  EXPECT_DOUBLE_EQ(perfect.purity, 1.0);
  EXPECT_DOUBLE_EQ(perfect.fragmentation, 1.0);
  EXPECT_EQ(perfect.id_switches, 0u);

  // Impure: a track mixing two objects + a switch.
  Track mixed;
  mixed.id = TrackId(1);
  mixed.detections = {det(1, 1, 7, 0, {}), det(2, 2, 8, 10, {}),
                      det(3, 2, 7, 20, {})};
  Track other;
  other.id = TrackId(2);
  other.detections = {det(4, 3, 8, 30, {})};
  TrackingMetrics m = TrackingMetrics::evaluate({mixed, other});
  EXPECT_NEAR(m.purity, (2.0 / 3.0 + 1.0) / 2.0, 1e-9);
  EXPECT_EQ(m.id_switches, 1u);  // object 8 moves track 1 → track 2
  EXPECT_NEAR(m.fragmentation, 1.5, 1e-9);  // obj7: 1 track, obj8: 2 tracks
}

TEST(TrackingMetrics, EmptyInput) {
  TrackingMetrics m = TrackingMetrics::evaluate({});
  EXPECT_EQ(m.tracks, 0u);
  EXPECT_DOUBLE_EQ(m.purity, 0.0);
}

}  // namespace
}  // namespace stcn
