// Cross-cutting property tests: invariants that must hold for the whole
// pipeline across randomized scenarios (parameterized over seeds).
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "baseline/centralized.h"
#include "core/framework.h"
#include "partition/strategies.h"
#include "trace/generator.h"

namespace stcn {
namespace {

TraceConfig config_for_seed(std::uint64_t seed) {
  TraceConfig c;
  c.roads.grid_cols = 6;
  c.roads.grid_rows = 6;
  c.roads.seed = seed;
  c.cameras.camera_count = 18;
  c.cameras.seed = seed + 1;
  c.mobility.object_count = 15;
  c.mobility.seed = seed + 2;
  c.duration = Duration::minutes(3);
  c.seed = seed + 3;
  return c;
}

class PipelineProperty : public ::testing::TestWithParam<std::uint64_t> {};

// Property 1: every detection ingested is retrievable — the whole-world
// whole-time range query returns exactly the trace.
TEST_P(PipelineProperty, NoDetectionLostEndToEnd) {
  Trace trace = TraceGenerator::generate(config_for_seed(GetParam()));
  Rect world = trace.roads.bounds(120.0);
  ClusterConfig config;
  config.worker_count = 3;
  Cluster cluster(
      world,
      std::make_unique<SpatialGridStrategy>(world, 2, 2, trace.cameras),
      config);
  cluster.ingest_all(trace.detections);

  QueryResult all = cluster.execute(
      Query::range(cluster.next_query_id(), world, TimeInterval::all()));
  EXPECT_EQ(all.detections.size(), trace.detections.size());
}

// Property 2: query results are independent of worker count.
TEST_P(PipelineProperty, ResultsIndependentOfWorkerCount) {
  Trace trace = TraceGenerator::generate(config_for_seed(GetParam()));
  Rect world = trace.roads.bounds(120.0);
  Rng rng(GetParam() * 31);
  Rect region = Rect::centered(
      {rng.uniform(world.min.x, world.max.x),
       rng.uniform(world.min.y, world.max.y)},
      300.0);

  auto run = [&](std::size_t workers) {
    ClusterConfig config;
    config.worker_count = workers;
    Cluster cluster(
        world,
        std::make_unique<SpatialGridStrategy>(world, 3, 3, trace.cameras),
        config);
    cluster.ingest_all(trace.detections);
    QueryResult r = cluster.execute(
        Query::range(cluster.next_query_id(), region, TimeInterval::all()));
    std::set<std::uint64_t> ids;
    for (const Detection& d : r.detections) ids.insert(d.id.value());
    return ids;
  };
  auto one = run(1);
  auto four = run(4);
  auto nine = run(9);
  EXPECT_EQ(one, four);
  EXPECT_EQ(four, nine);
}

// Property 3: count queries and range queries agree.
TEST_P(PipelineProperty, CountEqualsRangeCardinality) {
  Trace trace = TraceGenerator::generate(config_for_seed(GetParam()));
  Rect world = trace.roads.bounds(120.0);
  ClusterConfig config;
  config.worker_count = 4;
  Cluster cluster(world, std::make_unique<HashStrategy>(8), config);
  cluster.ingest_all(trace.detections);

  Rng rng(GetParam() * 17);
  for (int trial = 0; trial < 5; ++trial) {
    Rect region = Rect::centered(
        {rng.uniform(world.min.x, world.max.x),
         rng.uniform(world.min.y, world.max.y)},
        rng.uniform(50.0, 400.0));
    TimeInterval interval{TimePoint(0),
                          TimePoint(rng.uniform_int(1, 180'000'000))};
    QueryResult range = cluster.execute(
        Query::range(cluster.next_query_id(), region, interval));
    QueryResult count = cluster.execute(
        Query::count(cluster.next_query_id(), region, interval));
    EXPECT_EQ(count.total_count(), range.detections.size());
  }
}

// Property 4: trajectory queries return each object's detections exactly,
// partitioned across objects (no leakage between objects).
TEST_P(PipelineProperty, TrajectoriesPartitionTheTrace) {
  Trace trace = TraceGenerator::generate(config_for_seed(GetParam()));
  Rect world = trace.roads.bounds(120.0);
  ClusterConfig config;
  config.worker_count = 3;
  Cluster cluster(
      world,
      std::make_unique<SpatialGridStrategy>(world, 2, 2, trace.cameras),
      config);
  cluster.ingest_all(trace.detections);

  std::size_t total = 0;
  std::set<std::uint64_t> seen;
  for (std::uint64_t obj = 1; obj <= 15; ++obj) {
    QueryResult r = cluster.execute(Query::trajectory(
        cluster.next_query_id(), ObjectId(obj), TimeInterval::all()));
    for (const Detection& d : r.detections) {
      EXPECT_EQ(d.object, ObjectId(obj));
      EXPECT_TRUE(seen.insert(d.id.value()).second);
    }
    total += r.detections.size();
  }
  EXPECT_EQ(total, trace.detections.size());
}

// Property 5: k-NN results grow monotonically with k and are prefix-stable.
TEST_P(PipelineProperty, KnnMonotoneInK) {
  Trace trace = TraceGenerator::generate(config_for_seed(GetParam()));
  Rect world = trace.roads.bounds(120.0);
  CentralizedIndex index(world);
  index.ingest_all(trace.detections);

  Point center = world.center();
  std::vector<double> prev_distances;
  for (std::uint32_t k : {1u, 3u, 8u, 20u}) {
    QueryResult r = index.execute(
        Query::knn(QueryId(k), center, k, TimeInterval::all()));
    ASSERT_LE(r.detections.size(), k);
    std::vector<double> distances;
    for (const Detection& d : r.detections) {
      distances.push_back(distance(d.position, center));
    }
    for (std::size_t i = 1; i < distances.size(); ++i) {
      EXPECT_LE(distances[i - 1], distances[i]);
    }
    // Previous k's distance sequence must be a prefix of this one's.
    for (std::size_t i = 0; i < prev_distances.size(); ++i) {
      ASSERT_LT(i, distances.size());
      EXPECT_DOUBLE_EQ(prev_distances[i], distances[i]);
    }
    prev_distances = distances;
  }
}

// Property 6: the wire codecs survive every message produced by a run
// (exercised implicitly end-to-end; here, explicit fuzz of random queries).
TEST_P(PipelineProperty, QueryCodecFuzz) {
  Rng rng(GetParam() * 101);
  for (int i = 0; i < 200; ++i) {
    Query q;
    q.id = QueryId(rng.next_u64());
    q.kind = static_cast<QueryKind>(rng.uniform_index(6));
    q.interval = {TimePoint(rng.uniform_int(-1000, 1000)),
                  TimePoint(rng.uniform_int(-1000, 1000))};
    q.region = Rect::spanning({rng.uniform(-1e6, 1e6), rng.uniform(-1e6, 1e6)},
                              {rng.uniform(-1e6, 1e6), rng.uniform(-1e6, 1e6)});
    q.center = {rng.uniform(-1e6, 1e6), rng.uniform(-1e6, 1e6)};
    q.k = static_cast<std::uint32_t>(rng.uniform_index(1000));
    q.object = ObjectId(rng.next_u64());
    q.camera = CameraId(rng.next_u64());
    BinaryWriter w;
    serialize(w, q);
    BinaryReader r(w.bytes());
    Query back = deserialize_query(r);
    ASSERT_FALSE(r.failed());
    ASSERT_EQ(back.id, q.id);
    ASSERT_EQ(back.kind, q.kind);
    ASSERT_EQ(back.k, q.k);
    ASSERT_EQ(back.region, q.region);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty,
                         ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace stcn
