#include "trace/camera.h"

#include <gtest/gtest.h>

#include <set>

namespace stcn {
namespace {

RoadNetwork make_roads() {
  RoadNetworkConfig c;
  c.grid_cols = 6;
  c.grid_rows = 6;
  c.block_size_m = 120.0;
  c.removal_fraction = 0.0;
  c.seed = 1;
  return RoadNetwork::build(c);
}

CameraNetworkConfig camera_config(std::size_t n) {
  CameraNetworkConfig c;
  c.camera_count = n;
  c.fov_range_m = 60.0;
  c.fov_half_angle_rad = 0.6;
  c.seed = 5;
  return c;
}

TEST(CameraNetwork, PlacesRequestedCount) {
  RoadNetwork roads = make_roads();
  CameraNetwork net = CameraNetwork::place(roads, camera_config(20));
  EXPECT_EQ(net.size(), 20u);
  EXPECT_EQ(net.cameras().size(), 20u);
}

TEST(CameraNetwork, IdsAreSequentialAndLookupWorks) {
  RoadNetwork roads = make_roads();
  CameraNetwork net = CameraNetwork::place(roads, camera_config(10));
  for (std::size_t i = 1; i <= 10; ++i) {
    CameraId id(i);
    EXPECT_TRUE(net.has_camera(id));
    EXPECT_EQ(net.camera(id).id, id);
  }
  EXPECT_FALSE(net.has_camera(CameraId(11)));
  EXPECT_FALSE(net.has_camera(CameraId(0)));
}

TEST(CameraNetwork, CamerasSitOnRoadNodes) {
  RoadNetwork roads = make_roads();
  CameraNetwork net = CameraNetwork::place(roads, camera_config(12));
  for (const Camera& cam : net.cameras()) {
    EXPECT_EQ(cam.fov.apex, roads.node_position(cam.mount_node));
  }
}

TEST(CameraNetwork, DistinctNodesWhenEnoughIntersections) {
  RoadNetwork roads = make_roads();  // 36 intersections
  CameraNetwork net = CameraNetwork::place(roads, camera_config(30));
  std::set<RoadNodeIndex> nodes;
  for (const Camera& cam : net.cameras()) nodes.insert(cam.mount_node);
  EXPECT_EQ(nodes.size(), 30u);
}

TEST(CameraNetwork, MoreCamerasThanNodesWrapsAround) {
  RoadNetwork roads = make_roads();  // 36 intersections
  CameraNetwork net = CameraNetwork::place(roads, camera_config(50));
  EXPECT_EQ(net.size(), 50u);
  std::set<RoadNodeIndex> nodes;
  for (const Camera& cam : net.cameras()) nodes.insert(cam.mount_node);
  EXPECT_EQ(nodes.size(), 36u);  // every node used at least once
}

TEST(CameraNetwork, CamerasSeeingMatchesFovContains) {
  RoadNetwork roads = make_roads();
  CameraNetwork net = CameraNetwork::place(roads, camera_config(25));
  Rng rng(7);
  Rect world = roads.bounds(100.0);
  for (int i = 0; i < 500; ++i) {
    Point p{rng.uniform(world.min.x, world.max.x),
            rng.uniform(world.min.y, world.max.y)};
    std::set<std::uint64_t> via_hash;
    for (CameraId id : net.cameras_seeing(p)) via_hash.insert(id.value());
    std::set<std::uint64_t> via_scan;
    for (const Camera& cam : net.cameras()) {
      if (cam.fov.contains(p)) via_scan.insert(cam.id.value());
    }
    ASSERT_EQ(via_hash, via_scan) << "mismatch at " << p;
  }
}

TEST(CameraNetwork, ApexSeenByItsOwnCamera) {
  RoadNetwork roads = make_roads();
  CameraNetwork net = CameraNetwork::place(roads, camera_config(8));
  for (const Camera& cam : net.cameras()) {
    auto seeing = net.cameras_seeing(cam.fov.apex);
    EXPECT_NE(std::find(seeing.begin(), seeing.end(), cam.id), seeing.end());
  }
}

TEST(CameraNetwork, CoverageBoundsContainAllFovs) {
  RoadNetwork roads = make_roads();
  CameraNetwork net = CameraNetwork::place(roads, camera_config(15));
  Rect world = net.coverage_bounds();
  for (const Camera& cam : net.cameras()) {
    Rect box = cam.fov.bounding_box();
    EXPECT_LE(world.min.x, box.min.x);
    EXPECT_LE(world.min.y, box.min.y);
    EXPECT_GE(world.max.x, box.max.x);
    EXPECT_GE(world.max.y, box.max.y);
  }
}

TEST(CameraNetwork, DeterministicPlacement) {
  RoadNetwork roads = make_roads();
  CameraNetwork a = CameraNetwork::place(roads, camera_config(10));
  CameraNetwork b = CameraNetwork::place(roads, camera_config(10));
  for (std::size_t i = 1; i <= 10; ++i) {
    const Camera& ca = a.camera(CameraId(i));
    const Camera& cb = b.camera(CameraId(i));
    EXPECT_EQ(ca.fov.apex, cb.fov.apex);
    EXPECT_DOUBLE_EQ(ca.fov.heading, cb.fov.heading);
  }
}

}  // namespace
}  // namespace stcn
