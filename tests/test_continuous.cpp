#include "query/continuous.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"

namespace stcn {
namespace {

Detection make_detection(std::uint64_t id, Point pos, std::int64_t t) {
  Detection d;
  d.id = DetectionId(id);
  d.camera = CameraId(1);
  d.object = ObjectId(1);
  d.time = TimePoint(t);
  d.position = pos;
  return d;
}

Rect world() { return {{0, 0}, {1000, 1000}}; }

TEST(ContinuousQueryManager, InstallAndRemove) {
  ContinuousQueryManager manager(world());
  EXPECT_EQ(manager.monitor_count(), 0u);
  manager.install({QueryId(1), {{0, 0}, {100, 100}}, Duration::minutes(1)});
  EXPECT_EQ(manager.monitor_count(), 1u);
  manager.remove(QueryId(1));
  EXPECT_EQ(manager.monitor_count(), 0u);
}

TEST(ContinuousQueryManager, PositiveDeltaOnMatchingDetection) {
  ContinuousQueryManager manager(world());
  manager.install({QueryId(1), {{0, 0}, {100, 100}}, Duration::minutes(1)});
  std::vector<DeltaUpdate> deltas;
  manager.on_detection(make_detection(1, {50, 50}, 1000), deltas);
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].query, QueryId(1));
  EXPECT_TRUE(deltas[0].positive);
  EXPECT_EQ(deltas[0].detection.id, DetectionId(1));
}

TEST(ContinuousQueryManager, NoDeltaOutsideRegion) {
  ContinuousQueryManager manager(world());
  manager.install({QueryId(1), {{0, 0}, {100, 100}}, Duration::minutes(1)});
  std::vector<DeltaUpdate> deltas;
  manager.on_detection(make_detection(1, {500, 500}, 1000), deltas);
  EXPECT_TRUE(deltas.empty());
}

TEST(ContinuousQueryManager, OverlappingMonitorsBothFire) {
  ContinuousQueryManager manager(world());
  manager.install({QueryId(1), {{0, 0}, {100, 100}}, Duration::minutes(1)});
  manager.install({QueryId(2), {{40, 40}, {200, 200}}, Duration::minutes(1)});
  std::vector<DeltaUpdate> deltas;
  manager.on_detection(make_detection(1, {50, 50}, 1000), deltas);
  std::set<std::uint64_t> fired;
  for (const DeltaUpdate& d : deltas) fired.insert(d.query.value());
  EXPECT_EQ(fired, (std::set<std::uint64_t>{1, 2}));
}

TEST(ContinuousQueryManager, NegativeDeltaWhenWindowExpires) {
  ContinuousQueryManager manager(world());
  manager.install({QueryId(1), {{0, 0}, {100, 100}}, Duration::seconds(10)});
  std::vector<DeltaUpdate> deltas;
  manager.on_detection(make_detection(1, {50, 50}, 0), deltas);
  deltas.clear();

  // Advance just before expiry: nothing.
  manager.advance_to(TimePoint(9'000'000), deltas);
  EXPECT_TRUE(deltas.empty());
  // Past expiry: negative delta.
  manager.advance_to(TimePoint(10'000'001), deltas);
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_FALSE(deltas[0].positive);
  EXPECT_EQ(deltas[0].detection.id, DetectionId(1));
  // The answer set is now empty.
  EXPECT_TRUE(manager.answer_set(QueryId(1)).empty());
}

TEST(ContinuousQueryManager, AnswerSetReflectsWindow) {
  ContinuousQueryManager manager(world());
  manager.install({QueryId(1), {{0, 0}, {100, 100}}, Duration::seconds(10)});
  std::vector<DeltaUpdate> deltas;
  manager.on_detection(make_detection(1, {10, 10}, 0), deltas);
  manager.on_detection(make_detection(2, {20, 20}, 5'000'000), deltas);
  manager.on_detection(make_detection(3, {30, 30}, 12'000'000), deltas);
  manager.advance_to(TimePoint(13'000'000), deltas);  // id 1 expired
  auto answer = manager.answer_set(QueryId(1));
  std::set<std::uint64_t> ids;
  for (const Detection& d : answer) ids.insert(d.id.value());
  EXPECT_EQ(ids, (std::set<std::uint64_t>{2, 3}));
}

TEST(ContinuousQueryManager, RoutingOnlyTestsNearbyMonitors) {
  ContinuousQueryManager manager(world(), /*bucket_size=*/100.0);
  // 20 monitors spread across the left edge, 1 near the right edge.
  for (std::uint64_t i = 0; i < 20; ++i) {
    manager.install({QueryId(i + 1),
                     Rect::centered({50, 25.0 + static_cast<double>(i) * 45}, 20),
                     Duration::minutes(1)});
  }
  manager.install({QueryId(100), Rect::centered({950, 500}, 20),
                   Duration::minutes(1)});
  std::vector<DeltaUpdate> deltas;
  std::size_t tested =
      manager.on_detection(make_detection(1, {950, 500}, 0), deltas);
  EXPECT_EQ(tested, 1u) << "far-away monitors must not be tested";
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].query, QueryId(100));
}

TEST(ContinuousQueryManager, RemovedMonitorStopsFiring) {
  ContinuousQueryManager manager(world());
  manager.install({QueryId(1), {{0, 0}, {100, 100}}, Duration::minutes(1)});
  manager.remove(QueryId(1));
  std::vector<DeltaUpdate> deltas;
  manager.on_detection(make_detection(1, {50, 50}, 0), deltas);
  EXPECT_TRUE(deltas.empty());
}

// Property: replaying the delta stream reproduces exactly the snapshot
// answer set at any point in time.
class ContinuousReplayProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ContinuousReplayProperty, DeltaStreamMatchesSnapshot) {
  Rng rng(GetParam());
  ContinuousQueryManager manager(world());
  Rect region = Rect::centered({500, 500}, 200);
  Duration window = Duration::seconds(30);
  manager.install({QueryId(1), region, window});

  std::vector<Detection> everything;
  std::set<std::uint64_t> replayed;  // live set built from deltas only
  std::vector<DeltaUpdate> deltas;

  std::int64_t now = 0;
  for (int step = 0; step < 400; ++step) {
    now += rng.uniform_int(100'000, 1'000'000);
    Detection d = make_detection(
        static_cast<std::uint64_t>(step + 1),
        {rng.uniform(0, 1000), rng.uniform(0, 1000)}, now);
    everything.push_back(d);
    manager.on_detection(d, deltas);
    manager.advance_to(TimePoint(now), deltas);

    for (const DeltaUpdate& delta : deltas) {
      if (delta.positive) {
        ASSERT_TRUE(replayed.insert(delta.detection.id.value()).second)
            << "duplicate positive delta";
      } else {
        ASSERT_EQ(replayed.erase(delta.detection.id.value()), 1u)
            << "negative delta for absent detection";
      }
    }
    deltas.clear();

    // Snapshot evaluation: everything in region with time in
    // [now - window, now].
    std::set<std::uint64_t> snapshot;
    for (const Detection& e : everything) {
      if (region.contains(e.position) && e.time >= TimePoint(now) - window &&
          e.time <= TimePoint(now)) {
        snapshot.insert(e.id.value());
      }
    }
    ASSERT_EQ(replayed, snapshot) << "divergence at step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContinuousReplayProperty,
                         ::testing::Values(1, 2, 3, 7, 21));

}  // namespace
}  // namespace stcn
