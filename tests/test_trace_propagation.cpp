// End-to-end distributed tracing: spans recorded on the coordinator and on
// workers must assemble into one causal tree per query, across the
// simulated fabric — including hedged fragments and transport retransmits.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/framework.h"
#include "obs/json.h"
#include "obs/tracer.h"
#include "partition/strategies.h"
#include "trace/generator.h"

namespace stcn {
namespace {

struct Scenario {
  Trace trace;
  Rect world;

  Scenario()
      : trace(TraceGenerator::generate([] {
          TraceConfig c;
          c.roads.grid_cols = 6;
          c.roads.grid_rows = 6;
          c.cameras.camera_count = 24;
          c.mobility.object_count = 20;
          c.duration = Duration::minutes(3);
          c.seed = 7321;
          return c;
        }())),
        world(trace.roads.bounds(120.0)) {}
};

Scenario& scenario() {
  static Scenario s;
  return s;
}

std::unique_ptr<PartitionStrategy> spatial(const Scenario& s) {
  return std::make_unique<SpatialGridStrategy>(s.world, 3, 3, s.trace.cameras);
}

TEST(TracePropagation, RangeQuerySpanTreeCoversEveryContactedPartition) {
  Scenario& s = scenario();
  ClusterConfig config;
  config.worker_count = 4;
  Cluster cluster(s.world, spatial(s), config);
  cluster.ingest_all(s.trace.detections);

  auto fanout0 =
      cluster.coordinator().counters().get("query_fanout_total");
  auto partitions0 =
      cluster.coordinator().counters().get("query_partitions_total");
  Query q = Query::range(cluster.next_query_id(),
                         Rect::centered(s.world.center(), 800.0),
                         TimeInterval::all());
  (void)cluster.execute(q);
  auto fanout = cluster.coordinator().counters().get("query_fanout_total") -
                fanout0;
  auto partitions =
      cluster.coordinator().counters().get("query_partitions_total") -
      partitions0;
  ASSERT_GT(fanout, 0u);

  std::uint64_t trace_id = cluster.last_trace_id();
  ASSERT_NE(trace_id, 0u);
  SpanTree tree(cluster.tracer().trace(trace_id));

  // gateway.execute → coordinator.fanout at the root.
  ASSERT_EQ(tree.roots().size(), 1u);
  EXPECT_EQ(tree.spans()[tree.roots()[0]].name, "gateway.execute");
  auto fanout_spans = tree.named("coordinator.fanout");
  ASSERT_EQ(fanout_spans.size(), 1u);
  EXPECT_TRUE(fanout_spans[0]->has_tag("kind", "range"));
  EXPECT_TRUE(fanout_spans[0]->finished);

  // One fragment span per contacted worker, each carrying exactly one
  // worker-side query span that crossed the fabric via the Message header.
  auto fragments = tree.named("fragment");
  ASSERT_EQ(fragments.size(), fanout);
  auto worker_spans = tree.named("worker.query");
  ASSERT_EQ(worker_spans.size(), fanout);
  for (const SpanRecord* ws : worker_spans) {
    bool parent_is_fragment = false;
    for (const SpanRecord* frag : fragments) {
      if (frag->span_id == ws->parent_id) parent_is_fragment = true;
    }
    EXPECT_TRUE(parent_is_fragment);
    EXPECT_NE(ws->node, tree.spans()[tree.roots()[0]].node);
  }

  // Exactly one worker-side scan span per contacted partition, plus one
  // serialize span per worker reply.
  EXPECT_EQ(tree.named("worker.scan").size(), partitions);
  EXPECT_EQ(tree.named("worker.serialize").size(), fanout);
}

TEST(TracePropagation, HedgedFragmentAppearsAsTaggedChildSpan) {
  Scenario& s = scenario();
  ClusterConfig config;
  config.worker_count = 4;
  config.network.seed = 6;
  Cluster cluster(s.world, spatial(s), config);
  cluster.ingest_all(s.trace.detections);

  // Gray failure: worker 2 stays alive but 500x slower; its fragments
  // blow the hedge delay and are speculatively re-issued to backups.
  cluster.network().set_slow(NodeId(2), 500.0);
  (void)cluster.execute(Query::range(cluster.next_query_id(), s.world,
                                     TimeInterval::all()));
  ASSERT_GT(cluster.coordinator().counters().get("hedges_issued"), 0u);

  SpanTree tree(cluster.tracer().trace(cluster.last_trace_id()));
  auto fragments = tree.named("fragment");
  std::size_t hedged = 0;
  for (const SpanRecord* frag : fragments) {
    if (!frag->has_tag("hedge", "true")) continue;
    ++hedged;
    // The hedge hangs off the primary fragment it covers.
    bool parent_is_fragment = false;
    for (const SpanRecord* other : fragments) {
      if (other->span_id == frag->parent_id) parent_is_fragment = true;
    }
    EXPECT_TRUE(parent_is_fragment);
  }
  EXPECT_GT(hedged, 0u);
  // The slow primary was hedged over rather than answered.
  bool saw_hedged_over = false;
  for (const SpanRecord* frag : fragments) {
    if (frag->has_tag("hedged_over", "true")) saw_hedged_over = true;
  }
  EXPECT_TRUE(saw_hedged_over);
}

TEST(TracePropagation, RetransmitsRecordedAsInstantSpans) {
  Scenario& s = scenario();
  ClusterConfig config;
  config.worker_count = 4;
  config.network.drop_probability = 0.3;
  config.network.seed = 11;
  // Keep drops inside the channel: no failover escalation.
  config.coordinator.query_timeout = Duration::millis(200);
  Cluster cluster(s.world, spatial(s), config);
  cluster.ingest_all(s.trace.detections);

  std::size_t retransmit_spans = 0;
  for (int i = 0; i < 5; ++i) {
    (void)cluster.execute(Query::range(cluster.next_query_id(), s.world,
                                       TimeInterval::all()));
    SpanTree tree(cluster.tracer().trace(cluster.last_trace_id()));
    retransmit_spans += tree.named("net.retransmit").size();
  }
  // 30% loss over 5 full-world queries: some traced frame retransmitted.
  EXPECT_GT(retransmit_spans, 0u);
}

TEST(TracePropagation, ChromeExportAndSlowQueryLog) {
  Scenario& s = scenario();
  ClusterConfig config;
  config.worker_count = 4;
  config.coordinator.slow_query_threshold = Duration::micros(1);
  Cluster cluster(s.world, spatial(s), config);
  cluster.ingest_all(s.trace.detections);

  (void)cluster.execute(Query::range(cluster.next_query_id(), s.world,
                                     TimeInterval::all()));

  std::string json = cluster.tracer().to_chrome_json(cluster.last_trace_id());
  obs::JsonValue v;
  std::string error;
  ASSERT_TRUE(obs::JsonValue::parse(json, v, &error)) << error;
  bool saw_fanout = false;
  bool saw_worker = false;
  for (const auto& e : v.at("traceEvents").array()) {
    if (e.at("name").string() == "coordinator.fanout") saw_fanout = true;
    if (e.at("name").string() == "worker.query") saw_worker = true;
  }
  EXPECT_TRUE(saw_fanout);
  EXPECT_TRUE(saw_worker);

  // Every query beats a 1us threshold, so the log captured the span tree.
  const SlowQueryLog& log = cluster.coordinator().slow_query_log();
  ASSERT_GT(log.size(), 0u);
  EXPECT_EQ(log.entries().back().trace_id, cluster.last_trace_id());
  EXPECT_FALSE(log.entries().back().spans.empty());
  EXPECT_NE(log.render().find("range"), std::string::npos);
}

TEST(TracePropagation, DisabledTracerCostsNothingAndChangesNothing) {
  Scenario& s = scenario();
  ClusterConfig config;
  config.worker_count = 4;
  config.tracer.max_traces = 0;
  Cluster cluster(s.world, spatial(s), config);
  cluster.ingest_all(s.trace.detections);
  (void)cluster.execute(Query::range(cluster.next_query_id(), s.world,
                                     TimeInterval::all()));
  EXPECT_EQ(cluster.last_trace_id(), 0u);
  EXPECT_EQ(cluster.tracer().trace_count(), 0u);
  EXPECT_EQ(cluster.tracer().spans_started(), 0u);
}

TEST(TracePropagation, ClusterMetricsSnapshotIsNamespacedAndExportable) {
  Scenario& s = scenario();
  ClusterConfig config;
  config.worker_count = 4;
  Cluster cluster(s.world, spatial(s), config);
  cluster.ingest_all(s.trace.detections);
  (void)cluster.execute(Query::range(cluster.next_query_id(), s.world,
                                     TimeInterval::all()));

  MetricsRegistry snapshot = cluster.metrics_snapshot();
  EXPECT_EQ(snapshot.counter("net.messages_sent").value(),
            cluster.network().counters().get("messages_sent"));
  EXPECT_GT(snapshot.counter("coordinator.queries_submitted").value(), 0u);
  EXPECT_GT(snapshot.counter("worker.queries_served").value(), 0u);
  EXPECT_GT(snapshot.histogram("coordinator.query_latency_us").count(), 0u);

  // The merged snapshot round-trips through the JSON exporter.
  MetricsRegistry restored;
  ASSERT_TRUE(metrics_registry_from_json(snapshot.to_json(), restored));
  EXPECT_EQ(snapshot.to_json(), restored.to_json());
}

}  // namespace
}  // namespace stcn
