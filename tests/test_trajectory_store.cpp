#include "index/trajectory_store.h"

#include <gtest/gtest.h>

namespace stcn {
namespace {

Detection make_detection(std::uint64_t id, std::uint64_t object,
                         std::int64_t t, Point pos = {0, 0}) {
  Detection d;
  d.id = DetectionId(id);
  d.object = ObjectId(object);
  d.camera = CameraId(1);
  d.time = TimePoint(t);
  d.position = pos;
  return d;
}

class TrajectoryStoreFixture : public ::testing::Test {
 protected:
  DetectionStore store_;
  TrajectoryStore trajectories_;

  void add(std::uint64_t id, std::uint64_t object, std::int64_t t) {
    trajectories_.insert(store_,
                         store_.append(make_detection(id, object, t)));
  }
};

TEST_F(TrajectoryStoreFixture, EmptyStore) {
  EXPECT_EQ(trajectories_.size(), 0u);
  EXPECT_EQ(trajectories_.object_count(), 0u);
  EXPECT_FALSE(trajectories_.has_object(ObjectId(1)));
  EXPECT_TRUE(trajectories_.query(ObjectId(1), TimeInterval::all()).empty());
}

TEST_F(TrajectoryStoreFixture, QueryReturnsOnlyRequestedObject) {
  add(1, 100, 10);
  add(2, 200, 20);
  add(3, 100, 30);
  auto refs = trajectories_.query(ObjectId(100), TimeInterval::all());
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_EQ(store_.get(refs[0]).id, DetectionId(1));
  EXPECT_EQ(store_.get(refs[1]).id, DetectionId(3));
}

TEST_F(TrajectoryStoreFixture, TimeOrderedEvenWithOutOfOrderInsert) {
  add(1, 7, 300);
  add(2, 7, 100);
  add(3, 7, 200);
  auto refs = trajectories_.query(ObjectId(7), TimeInterval::all());
  ASSERT_EQ(refs.size(), 3u);
  EXPECT_EQ(store_.get(refs[0]).time, TimePoint(100));
  EXPECT_EQ(store_.get(refs[1]).time, TimePoint(200));
  EXPECT_EQ(store_.get(refs[2]).time, TimePoint(300));
}

TEST_F(TrajectoryStoreFixture, IntervalFilterHalfOpen) {
  add(1, 7, 100);
  add(2, 7, 200);
  add(3, 7, 300);
  auto refs = trajectories_.query(ObjectId(7),
                                  {TimePoint(100), TimePoint(300)});
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_EQ(store_.get(refs[0]).id, DetectionId(1));
  EXPECT_EQ(store_.get(refs[1]).id, DetectionId(2));
}

TEST_F(TrajectoryStoreFixture, CountsAndHasObject) {
  add(1, 7, 100);
  add(2, 8, 100);
  add(3, 7, 200);
  EXPECT_EQ(trajectories_.size(), 3u);
  EXPECT_EQ(trajectories_.object_count(), 2u);
  EXPECT_TRUE(trajectories_.has_object(ObjectId(7)));
  EXPECT_TRUE(trajectories_.has_object(ObjectId(8)));
  EXPECT_FALSE(trajectories_.has_object(ObjectId(9)));
}

}  // namespace
}  // namespace stcn
