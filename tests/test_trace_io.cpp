#include "trace/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace stcn {
namespace {

class TraceIoFixture : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "stcn_trace_io_test.bin";
};

TraceConfig small_config() {
  TraceConfig c;
  c.roads.grid_cols = 5;
  c.roads.grid_rows = 5;
  c.cameras.camera_count = 12;
  c.mobility.object_count = 8;
  c.duration = Duration::minutes(2);
  return c;
}

TEST_F(TraceIoFixture, RoundTripPreservesEverything) {
  Trace trace = TraceGenerator::generate(small_config());
  ASSERT_TRUE(save_trace(trace, path_).is_ok());

  Result<RecordedTrace> loaded = load_trace(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const RecordedTrace& back = loaded.value();

  ASSERT_EQ(back.detections.size(), trace.detections.size());
  for (std::size_t i = 0; i < back.detections.size(); ++i) {
    EXPECT_EQ(back.detections[i], trace.detections[i]);
  }
  ASSERT_EQ(back.ground_truth.size(), trace.ground_truth.size());
  for (const auto& [object, samples] : trace.ground_truth) {
    auto it = back.ground_truth.find(object);
    ASSERT_NE(it, back.ground_truth.end());
    ASSERT_EQ(it->second.size(), samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
      EXPECT_EQ(it->second[i].time, samples[i].time);
      EXPECT_EQ(it->second[i].position, samples[i].position);
    }
  }
  ASSERT_EQ(back.true_appearance.size(), trace.true_appearance.size());
  for (const auto& [object, feature] : trace.true_appearance) {
    auto it = back.true_appearance.find(object);
    ASSERT_NE(it, back.true_appearance.end());
    EXPECT_EQ(it->second, feature);
  }
}

TEST_F(TraceIoFixture, MissingFileIsNotFound) {
  Result<RecordedTrace> r = load_trace("/nonexistent/nowhere.bin");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(TraceIoFixture, BadMagicRejected) {
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("definitely not a trace file, sorry", f);
  std::fclose(f);
  Result<RecordedTrace> r = load_trace(path_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(TraceIoFixture, TruncatedFileRejected) {
  Trace trace = TraceGenerator::generate(small_config());
  ASSERT_TRUE(save_trace(trace, path_).is_ok());
  // Truncate the file to 60% of its size.
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  std::vector<char> head(static_cast<std::size_t>(size * 6 / 10));
  f = std::fopen(path_.c_str(), "rb");
  ASSERT_EQ(std::fread(head.data(), 1, head.size(), f), head.size());
  std::fclose(f);
  f = std::fopen(path_.c_str(), "wb");
  std::fwrite(head.data(), 1, head.size(), f);
  std::fclose(f);

  Result<RecordedTrace> r = load_trace(path_);
  ASSERT_FALSE(r.ok());
}

TEST_F(TraceIoFixture, EmptyRecordedTraceRoundTrips) {
  RecordedTrace empty;
  ASSERT_TRUE(save_trace(empty, path_).is_ok());
  Result<RecordedTrace> r = load_trace(path_);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().detections.empty());
  EXPECT_TRUE(r.value().ground_truth.empty());
}

}  // namespace
}  // namespace stcn
