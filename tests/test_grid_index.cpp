#include "index/grid_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"

namespace stcn {
namespace {

Detection make_detection(std::uint64_t id, Point pos, std::int64_t t_micros,
                         std::uint64_t object = 1,
                         std::uint64_t camera = 1) {
  Detection d;
  d.id = DetectionId(id);
  d.camera = CameraId(camera);
  d.object = ObjectId(object);
  d.time = TimePoint(t_micros);
  d.position = pos;
  return d;
}

GridIndexConfig config_100x100() {
  return {Rect{{0, 0}, {100, 100}}, 10.0};
}

class GridIndexFixture : public ::testing::Test {
 protected:
  DetectionStore store_;
  GridIndex index_{config_100x100()};

  DetectionRef add(std::uint64_t id, Point pos, std::int64_t t) {
    DetectionRef ref = store_.append(make_detection(id, pos, t));
    index_.insert(store_, ref);
    return ref;
  }
};

TEST_F(GridIndexFixture, EmptyIndexReturnsNothing) {
  EXPECT_TRUE(index_.query_range(store_, {{0, 0}, {100, 100}},
                                 TimeInterval::all())
                  .empty());
  EXPECT_TRUE(
      index_.query_knn(store_, {50, 50}, 3, TimeInterval::all()).empty());
  EXPECT_EQ(index_.size(), 0u);
}

TEST_F(GridIndexFixture, RangeQueryFindsInsidePoints) {
  add(1, {5, 5}, 100);
  add(2, {50, 50}, 200);
  add(3, {95, 95}, 300);
  auto refs = index_.query_range(store_, {{0, 0}, {60, 60}},
                                 TimeInterval::all());
  std::set<std::uint64_t> ids;
  for (DetectionRef r : refs) ids.insert(store_.get(r).id.value());
  EXPECT_EQ(ids, (std::set<std::uint64_t>{1, 2}));
}

TEST_F(GridIndexFixture, RangeQueryRespectsTimeInterval) {
  add(1, {50, 50}, 100);
  add(2, {50, 50}, 200);
  add(3, {50, 50}, 300);
  auto refs = index_.query_range(store_, {{0, 0}, {100, 100}},
                                 {TimePoint(150), TimePoint(300)});
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(store_.get(refs[0]).id, DetectionId(2));
}

TEST_F(GridIndexFixture, TimeIntervalIsHalfOpen) {
  add(1, {50, 50}, 100);
  add(2, {50, 50}, 200);
  auto refs = index_.query_range(store_, {{0, 0}, {100, 100}},
                                 {TimePoint(100), TimePoint(200)});
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(store_.get(refs[0]).id, DetectionId(1));
}

TEST_F(GridIndexFixture, OutOfOrderInsertStillSortedPerCell) {
  add(1, {50, 50}, 300);
  add(2, {50, 50}, 100);  // arrives late
  add(3, {50, 50}, 200);
  auto refs = index_.query_range(store_, {{0, 0}, {100, 100}},
                                 {TimePoint(0), TimePoint(250)});
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_EQ(store_.get(refs[0]).time, TimePoint(100));
  EXPECT_EQ(store_.get(refs[1]).time, TimePoint(200));
}

TEST_F(GridIndexFixture, PositionsOutsideBoundsClampToBorderCells) {
  add(1, {-20, -20}, 100);  // clamped into cell (0,0)
  add(2, {150, 150}, 100);  // clamped into the far corner cell
  EXPECT_EQ(index_.size(), 2u);
  // They are still findable by queries covering the border region.
  auto low = index_.query_range(store_, {{-50, -50}, {5, 5}},
                                TimeInterval::all());
  ASSERT_EQ(low.size(), 1u);
  EXPECT_EQ(store_.get(low[0]).id, DetectionId(1));
}

TEST_F(GridIndexFixture, CircleQueryUsesEuclideanDistance) {
  add(1, {50, 50}, 100);
  add(2, {57, 50}, 100);   // 7 m away
  add(3, {50, 61}, 100);   // 11 m away
  auto refs = index_.query_circle(store_, {{50, 50}, 10.0},
                                  TimeInterval::all());
  std::set<std::uint64_t> ids;
  for (DetectionRef r : refs) ids.insert(store_.get(r).id.value());
  EXPECT_EQ(ids, (std::set<std::uint64_t>{1, 2}));
}

TEST_F(GridIndexFixture, KnnReturnsNearestInOrder) {
  add(1, {10, 10}, 100);
  add(2, {20, 10}, 100);
  add(3, {90, 90}, 100);
  add(4, {11, 10}, 100);
  auto result = index_.query_knn(store_, {10, 10}, 3, TimeInterval::all());
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(store_.get(result[0].first).id, DetectionId(1));
  EXPECT_EQ(store_.get(result[1].first).id, DetectionId(4));
  EXPECT_EQ(store_.get(result[2].first).id, DetectionId(2));
  EXPECT_DOUBLE_EQ(result[0].second, 0.0);
  EXPECT_DOUBLE_EQ(result[1].second, 1.0);
  EXPECT_DOUBLE_EQ(result[2].second, 10.0);
}

TEST_F(GridIndexFixture, KnnRespectsTimeFilter) {
  add(1, {10, 10}, 100);
  add(2, {12, 10}, 500);
  auto result = index_.query_knn(store_, {10, 10}, 2,
                                 {TimePoint(400), TimePoint(600)});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(store_.get(result[0].first).id, DetectionId(2));
}

TEST_F(GridIndexFixture, KnnWithKLargerThanPopulation) {
  add(1, {10, 10}, 100);
  add(2, {20, 20}, 100);
  auto result = index_.query_knn(store_, {0, 0}, 10, TimeInterval::all());
  EXPECT_EQ(result.size(), 2u);
}

TEST_F(GridIndexFixture, KnnZeroKIsEmpty) {
  add(1, {10, 10}, 100);
  EXPECT_TRUE(index_.query_knn(store_, {0, 0}, 0, TimeInterval::all()).empty());
}

TEST_F(GridIndexFixture, EmptyRegionOrIntervalReturnsNothing) {
  add(1, {10, 10}, 100);
  EXPECT_TRUE(
      index_.query_range(store_, Rect::empty(), TimeInterval::all()).empty());
  EXPECT_TRUE(index_.query_range(store_, {{0, 0}, {100, 100}},
                                 {TimePoint(5), TimePoint(5)})
                  .empty());
}

TEST_F(GridIndexFixture, ProbeCounterAdvances) {
  add(1, {10, 10}, 100);
  std::uint64_t before = index_.cells_probed();
  // Partial region: a region covering the full grid bounds bypasses the
  // cells entirely (it delegates to the store's columnar scan).
  (void)index_.query_range(store_, {{0, 0}, {50, 50}}, TimeInterval::all());
  EXPECT_GT(index_.cells_probed(), before);
}

TEST_F(GridIndexFixture, FullBoundsRangeDelegatesToStoreScan) {
  add(1, {10, 10}, 100);
  add(2, {90, 90}, 200);
  std::uint64_t probed_before = index_.cells_probed();
  auto refs = index_.query_range(store_, {{0, 0}, {100, 100}},
                                 TimeInterval::all());
  EXPECT_EQ(refs.size(), 2u);
  EXPECT_EQ(index_.cells_probed(), probed_before);  // no cells touched
}

// Property check: grid results must equal brute force over random data,
// across a parameter sweep of seeds and query shapes.
class GridIndexProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GridIndexProperty, RangeMatchesBruteForce) {
  Rng rng(GetParam());
  DetectionStore store;
  GridIndex index(config_100x100());
  std::vector<Detection> all;
  for (std::uint64_t i = 1; i <= 400; ++i) {
    Detection d = make_detection(
        i, {rng.uniform(0, 100), rng.uniform(0, 100)},
        rng.uniform_int(0, 10'000));
    all.push_back(d);
    index.insert(store, store.append(d));
  }
  for (int trial = 0; trial < 25; ++trial) {
    Rect region = Rect::spanning({rng.uniform(0, 100), rng.uniform(0, 100)},
                                 {rng.uniform(0, 100), rng.uniform(0, 100)});
    TimeInterval interval{TimePoint(rng.uniform_int(0, 5000)),
                          TimePoint(rng.uniform_int(5000, 10'000))};
    std::set<std::uint64_t> expected;
    for (const Detection& d : all) {
      if (region.contains(d.position) && interval.contains(d.time)) {
        expected.insert(d.id.value());
      }
    }
    std::set<std::uint64_t> actual;
    for (DetectionRef r : index.query_range(store, region, interval)) {
      actual.insert(store.get(r).id.value());
    }
    ASSERT_EQ(actual, expected) << "seed " << GetParam() << " trial " << trial;
  }
}

TEST_P(GridIndexProperty, KnnMatchesBruteForce) {
  Rng rng(GetParam() + 1000);
  DetectionStore store;
  GridIndex index(config_100x100());
  std::vector<Detection> all;
  for (std::uint64_t i = 1; i <= 300; ++i) {
    Detection d = make_detection(
        i, {rng.uniform(0, 100), rng.uniform(0, 100)},
        rng.uniform_int(0, 1000));
    all.push_back(d);
    index.insert(store, store.append(d));
  }
  for (int trial = 0; trial < 20; ++trial) {
    Point center{rng.uniform(-10, 110), rng.uniform(-10, 110)};
    std::size_t k = 1 + rng.uniform_index(12);
    auto result = index.query_knn(store, center, k, TimeInterval::all());
    ASSERT_EQ(result.size(), std::min(k, all.size()));
    // Distances must be the k smallest overall and sorted.
    std::vector<double> brute;
    for (const Detection& d : all) brute.push_back(distance(d.position, center));
    std::sort(brute.begin(), brute.end());
    for (std::size_t i = 0; i < result.size(); ++i) {
      ASSERT_NEAR(result[i].second, brute[i], 1e-9)
          << "seed " << GetParam() << " trial " << trial << " rank " << i;
    }
  }
}

TEST_P(GridIndexProperty, CircleMatchesBruteForce) {
  Rng rng(GetParam() + 2000);
  DetectionStore store;
  GridIndex index(config_100x100());
  std::vector<Detection> all;
  for (std::uint64_t i = 1; i <= 300; ++i) {
    Detection d = make_detection(
        i, {rng.uniform(0, 100), rng.uniform(0, 100)},
        rng.uniform_int(0, 1000));
    all.push_back(d);
    index.insert(store, store.append(d));
  }
  for (int trial = 0; trial < 20; ++trial) {
    Circle circle{{rng.uniform(0, 100), rng.uniform(0, 100)},
                  rng.uniform(1, 40)};
    std::set<std::uint64_t> expected;
    for (const Detection& d : all) {
      if (circle.contains(d.position)) expected.insert(d.id.value());
    }
    std::set<std::uint64_t> actual;
    for (DetectionRef r :
         index.query_circle(store, circle, TimeInterval::all())) {
      actual.insert(store.get(r).id.value());
    }
    ASSERT_EQ(actual, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridIndexProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 42, 1234));

TEST(DetectionStore, AppendAndGet) {
  DetectionStore store;
  EXPECT_TRUE(store.empty());
  DetectionRef a = store.append(make_detection(1, {0, 0}, 0));
  DetectionRef b = store.append(make_detection(2, {1, 1}, 1));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.get(a).id, DetectionId(1));
  EXPECT_EQ(store.get(b).id, DetectionId(2));
  EXPECT_GT(store.memory_bytes(), 0u);
}

}  // namespace
}  // namespace stcn
