#include "reid/reid_engine.h"

#include <gtest/gtest.h>

#include "baseline/centralized.h"
#include "trace/generator.h"

namespace stcn {
namespace {

struct ReidWorld {
  Trace trace;
  CentralizedIndex index;
  TransitionGraph graph;

  explicit ReidWorld(const TraceConfig& config)
      : trace(TraceGenerator::generate(config)),
        index(trace.roads.bounds(150.0)) {
    index.ingest_all(trace.detections);
    graph.learn(trace.detections);
  }
};

TraceConfig reid_config() {
  // Large enough that a 3-hop transition cone is a small neighbourhood of
  // the whole network — that locality is what cone pruning exploits.
  TraceConfig c;
  c.roads.grid_cols = 14;
  c.roads.grid_rows = 14;
  c.cameras.camera_count = 80;
  c.mobility.object_count = 60;
  c.duration = Duration::minutes(8);
  c.detection.appearance_noise = 0.10;
  c.seed = 77;
  return c;
}

ReidParams default_params() {
  ReidParams p;
  p.cone.max_hops = 3;
  p.cone.min_edge_count = 2;
  p.min_similarity = 0.5;
  p.max_matches = 10;
  return p;
}

/// Picks probe detections that have a true reappearance at another camera
/// within the horizon.
std::vector<std::pair<const Detection*, const Detection*>> probes_with_truth(
    const Trace& trace, Duration horizon, std::size_t max_probes) {
  std::vector<std::pair<const Detection*, const Detection*>> out;
  std::unordered_map<ObjectId, const Detection*> last;
  for (const Detection& d : trace.detections) {
    auto it = last.find(d.object);
    if (it != last.end() && it->second->camera != d.camera &&
        d.time - it->second->time <= horizon && out.size() < max_probes) {
      out.emplace_back(it->second, &d);
    }
    last[d.object] = &d;
  }
  return out;
}

TEST(ReidEngine, FindsTrueReappearanceAmongTopMatches) {
  ReidWorld world(reid_config());
  ReidEngine engine(world.graph, default_params());
  LocalCandidateSource source(world.index, world.trace.cameras);

  auto probes = probes_with_truth(world.trace, Duration::minutes(2), 40);
  ASSERT_GT(probes.size(), 10u);

  std::size_t hits = 0;
  for (const auto& [probe, truth_next] : probes) {
    TimeInterval horizon{probe->time, probe->time + Duration::minutes(3)};
    ReidOutcome outcome = engine.find_matches(*probe, horizon, source);
    for (const ReidMatch& m : outcome.matches) {
      if (m.detection.object == probe->object) {
        ++hits;
        break;
      }
    }
  }
  double recall = static_cast<double>(hits) / static_cast<double>(probes.size());
  EXPECT_GT(recall, 0.7) << "cone re-id recall " << hits << "/"
                         << probes.size();
}

TEST(ReidEngine, BatchedScoringFeedsRegistryCounter) {
  ReidWorld world(reid_config());
  ReidEngine engine(world.graph, default_params());
  MetricsRegistry registry;
  engine.register_metrics(registry);
  LocalCandidateSource source(world.index, world.trace.cameras);

  auto probes = probes_with_truth(world.trace, Duration::minutes(2), 10);
  ASSERT_GT(probes.size(), 3u);
  std::uint64_t batched = 0;
  for (const auto& [probe, truth_next] : probes) {
    TimeInterval horizon{probe->time, probe->time + Duration::minutes(3)};
    ReidOutcome outcome = engine.find_matches(*probe, horizon, source);
    batched += outcome.batched_scores;
    EXPECT_LE(outcome.batched_scores, outcome.candidates_examined);
  }
  EXPECT_GT(batched, 0u);
  EXPECT_EQ(registry.counter("reid_batched_scores").value(), batched);
}

TEST(ReidEngine, ConeExaminesFarFewerCandidatesThanFullScan) {
  ReidWorld world(reid_config());
  ReidEngine engine(world.graph, default_params());
  LocalCandidateSource source(world.index, world.trace.cameras);

  auto probes = probes_with_truth(world.trace, Duration::minutes(2), 20);
  ASSERT_GT(probes.size(), 5u);

  std::uint64_t cone_candidates = 0;
  std::uint64_t scan_candidates = 0;
  for (const auto& [probe, truth_next] : probes) {
    TimeInterval horizon{probe->time, probe->time + Duration::minutes(3)};
    cone_candidates +=
        engine.find_matches(*probe, horizon, source).candidates_examined;
    scan_candidates +=
        engine.find_matches_full_scan(*probe, horizon, source)
            .candidates_examined;
  }
  EXPECT_LT(cone_candidates * 2, scan_candidates)
      << "cone pruning must cut candidates at least in half (got "
      << cone_candidates << " vs " << scan_candidates << ")";
}

TEST(ReidEngine, ConeRecallComparableToFullScan) {
  ReidWorld world(reid_config());
  ReidEngine engine(world.graph, default_params());
  LocalCandidateSource source(world.index, world.trace.cameras);

  auto probes = probes_with_truth(world.trace, Duration::minutes(2), 30);
  std::size_t cone_hits = 0;
  std::size_t scan_hits = 0;
  for (const auto& [probe, truth_next] : probes) {
    TimeInterval horizon{probe->time, probe->time + Duration::minutes(3)};
    auto hit = [&](const ReidOutcome& outcome) {
      for (const ReidMatch& m : outcome.matches) {
        if (m.detection.object == probe->object) return true;
      }
      return false;
    };
    if (hit(engine.find_matches(*probe, horizon, source))) ++cone_hits;
    if (hit(engine.find_matches_full_scan(*probe, horizon, source))) {
      ++scan_hits;
    }
  }
  // The cone may lose a little recall to pruning but not collapse.
  EXPECT_GE(cone_hits * 10, scan_hits * 7)
      << "cone recall " << cone_hits << " vs full-scan " << scan_hits;
}

TEST(ReidEngine, MatchesAreSortedByScoreAndCapped) {
  ReidWorld world(reid_config());
  ReidParams params = default_params();
  params.max_matches = 3;
  ReidEngine engine(world.graph, params);
  LocalCandidateSource source(world.index, world.trace.cameras);

  auto probes = probes_with_truth(world.trace, Duration::minutes(2), 10);
  ASSERT_FALSE(probes.empty());
  for (const auto& [probe, truth_next] : probes) {
    TimeInterval horizon{probe->time, probe->time + Duration::minutes(3)};
    ReidOutcome outcome = engine.find_matches(*probe, horizon, source);
    EXPECT_LE(outcome.matches.size(), 3u);
    for (std::size_t i = 1; i < outcome.matches.size(); ++i) {
      EXPECT_GE(outcome.matches[i - 1].score, outcome.matches[i].score);
    }
    // No match may be the probe itself or precede it in time.
    for (const ReidMatch& m : outcome.matches) {
      EXPECT_NE(m.detection.id, probe->id);
      EXPECT_GT(m.detection.time, probe->time);
    }
  }
}

TEST(ReidEngine, SimilarityThresholdFiltersImposters) {
  ReidWorld world(reid_config());
  ReidParams strict = default_params();
  strict.min_similarity = 0.95;  // near-exact appearance match required
  ReidEngine engine(world.graph, strict);
  LocalCandidateSource source(world.index, world.trace.cameras);

  auto probes = probes_with_truth(world.trace, Duration::minutes(2), 20);
  for (const auto& [probe, truth_next] : probes) {
    TimeInterval horizon{probe->time, probe->time + Duration::minutes(3)};
    ReidOutcome outcome = engine.find_matches(*probe, horizon, source);
    for (const ReidMatch& m : outcome.matches) {
      EXPECT_GE(probe->appearance.similarity(m.detection.appearance), 0.95);
    }
  }
}

TEST(ReidEngine, NoMatchesWhenHorizonEmpty) {
  ReidWorld world(reid_config());
  ReidEngine engine(world.graph, default_params());
  LocalCandidateSource source(world.index, world.trace.cameras);
  ASSERT_FALSE(world.trace.detections.empty());
  const Detection& probe = world.trace.detections.front();
  ReidOutcome outcome = engine.find_matches(
      probe, {probe.time, probe.time}, source);
  EXPECT_TRUE(outcome.matches.empty());
  EXPECT_EQ(outcome.candidates_examined, 0u);
}

}  // namespace
}  // namespace stcn
