#include "common/status.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace stcn {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  EXPECT_EQ(Status::not_found("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::invalid_argument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::deadline_exceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::failed_precondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::internal("boom").message(), "boom");
  EXPECT_FALSE(Status::internal("boom").is_ok());
}

TEST(Status, Streaming) {
  std::ostringstream os;
  os << Status::not_found("missing thing");
  EXPECT_EQ(os.str(), "NOT_FOUND: missing thing");
  std::ostringstream ok;
  ok << Status::ok();
  EXPECT_EQ(ok.str(), "OK");
}

TEST(StatusCode, ToStringCoversAll) {
  EXPECT_STREQ(to_string(StatusCode::kOk), "OK");
  EXPECT_STREQ(to_string(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(to_string(StatusCode::kInvalidArgument), "INVALID_ARGUMENT");
  EXPECT_STREQ(to_string(StatusCode::kUnavailable), "UNAVAILABLE");
  EXPECT_STREQ(to_string(StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
  EXPECT_STREQ(to_string(StatusCode::kFailedPrecondition),
               "FAILED_PRECONDITION");
  EXPECT_STREQ(to_string(StatusCode::kInternal), "INTERNAL");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(Result, HoldsError) {
  Result<int> r(Status::not_found("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.value_or(7), 7);
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(Result, MutableAndMoveAccess) {
  Result<std::string> r(std::string("hello"));
  r.value() += " world";
  EXPECT_EQ(r.value(), "hello world");
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "hello world");
}

TEST(Result, WorksWithMoveOnlyLikePayloads) {
  struct Payload {
    std::vector<int> data;
  };
  Result<Payload> r(Payload{{1, 2, 3}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().data.size(), 3u);
}

}  // namespace
}  // namespace stcn
