#include "core/stats_report.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "partition/strategies.h"
#include "trace/generator.h"

namespace stcn {
namespace {

struct ReportScenario {
  Trace trace;
  Rect world;
  std::unique_ptr<Cluster> cluster;

  ReportScenario() {
    TraceConfig tc;
    tc.roads.grid_cols = 6;
    tc.roads.grid_rows = 6;
    tc.cameras.camera_count = 18;
    tc.mobility.object_count = 12;
    tc.duration = Duration::minutes(3);
    trace = TraceGenerator::generate(tc);
    world = trace.roads.bounds(120.0);
    ClusterConfig config;
    config.worker_count = 4;
    // TracksFailureHandling asserts the timeout-driven failover counters;
    // hedging would satisfy crashed-worker queries without them.
    config.coordinator.hedge_queries = false;
    cluster = std::make_unique<Cluster>(
        world,
        std::make_unique<SpatialGridStrategy>(world, 3, 3, trace.cameras),
        config);
  }
};

TEST(StatsReport, FreshClusterIsAllZero) {
  ReportScenario s;
  ClusterStats stats = collect_stats(*s.cluster);
  EXPECT_EQ(stats.events_ingested, 0u);
  EXPECT_EQ(stats.queries, 0u);
  EXPECT_EQ(stats.workers.size(), 4u);
  for (const WorkerStats& w : stats.workers) {
    EXPECT_EQ(w.stored_detections, 0u);
  }
}

TEST(StatsReport, TracksIngestAndQueries) {
  ReportScenario s;
  s.cluster->ingest_all(s.trace.detections);
  (void)s.cluster->execute(Query::range(s.cluster->next_query_id(), s.world,
                                        TimeInterval::all()));
  (void)s.cluster->execute(Query::count(s.cluster->next_query_id(), s.world,
                                        TimeInterval::all()));
  ClusterStats stats = collect_stats(*s.cluster);
  EXPECT_EQ(stats.events_ingested, s.trace.detections.size());
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_GT(stats.mean_fanout, 0.0);
  EXPECT_GT(stats.bytes_sent, 0u);
  EXPECT_GT(stats.messages_sent, 0u);

  // Per-worker accounting sums to the whole (each event stored at primary
  // and one replica).
  std::uint64_t primary_sum = 0;
  std::uint64_t replica_sum = 0;
  for (const WorkerStats& w : stats.workers) {
    primary_sum += w.primary_events;
    replica_sum += w.replica_events;
  }
  EXPECT_EQ(primary_sum, s.trace.detections.size());
  EXPECT_EQ(replica_sum, s.trace.detections.size());
}

TEST(StatsReport, TracksFailureHandling) {
  ReportScenario s;
  s.cluster->ingest_all(s.trace.detections);
  s.cluster->crash_worker(WorkerId(2));
  (void)s.cluster->execute(Query::range(s.cluster->next_query_id(), s.world,
                                        TimeInterval::all()));
  s.cluster->restart_worker(WorkerId(2));
  ClusterStats stats = collect_stats(*s.cluster);
  EXPECT_GT(stats.failover_retries, 0u);
  EXPECT_GT(stats.partitions_failed_over + stats.partitions_rereplicated,
            0u);
}

TEST(StatsReport, StorageImbalanceComputed) {
  ReportScenario s;
  s.cluster->ingest_all(s.trace.detections);
  ClusterStats stats = collect_stats(*s.cluster);
  EXPECT_GE(stats.storage_imbalance(), 1.0);
  EXPECT_LT(stats.storage_imbalance(), 4.0);
}

TEST(StatsReport, PrintsHumanReadableReport) {
  ReportScenario s;
  s.cluster->ingest_all(s.trace.detections);
  std::ostringstream os;
  os << collect_stats(*s.cluster);
  std::string report = os.str();
  EXPECT_NE(report.find("cluster stats"), std::string::npos);
  EXPECT_NE(report.find("ingest:"), std::string::npos);
  EXPECT_NE(report.find("wrk/1"), std::string::npos);
  EXPECT_NE(report.find("balance:"), std::string::npos);
}

}  // namespace
}  // namespace stcn
