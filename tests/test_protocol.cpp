// Wire-protocol codecs: round trips and corruption robustness.
//
// A distributed system's decoders run on bytes from the network; they must
// never crash, loop, or read out of bounds on truncated or corrupted input
// — at worst they report failure. These tests round-trip every message
// type and then fuzz the decoders with truncation and random bit flips.
#include "core/protocol.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace stcn {
namespace {

Detection make_detection(std::uint64_t id) {
  Detection d;
  d.id = DetectionId(id);
  d.camera = CameraId(id * 3);
  d.object = ObjectId(id * 7);
  d.time = TimePoint(static_cast<std::int64_t>(id) * 1000);
  d.position = {static_cast<double>(id), static_cast<double>(id) * 2};
  d.appearance.values = {0.5f, -0.5f, 0.5f, -0.5f};
  d.confidence = 0.9;
  return d;
}

TEST(Protocol, IngestBatchRoundTrip) {
  IngestBatch batch{PartitionId(4), true,
                    {make_detection(1), make_detection(2)}};
  auto bytes = encode(batch);
  BinaryReader r(bytes);
  IngestBatch back = decode_ingest_batch(r);
  EXPECT_FALSE(r.failed());
  EXPECT_EQ(back.partition, PartitionId(4));
  EXPECT_TRUE(back.is_replica);
  ASSERT_EQ(back.detections.size(), 2u);
  EXPECT_EQ(back.detections[0], batch.detections[0]);
  EXPECT_EQ(back.detections[1], batch.detections[1]);
}

TEST(Protocol, QueryRequestRoundTrip) {
  QueryRequest request{
      42, 17,
      Query::range(QueryId(7), {{0, 0}, {10, 10}},
                   {TimePoint(1), TimePoint(2)}),
      {PartitionId(1), PartitionId(3)}};
  auto bytes = encode(request);
  BinaryReader r(bytes);
  QueryRequest back = decode_query_request(r);
  EXPECT_FALSE(r.failed());
  EXPECT_EQ(back.request_id, 42u);
  EXPECT_EQ(back.sub_id, 17u);
  EXPECT_EQ(back.query.id, QueryId(7));
  ASSERT_EQ(back.partitions.size(), 2u);
  EXPECT_EQ(back.partitions[1], PartitionId(3));
}

TEST(Protocol, QueryResponseRoundTrip) {
  QueryResponse response;
  response.request_id = 9;
  response.sub_id = 23;
  response.result.query = QueryId(7);
  response.result.detections = {make_detection(5)};
  response.result.counts[3] = 14;
  response.rows_scanned = 100;
  response.scan_wall_us = 250;
  response.blocks_scanned = 4;
  response.blocks_skipped = 12;
  auto bytes = encode(response);
  BinaryReader r(bytes);
  QueryResponse back = decode_query_response(r);
  EXPECT_FALSE(r.failed());
  EXPECT_EQ(back.request_id, 9u);
  EXPECT_EQ(back.sub_id, 23u);
  EXPECT_EQ(back.result.counts.at(3), 14u);
  ASSERT_EQ(back.result.detections.size(), 1u);
  EXPECT_EQ(back.rows_scanned, 100u);
  EXPECT_EQ(back.scan_wall_us, 250u);
  EXPECT_EQ(back.blocks_scanned, 4u);
  EXPECT_EQ(back.blocks_skipped, 12u);
}

TEST(Protocol, MonitorInstallRoundTrip) {
  MonitorInstall install{QueryId(5), {{1, 2}, {3, 4}}, Duration::seconds(9)};
  auto bytes = encode(install);
  BinaryReader r(bytes);
  MonitorInstall back = decode_monitor_install(r);
  EXPECT_FALSE(r.failed());
  EXPECT_EQ(back.query, QueryId(5));
  EXPECT_EQ(back.region, (Rect{{1, 2}, {3, 4}}));
  EXPECT_EQ(back.window, Duration::seconds(9));
}

TEST(Protocol, DeltaBatchRoundTrip) {
  DeltaBatch batch;
  batch.deltas.push_back({QueryId(1), true, make_detection(1)});
  batch.deltas.push_back({QueryId(2), false, make_detection(2)});
  auto bytes = encode(batch);
  BinaryReader r(bytes);
  DeltaBatch back = decode_delta_batch(r);
  EXPECT_FALSE(r.failed());
  ASSERT_EQ(back.deltas.size(), 2u);
  EXPECT_TRUE(back.deltas[0].positive);
  EXPECT_FALSE(back.deltas[1].positive);
}

TEST(Protocol, SyncMessagesRoundTrip) {
  auto req_bytes = encode(SyncRequest{PartitionId(6)});
  BinaryReader rr(req_bytes);
  EXPECT_EQ(decode_sync_request(rr).partition, PartitionId(6));

  SyncResponse response{PartitionId(6), {make_detection(1)}};
  auto resp_bytes = encode(response);
  BinaryReader pr(resp_bytes);
  SyncResponse back = decode_sync_response(pr);
  EXPECT_EQ(back.partition, PartitionId(6));
  ASSERT_EQ(back.detections.size(), 1u);
}

TEST(Protocol, IngestBatchPbidRoundTrip) {
  IngestBatch batch{PartitionId(3), false, {make_detection(9)}, 77};
  auto bytes = encode(batch);
  BinaryReader r(bytes);
  IngestBatch back = decode_ingest_batch(r);
  EXPECT_FALSE(r.failed());
  EXPECT_EQ(back.pbid, 77u);
}

TEST(Protocol, SyncResponseWatermarkAndTailRoundTrip) {
  SyncResponse response{PartitionId(6), {make_detection(1)}};
  response.watermark[1'000'000] = 41;
  response.watermark[2'000'003] = 7;
  response.tail.push_back({1'000'000, 42, {make_detection(2)}});
  response.tail.push_back({2'000'003, 8, {}});
  auto bytes = encode(response);
  BinaryReader r(bytes);
  SyncResponse back = decode_sync_response(r);
  EXPECT_FALSE(r.failed());
  EXPECT_EQ(back.watermark.at(1'000'000), 41u);
  EXPECT_EQ(back.watermark.at(2'000'003), 7u);
  ASSERT_EQ(back.tail.size(), 2u);
  EXPECT_EQ(back.tail[0].source, 1'000'000u);
  EXPECT_EQ(back.tail[0].pbid, 42u);
  ASSERT_EQ(back.tail[0].detections.size(), 1u);
  EXPECT_EQ(back.tail[0].detections[0], make_detection(2));
  EXPECT_TRUE(back.tail[1].detections.empty());
}

TEST(Protocol, DeltaSyncMessagesRoundTrip) {
  DeltaSyncRequest request{PartitionId(5), {}};
  request.since[1'000'000] = 12;
  auto req_bytes = encode(request);
  BinaryReader rr(req_bytes);
  DeltaSyncRequest req_back = decode_delta_sync_request(rr);
  EXPECT_FALSE(rr.failed());
  EXPECT_EQ(req_back.partition, PartitionId(5));
  EXPECT_EQ(req_back.since.at(1'000'000), 12u);

  DeltaSyncResponse response{PartitionId(5), true, {}, {}};
  response.watermark[1'000'000] = 20;
  response.entries.push_back({1'000'000, 13, {make_detection(4)}});
  auto resp_bytes = encode(response);
  BinaryReader pr(resp_bytes);
  DeltaSyncResponse resp_back = decode_delta_sync_response(pr);
  EXPECT_FALSE(pr.failed());
  EXPECT_EQ(resp_back.partition, PartitionId(5));
  EXPECT_TRUE(resp_back.ok);
  EXPECT_EQ(resp_back.watermark.at(1'000'000), 20u);
  ASSERT_EQ(resp_back.entries.size(), 1u);
  EXPECT_EQ(resp_back.entries[0].pbid, 13u);
}

TEST(Protocol, RecoveryDoneRoundTrip) {
  auto bytes = encode(RecoveryDone{99, PartitionId(2), 1234});
  BinaryReader r(bytes);
  RecoveryDone back = decode_recovery_done(r);
  EXPECT_FALSE(r.failed());
  EXPECT_EQ(back.recovery_id, 99u);
  EXPECT_EQ(back.partition, PartitionId(2));
  EXPECT_EQ(back.detections, 1234u);
}

TEST(Protocol, HeartbeatRoundTrip) {
  auto bytes = encode(Heartbeat{WorkerId(3), 12345});
  BinaryReader r(bytes);
  Heartbeat back = decode_heartbeat(r);
  EXPECT_EQ(back.worker, WorkerId(3));
  EXPECT_EQ(back.stored_detections, 12345u);
}

TEST(Protocol, IngestForwardRoundTrip) {
  IngestForward forward{{make_detection(1), make_detection(2),
                         make_detection(3)}};
  auto bytes = encode(forward);
  BinaryReader r(bytes);
  IngestForward back = decode_ingest_forward(r);
  EXPECT_FALSE(r.failed());
  EXPECT_EQ(back.detections.size(), 3u);
}

// ------------------------------------------------------- corruption fuzz

template <typename DecodeFn>
void fuzz_decoder(const std::vector<std::uint8_t>& valid, DecodeFn&& decode,
                  std::uint64_t seed) {
  // Every truncation point: decoder must terminate without crashing.
  for (std::size_t len = 0; len < valid.size(); ++len) {
    std::vector<std::uint8_t> truncated(valid.begin(),
                                        valid.begin() + static_cast<long>(len));
    BinaryReader r(truncated);
    (void)decode(r);
    // Either the decode consumed a valid prefix or the reader failed;
    // it must never read past the buffer (asan would catch that).
  }
  // Random bit flips: decoder must terminate without crashing.
  Rng rng(seed);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> corrupted = valid;
    std::size_t flips = 1 + rng.uniform_index(8);
    for (std::size_t f = 0; f < flips; ++f) {
      std::size_t byte = rng.uniform_index(corrupted.size());
      corrupted[byte] ^= static_cast<std::uint8_t>(
          1u << rng.uniform_index(8));
    }
    BinaryReader r(corrupted);
    (void)decode(r);
  }
}

TEST(ProtocolFuzz, IngestBatchDecoderRobust) {
  IngestBatch batch{PartitionId(1), false, {}};
  for (std::uint64_t i = 1; i <= 20; ++i) {
    batch.detections.push_back(make_detection(i));
  }
  fuzz_decoder(encode(batch),
               [](BinaryReader& r) { return decode_ingest_batch(r); }, 1);
}

TEST(ProtocolFuzz, QueryRequestDecoderRobust) {
  QueryRequest request{
      1, 1, Query::knn(QueryId(1), {5, 5}, 10, TimeInterval::all()),
      {PartitionId(0), PartitionId(1), PartitionId(2)}};
  fuzz_decoder(encode(request),
               [](BinaryReader& r) { return decode_query_request(r); }, 2);
}

TEST(ProtocolFuzz, QueryResponseDecoderRobust) {
  QueryResponse response;
  response.request_id = 1;
  response.result.query = QueryId(1);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    response.result.detections.push_back(make_detection(i));
    response.result.counts[i] = i;
  }
  fuzz_decoder(encode(response),
               [](BinaryReader& r) { return decode_query_response(r); }, 3);
}

TEST(ProtocolFuzz, DeltaBatchDecoderRobust) {
  DeltaBatch batch;
  for (std::uint64_t i = 1; i <= 10; ++i) {
    batch.deltas.push_back({QueryId(i), i % 2 == 0, make_detection(i)});
  }
  fuzz_decoder(encode(batch),
               [](BinaryReader& r) { return decode_delta_batch(r); }, 4);
}

TEST(ProtocolFuzz, SyncResponseDecoderRobust) {
  SyncResponse response{PartitionId(2), {}};
  for (std::uint64_t i = 1; i <= 15; ++i) {
    response.detections.push_back(make_detection(i));
  }
  fuzz_decoder(encode(response),
               [](BinaryReader& r) { return decode_sync_response(r); }, 5);
}

TEST(ProtocolFuzz, DeltaSyncResponseDecoderRobust) {
  DeltaSyncResponse response{PartitionId(2), true, {}, {}};
  response.watermark[1] = 5;
  response.watermark[2] = 9;
  for (std::uint64_t i = 1; i <= 6; ++i) {
    response.entries.push_back(
        {i % 2, 10 + i, {make_detection(i), make_detection(100 + i)}});
  }
  fuzz_decoder(encode(response),
               [](BinaryReader& r) { return decode_delta_sync_response(r); },
               6);
}

}  // namespace
}  // namespace stcn
