// Camera dropout modeling: cameras dying mid-trace.
#include <gtest/gtest.h>

#include "reid/transition_graph.h"
#include "trace/generator.h"

namespace stcn {
namespace {

TraceConfig config_with_failures(double fraction) {
  TraceConfig c;
  c.roads.grid_cols = 8;
  c.roads.grid_rows = 8;
  c.cameras.camera_count = 40;
  c.mobility.object_count = 30;
  c.duration = Duration::minutes(6);
  c.detection.camera_failure_fraction = fraction;
  c.seed = 4242;
  return c;
}

TEST(CameraFailures, DisabledByDefault) {
  Trace trace = TraceGenerator::generate(config_with_failures(0.0));
  EXPECT_TRUE(trace.camera_failures.empty());
}

TEST(CameraFailures, RequestedFractionFails) {
  Trace trace = TraceGenerator::generate(config_with_failures(0.3));
  EXPECT_EQ(trace.camera_failures.size(), 12u);  // 30% of 40
  for (const auto& [camera, at] : trace.camera_failures) {
    EXPECT_TRUE(trace.cameras.has_camera(camera));
    EXPECT_GE(at, TimePoint::origin());
    EXPECT_LT(at, TimePoint::origin() + trace.config.duration);
  }
}

TEST(CameraFailures, NoDetectionsAfterFailureTime) {
  Trace trace = TraceGenerator::generate(config_with_failures(0.3));
  for (const Detection& d : trace.detections) {
    auto it = trace.camera_failures.find(d.camera);
    if (it != trace.camera_failures.end()) {
      EXPECT_LT(d.time, it->second)
          << d.camera << " emitted after its failure";
    }
  }
}

TEST(CameraFailures, ReducesDetectionVolume) {
  Trace healthy = TraceGenerator::generate(config_with_failures(0.0));
  Trace degraded = TraceGenerator::generate(config_with_failures(0.4));
  EXPECT_LT(degraded.detections.size(), healthy.detections.size());
  EXPECT_GT(degraded.detections.size(), 0u);
}

TEST(CameraFailures, TransitionGraphStillLearnsFromSurvivors) {
  // Re-id infrastructure degrades gracefully: the graph learned from a
  // degraded network still has substantial structure.
  Trace degraded = TraceGenerator::generate(config_with_failures(0.3));
  TransitionGraph graph;
  graph.learn(degraded.detections);
  EXPECT_GT(graph.edge_count(), 10u);
  // No learned edge may originate at a camera observed only before its
  // failure and lead to arrivals after it — structurally impossible here,
  // but transitions *into* dead cameras must also carry pre-failure times
  // only; spot-check by replaying the learning invariant.
  for (const Detection& d : degraded.detections) {
    auto it = degraded.camera_failures.find(d.camera);
    if (it != degraded.camera_failures.end()) {
      ASSERT_LT(d.time, it->second);
    }
  }
}

TEST(CameraFailures, DeterministicSchedule) {
  Trace a = TraceGenerator::generate(config_with_failures(0.25));
  Trace b = TraceGenerator::generate(config_with_failures(0.25));
  ASSERT_EQ(a.camera_failures.size(), b.camera_failures.size());
  for (const auto& [camera, at] : a.camera_failures) {
    auto it = b.camera_failures.find(camera);
    ASSERT_NE(it, b.camera_failures.end());
    EXPECT_EQ(it->second, at);
  }
}

}  // namespace
}  // namespace stcn
