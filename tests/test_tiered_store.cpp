// Differential tests for the tiered DetectionStore: compression must be
// invisible to scan results. Once a block is demoted, its values are the
// decoded (quantized) ones — time, camera, object, and id losslessly,
// positions and confidence to a documented quantum — so the reference
// answer for every query shape is a naive scan over the store's own
// decoded rows. Every kernel (fused scan-on-compressed, zone skipping,
// k-NN through the grid index, snapshot round-trips, compaction adoption)
// must agree with that reference exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "baseline/centralized.h"
#include "common/appearance_kernel.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "index/detection_store.h"
#include "index/grid_index.h"
#include "reid/reid_engine.h"
#include "trace/generator.h"

namespace stcn {
namespace {

constexpr double kWorld = 1000.0;

Detection random_detection(Rng& rng, std::uint64_t id, std::size_t dim = 8) {
  Detection d;
  d.id = DetectionId(id);
  d.camera = CameraId(1 + rng.uniform_index(40));
  d.object = ObjectId(1 + rng.uniform_index(200));
  d.time = TimePoint(rng.uniform_int(0, 1'000'000));
  d.position = {rng.uniform(0, kWorld), rng.uniform(0, kWorld)};
  if (rng.uniform_index(10) == 0) {
    d.position.x = rng.uniform_index(2) == 0 ? 0.0 : kWorld;
  }
  if (rng.uniform_index(10) == 0) {
    d.position.y = rng.uniform_index(2) == 0 ? 0.0 : kWorld;
  }
  d.confidence = rng.uniform(0, 1);
  d.appearance.values.resize(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    d.appearance.values[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  return d;
}

std::set<std::uint64_t> ids_of(const DetectionStore& store,
                               const std::vector<DetectionRef>& refs) {
  std::set<std::uint64_t> out;
  for (DetectionRef r : refs) out.insert(store.id_of(r).value());
  return out;
}

// Mixed-tier fixture: ~2.6 blocks demoted cold, one sealed block plus a
// partial tail hot. The reference mirror is read back through get() AFTER
// demotion, so it carries the decoded (quantized) values the kernels must
// reproduce.
class TieredDifferential : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static constexpr std::size_t kRows = 3 * kDetectionBlockRows + 1500;

  void SetUp() override {
    store_.set_tier_config({true, 1});
    Rng rng(GetParam());
    for (std::uint64_t i = 1; i <= kRows; ++i) {
      DetectionRef ref = store_.append(random_detection(rng, i));
      index_.insert(store_, ref);
    }
    ASSERT_GT(store_.cold_block_count(), 0u);
    ASSERT_LT(store_.cold_rows(), store_.size());  // hot tail remains
    reference_.reserve(store_.size());
    for (std::uint32_t i = 0; i < store_.size(); ++i) {
      reference_.push_back(store_.get(static_cast<DetectionRef>(i)));
    }
  }

  DetectionStore store_;
  GridIndex index_{{Rect{{0, 0}, {kWorld, kWorld}}, 25.0}};
  std::vector<Detection> reference_;  // decoded mirror
};

TEST_P(TieredDifferential, RangeMatchesReferenceScan) {
  Rng rng(GetParam() + 17);
  for (int trial = 0; trial < 30; ++trial) {
    Rect region =
        Rect::spanning({rng.uniform(0, kWorld), rng.uniform(0, kWorld)},
                       {rng.uniform(0, kWorld), rng.uniform(0, kWorld)});
    if (trial % 5 == 0) region = Rect{{0, 0}, {kWorld, kWorld}};  // full
    TimeInterval interval{TimePoint(rng.uniform_int(0, 500'000)),
                          TimePoint(rng.uniform_int(500'000, 1'000'000))};
    std::set<std::uint64_t> expected;
    for (const Detection& d : reference_) {
      if (region.contains(d.position) && interval.contains(d.time)) {
        expected.insert(d.id.value());
      }
    }
    EXPECT_EQ(ids_of(store_, store_.scan_range(region, interval)), expected)
        << "store scan, trial " << trial;
    EXPECT_EQ(ids_of(store_, index_.query_range(store_, region, interval)),
              expected)
        << "grid query, trial " << trial;
  }
}

TEST_P(TieredDifferential, CircleMatchesReferenceScan) {
  Rng rng(GetParam() + 31);
  for (int trial = 0; trial < 30; ++trial) {
    Circle circle{{rng.uniform(0, kWorld), rng.uniform(0, kWorld)},
                  rng.uniform(5, 200)};
    TimeInterval interval{TimePoint(rng.uniform_int(0, 500'000)),
                          TimePoint(rng.uniform_int(500'000, 1'000'000))};
    std::set<std::uint64_t> expected;
    for (const Detection& d : reference_) {
      if (circle.contains(d.position) && interval.contains(d.time)) {
        expected.insert(d.id.value());
      }
    }
    EXPECT_EQ(ids_of(store_, store_.scan_circle(circle, interval)), expected)
        << "trial " << trial;
  }
}

TEST_P(TieredDifferential, CameraMatchesReferenceScan) {
  Rng rng(GetParam() + 47);
  for (int trial = 0; trial < 30; ++trial) {
    CameraId camera(1 + rng.uniform_index(40));
    TimeInterval interval{TimePoint(rng.uniform_int(0, 500'000)),
                          TimePoint(rng.uniform_int(500'000, 1'000'000))};
    std::set<std::uint64_t> expected;
    for (const Detection& d : reference_) {
      if (d.camera == camera && interval.contains(d.time)) {
        expected.insert(d.id.value());
      }
    }
    EXPECT_EQ(ids_of(store_, store_.scan_camera(camera, interval)), expected)
        << "trial " << trial;
  }
}

TEST_P(TieredDifferential, KnnMatchesReferenceScan) {
  Rng rng(GetParam() + 63);
  for (int trial = 0; trial < 20; ++trial) {
    Point center{rng.uniform(-50, kWorld + 50), rng.uniform(-50, kWorld + 50)};
    std::size_t k = 1 + rng.uniform_index(25);
    auto result = index_.query_knn(store_, center, k, TimeInterval::all());
    ASSERT_EQ(result.size(), std::min(k, reference_.size()));
    std::vector<double> brute;
    brute.reserve(reference_.size());
    for (const Detection& d : reference_) {
      brute.push_back(distance(d.position, center));
    }
    std::sort(brute.begin(), brute.end());
    for (std::size_t i = 0; i < result.size(); ++i) {
      ASSERT_NEAR(result[i].second, brute[i], 1e-9)
          << "trial " << trial << " rank " << i;
    }
  }
}

TEST_P(TieredDifferential, SnapshotRoundTripPreservesTiersAndRows) {
  BinaryWriter w;
  store_.serialize_to(w);
  BinaryReader r(w.bytes());
  DetectionStore copy = DetectionStore::deserialize_from(r);
  ASSERT_EQ(copy.size(), store_.size());
  EXPECT_EQ(copy.cold_block_count(), store_.cold_block_count());
  EXPECT_EQ(copy.cold_rows(), store_.cold_rows());
  // Cold codes round-trip bit-identically, hot columns verbatim: every
  // decoded row compares equal.
  for (std::uint32_t i = 0; i < store_.size(); ++i) {
    ASSERT_EQ(copy.get(static_cast<DetectionRef>(i)),
              store_.get(static_cast<DetectionRef>(i)))
        << "row " << i;
  }
  // And the decoded copy scans like the original.
  Rect region{{100, 100}, {700, 800}};
  TimeInterval interval{TimePoint(200'000), TimePoint(900'000)};
  EXPECT_EQ(ids_of(copy, copy.scan_range(region, interval)),
            ids_of(store_, store_.scan_range(region, interval)));
}

TEST_P(TieredDifferential, CompactionAdoptsColdBlocksVerbatim) {
  DetectionStore dst;
  dst.set_tier_config(store_.tier_config());
  (void)dst.append_rows(store_, 0, static_cast<std::uint32_t>(store_.size()));
  ASSERT_EQ(dst.size(), store_.size());
  // Full-store compaction starts at a block boundary with an empty
  // destination, so every cold block is adopted (no re-encode, no
  // re-quantization drift): the codes — and the rows they decode to —
  // carry over verbatim.
  EXPECT_EQ(dst.cold_block_count(), store_.cold_block_count());
  EXPECT_EQ(dst.cold_rows(), store_.cold_rows());
  EXPECT_GT(dst.compressed_bytes(), 0u);
  for (std::uint32_t i = 0; i < store_.size(); ++i) {
    ASSERT_EQ(dst.get(static_cast<DetectionRef>(i)),
              store_.get(static_cast<DetectionRef>(i)))
        << "row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TieredDifferential,
                         ::testing::Values(7, 99, 20260807));

// Demotion is lossy only to the documented quanta: positions to half the
// power-of-two quantum covering the block's coordinate range at 30 bits,
// confidence at 15 bits, embeddings to half the per-row int8 scale; ids,
// times, cameras, and objects exactly.
TEST(TieredStore, DemotionErrorWithinDocumentedQuanta) {
  DetectionStore store;
  Rng rng(101);
  std::vector<Detection> originals;
  for (std::uint64_t i = 1; i <= kDetectionBlockRows; ++i) {
    originals.push_back(random_detection(rng, i, 16));
    (void)store.append(originals.back());
  }
  store.set_tier_config({true, 0});  // demotes the sealed block immediately
  ASSERT_EQ(store.cold_block_count(), 1u);
  // 30-bit quantization of a ≤1000 m coordinate range: quantum ≤ 2^-19 m.
  const double pos_tol = std::ldexp(1.0, -20);  // quantum / 2
  // 15 bits over a ≤1 range: quantum 2^-14, error ≤ quantum / 2.
  const double conf_tol = std::ldexp(1.0, -15) + 1e-12;
  for (std::uint32_t i = 0; i < store.size(); ++i) {
    Detection got = store.get(static_cast<DetectionRef>(i));
    const Detection& want = originals[i];
    EXPECT_EQ(got.id, want.id);
    EXPECT_EQ(got.camera, want.camera);
    EXPECT_EQ(got.object, want.object);
    EXPECT_EQ(got.time, want.time);
    EXPECT_NEAR(got.position.x, want.position.x, pos_tol);
    EXPECT_NEAR(got.position.y, want.position.y, pos_tol);
    EXPECT_NEAR(got.confidence, want.confidence, conf_tol);
    ASSERT_EQ(got.appearance.values.size(), want.appearance.values.size());
    // int8 over a ≤2 range: scale ≤ 2/254, per-component error ≤ scale/2.
    for (std::size_t c = 0; c < want.appearance.values.size(); ++c) {
      EXPECT_NEAR(got.appearance.values[c], want.appearance.values[c],
                  1.0 / 254.0 + 1e-6)
          << "row " << i << " component " << c;
    }
  }
}

TEST(TieredStore, FillTriggeredDemotionKeepsConfiguredHotWindow) {
  DetectionStore store;
  store.set_tier_config({true, 1});
  Rng rng(5);
  for (std::uint64_t i = 1; i <= 3 * kDetectionBlockRows; ++i) {
    (void)store.append(random_detection(rng, i));
  }
  // Three sealed blocks, one allowed to stay hot: two demoted.
  EXPECT_EQ(store.cold_block_count(), 2u);
  EXPECT_EQ(store.cold_rows(), 2 * kDetectionBlockRows);
  EXPECT_GT(store.compressed_bytes(), 0u);
}

TEST(TieredStore, AgeTriggeredDemotionRespectsCutoff) {
  DetectionStore store;
  // A huge hot window keeps fill-triggered demotion out of the way; only
  // demote_older_than (the worker tick's age path) moves blocks cold.
  store.set_tier_config({true, 1000});
  for (std::uint64_t i = 0; i < 2 * kDetectionBlockRows + 100; ++i) {
    Detection d;
    d.id = DetectionId(i + 1);
    d.camera = CameraId(1);
    d.object = ObjectId(1);
    d.time = TimePoint(static_cast<std::int64_t>(i));  // time-ordered
    d.position = {1.0, 2.0};
    (void)store.append(d);
  }
  // Cutoff inside block 1: only block 0 is entirely older.
  EXPECT_EQ(store.demote_older_than(
                TimePoint(static_cast<std::int64_t>(kDetectionBlockRows))),
            1u);
  EXPECT_EQ(store.cold_block_count(), 1u);
  // Far-future cutoff demotes every FULL block; the partial tail and any
  // mid-block rows stay hot.
  (void)store.demote_older_than(TimePoint(1'000'000'000));
  EXPECT_EQ(store.cold_block_count(), 2u);
  EXPECT_EQ(store.size(), 2 * kDetectionBlockRows + 100);
}

TEST(TieredStore, MemoryBreakdownAccountsColdTier) {
  DetectionStore store;
  store.set_tier_config({true, 0});
  Rng rng(23);
  for (std::uint64_t i = 1; i <= 2 * kDetectionBlockRows + 64; ++i) {
    (void)store.append(random_detection(rng, i, 16));
  }
  ASSERT_EQ(store.cold_block_count(), 2u);
  auto m = store.memory_breakdown();
  EXPECT_EQ(store.memory_bytes(), m.total());
  EXPECT_GE(m.cold_bytes, store.compressed_bytes());
  EXPECT_GT(m.hot_bytes(), 0u);
  // Decode a cold block so this thread owns scratch, then confirm the
  // process-wide scratch figure is visible but kept out of the total.
  (void)store.scan_camera(CameraId(1), TimeInterval::all());
  auto m2 = store.memory_breakdown();
  EXPECT_GT(m2.scratch_bytes, 0u);
  EXPECT_EQ(m2.total(),
            m2.column_bytes + m2.arena_bytes + m2.zone_bytes + m2.cold_bytes);
}

TEST(TieredStore, CorruptSnapshotDecodesToEmptyStore) {
  DetectionStore store;
  store.set_tier_config({true, 0});
  Rng rng(31);
  for (std::uint64_t i = 1; i <= kDetectionBlockRows + 10; ++i) {
    (void)store.append(random_detection(rng, i));
  }
  BinaryWriter w;
  store.serialize_to(w);
  const std::vector<std::uint8_t>& bytes = w.bytes();
  // Truncation at every byte boundary in a coarse sweep must yield an
  // empty store, never garbage or a crash.
  for (std::size_t len = 0; len < bytes.size(); len += 97) {
    BinaryReader r(bytes.data(), len);
    DetectionStore got = DetectionStore::deserialize_from(r);
    EXPECT_EQ(got.size(), 0u) << "truncated at " << len;
  }
  // A corrupted magic word is rejected outright.
  std::vector<std::uint8_t> bad = bytes;
  bad[0] ^= 0xFF;
  BinaryReader r(bad);
  EXPECT_EQ(DetectionStore::deserialize_from(r).size(), 0u);
}

// ---------------------------------------------- int8 quantized appearance

TEST(QuantizedAppearance, DotErrorStaysWithinSoundBound) {
  Rng rng(67);
  for (int trial = 0; trial < 200; ++trial) {
    std::size_t dim = 1 + rng.uniform_index(128);
    std::vector<float> a(dim), b(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      a[i] = static_cast<float>(rng.uniform(-1, 1));
      b[i] = static_cast<float>(rng.uniform(-1, 1));
    }
    std::vector<std::int8_t> qa(dim), qb(dim);
    EmbeddingQuantParams pa = quantize_embedding(a.data(), dim, qa.data());
    EmbeddingQuantParams pb = quantize_embedding(b.data(), dim, qb.data());
    double exact = appearance_dot(a.data(), b.data(), dim);
    double approx = quantized_dot(qa.data(), pa, qb.data(), pb, dim);
    double bound = quantized_dot_error_bound(pa, pb, dim);
    EXPECT_LE(std::abs(approx - exact), bound + 1e-12)
        << "trial " << trial << " dim " << dim;
  }
}

TEST(QuantizedAppearance, ConstantVectorQuantizesExactly) {
  std::vector<float> a(16, 0.75f), b(16);
  Rng rng(3);
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  std::vector<std::int8_t> qa(16), qb(16);
  EmbeddingQuantParams pa = quantize_embedding(a.data(), 16, qa.data());
  EmbeddingQuantParams pb = quantize_embedding(b.data(), 16, qb.data());
  EXPECT_EQ(pa.scale, 0.0f);  // degenerate range: offset carries everything
  double exact = appearance_dot(a.data(), b.data(), 16);
  double approx = quantized_dot(qa.data(), pa, qb.data(), pb, 16);
  EXPECT_LE(std::abs(approx - exact),
            quantized_dot_error_bound(pa, pb, 16) + 1e-12);
}

// The prefilter must be invisible: identical matches, scores, and order,
// with a strictly smaller float-kernel bill.
TEST(QuantizedAppearance, ReidPrefilterPreservesMatchesExactly) {
  TraceConfig c;
  c.roads.grid_cols = 10;
  c.roads.grid_rows = 10;
  c.cameras.camera_count = 50;
  c.mobility.object_count = 40;
  c.duration = Duration::minutes(5);
  c.seed = 91;
  Trace trace = TraceGenerator::generate(c);
  CentralizedIndex index(trace.roads.bounds(150.0));
  index.ingest_all(trace.detections);
  TransitionGraph graph;
  graph.learn(trace.detections);
  LocalCandidateSource source(index, trace.cameras);

  ReidParams quant;
  quant.cone.max_hops = 3;
  ReidParams plain = quant;
  plain.quantized_prefilter = false;
  ReidEngine quant_engine(graph, quant);
  ReidEngine plain_engine(graph, plain);

  std::uint64_t pruned = 0, float_dots_quant = 0, float_dots_plain = 0;
  std::size_t compared = 0;
  for (std::size_t p = 0; p < trace.detections.size(); p += 97) {
    const Detection& probe = trace.detections[p];
    TimeInterval horizon{probe.time, probe.time + Duration::minutes(3)};
    ReidOutcome a = quant_engine.find_matches(probe, horizon, source);
    ReidOutcome b = plain_engine.find_matches(probe, horizon, source);
    ASSERT_EQ(a.matches.size(), b.matches.size()) << "probe " << p;
    for (std::size_t m = 0; m < a.matches.size(); ++m) {
      EXPECT_EQ(a.matches[m].detection.id, b.matches[m].detection.id);
      EXPECT_EQ(a.matches[m].score, b.matches[m].score);  // bit-identical
    }
    pruned += a.quantized_pruned;
    float_dots_quant += a.batched_scores;
    float_dots_plain += b.batched_scores;
    ++compared;
  }
  ASSERT_GT(compared, 10u);
  EXPECT_GT(pruned, 0u) << "prefilter never fired";
  EXPECT_LT(float_dots_quant, float_dots_plain);
}

}  // namespace
}  // namespace stcn
