// Differential tests for the columnar DetectionStore: zone-map block
// skipping must be invisible to results. A naive reference scan over a
// plain vector<Detection> (the layout the columnar store replaced) defines
// the expected answer for every query shape; the store and the grid index
// on top of it must agree exactly, including on adversarial inputs —
// out-of-order arrival times (zone maps cannot assume sorted blocks) and
// positions clamped to the region borders (half-open edge semantics).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/appearance_kernel.h"
#include "common/rng.h"
#include "index/detection_store.h"
#include "index/grid_index.h"

namespace stcn {
namespace {

constexpr double kWorld = 1000.0;

Detection random_detection(Rng& rng, std::uint64_t id) {
  Detection d;
  d.id = DetectionId(id);
  d.camera = CameraId(1 + rng.uniform_index(40));
  d.object = ObjectId(1 + rng.uniform_index(200));
  // Out-of-order arrival: time is independent of append order.
  d.time = TimePoint(rng.uniform_int(0, 1'000'000));
  d.position = {rng.uniform(0, kWorld), rng.uniform(0, kWorld)};
  // A slice of positions clamped exactly onto the borders, where the
  // half-open contains() semantics bite.
  if (rng.uniform_index(10) == 0) {
    d.position.x = rng.uniform_index(2) == 0 ? 0.0 : kWorld;
  }
  if (rng.uniform_index(10) == 0) {
    d.position.y = rng.uniform_index(2) == 0 ? 0.0 : kWorld;
  }
  d.confidence = rng.uniform(0, 1);
  return d;
}

std::set<std::uint64_t> ids_of(const DetectionStore& store,
                               const std::vector<DetectionRef>& refs) {
  std::set<std::uint64_t> out;
  for (DetectionRef r : refs) out.insert(store.id_of(r).value());
  return out;
}

class ColumnarDifferential : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    Rng rng(GetParam());
    for (std::uint64_t i = 1; i <= 10'000; ++i) {
      Detection d = random_detection(rng, i);
      reference_.push_back(d);
      index_.insert(store_, store_.append(d));
    }
  }

  DetectionStore store_;
  GridIndex index_{{Rect{{0, 0}, {kWorld, kWorld}}, 25.0}};
  std::vector<Detection> reference_;  // naive row-store mirror
};

TEST_P(ColumnarDifferential, RangeMatchesReferenceScan) {
  Rng rng(GetParam() + 17);
  for (int trial = 0; trial < 30; ++trial) {
    Rect region =
        Rect::spanning({rng.uniform(0, kWorld), rng.uniform(0, kWorld)},
                       {rng.uniform(0, kWorld), rng.uniform(0, kWorld)});
    if (trial % 5 == 0) region = Rect{{0, 0}, {kWorld, kWorld}};  // full
    TimeInterval interval{TimePoint(rng.uniform_int(0, 500'000)),
                          TimePoint(rng.uniform_int(500'000, 1'000'000))};
    std::set<std::uint64_t> expected;
    for (const Detection& d : reference_) {
      if (region.contains(d.position) && interval.contains(d.time)) {
        expected.insert(d.id.value());
      }
    }
    EXPECT_EQ(ids_of(store_, store_.scan_range(region, interval)), expected)
        << "store scan, trial " << trial;
    EXPECT_EQ(ids_of(store_, index_.query_range(store_, region, interval)),
              expected)
        << "grid query, trial " << trial;
  }
}

TEST_P(ColumnarDifferential, CircleMatchesReferenceScan) {
  Rng rng(GetParam() + 31);
  for (int trial = 0; trial < 30; ++trial) {
    Circle circle{{rng.uniform(0, kWorld), rng.uniform(0, kWorld)},
                  rng.uniform(5, 200)};
    TimeInterval interval{TimePoint(rng.uniform_int(0, 500'000)),
                          TimePoint(rng.uniform_int(500'000, 1'000'000))};
    std::set<std::uint64_t> expected;
    for (const Detection& d : reference_) {
      if (circle.contains(d.position) && interval.contains(d.time)) {
        expected.insert(d.id.value());
      }
    }
    EXPECT_EQ(ids_of(store_, store_.scan_circle(circle, interval)), expected)
        << "store scan, trial " << trial;
    EXPECT_EQ(ids_of(store_, index_.query_circle(store_, circle, interval)),
              expected)
        << "grid query, trial " << trial;
  }
}

TEST_P(ColumnarDifferential, CameraMatchesReferenceScan) {
  Rng rng(GetParam() + 47);
  for (int trial = 0; trial < 30; ++trial) {
    CameraId camera(1 + rng.uniform_index(40));
    TimeInterval interval{TimePoint(rng.uniform_int(0, 500'000)),
                          TimePoint(rng.uniform_int(500'000, 1'000'000))};
    std::set<std::uint64_t> expected;
    for (const Detection& d : reference_) {
      if (d.camera == camera && interval.contains(d.time)) {
        expected.insert(d.id.value());
      }
    }
    EXPECT_EQ(ids_of(store_, store_.scan_camera(camera, interval)), expected)
        << "trial " << trial;
  }
}

TEST_P(ColumnarDifferential, KnnMatchesReferenceScan) {
  Rng rng(GetParam() + 63);
  for (int trial = 0; trial < 20; ++trial) {
    Point center{rng.uniform(-50, kWorld + 50), rng.uniform(-50, kWorld + 50)};
    std::size_t k = 1 + rng.uniform_index(25);
    auto result = index_.query_knn(store_, center, k, TimeInterval::all());
    ASSERT_EQ(result.size(), std::min(k, reference_.size()));
    std::vector<double> brute;
    brute.reserve(reference_.size());
    for (const Detection& d : reference_) {
      brute.push_back(distance(d.position, center));
    }
    std::sort(brute.begin(), brute.end());
    for (std::size_t i = 0; i < result.size(); ++i) {
      ASSERT_NEAR(result[i].second, brute[i], 1e-9)
          << "trial " << trial << " rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColumnarDifferential,
                         ::testing::Values(7, 99, 20260806));

// Zone maps must actually fire: near-time-ordered ingest (the realistic
// arrival pattern) plus a selective time window leaves most blocks provably
// outside the window.
TEST(ColumnarStore, SelectiveScanSkipsBlocks) {
  DetectionStore store;
  Rng rng(5);
  for (std::uint64_t i = 0; i < 8 * kDetectionBlockRows; ++i) {
    Detection d;
    d.id = DetectionId(i + 1);
    d.camera = CameraId(1 + i % 16);
    d.object = ObjectId(1);
    d.time = TimePoint(static_cast<std::int64_t>(i * 100) +
                       rng.uniform_int(0, 50));
    d.position = {rng.uniform(0, 100), rng.uniform(0, 100)};
    (void)store.append(d);
  }
  ASSERT_EQ(store.block_count(), 8u);
  // A window covering ~1/8 of the time axis.
  TimeInterval narrow{TimePoint(0), TimePoint(100 * kDetectionBlockRows)};
  auto refs = store.scan_range(Rect{{0, 0}, {100, 100}}, narrow);
  EXPECT_GT(refs.size(), 0u);
  EXPECT_GT(store.blocks_skipped(), 0u);
  EXPECT_LT(store.blocks_scanned(), store.block_count());
}

TEST(ColumnarStore, MemoryAccountingIsExact) {
  DetectionStore store;
  Rng rng(11);
  constexpr std::size_t kRows = 5000;
  constexpr std::size_t kDim = 32;
  for (std::uint64_t i = 1; i <= kRows; ++i) {
    Detection d = random_detection(rng, i);
    d.appearance.values.assign(kDim, 0.5f);
    (void)store.append(d);
  }
  auto m = store.memory_breakdown();
  EXPECT_EQ(store.memory_bytes(), m.total());
  // Lower bounds from live data alone (capacity ≥ size): 8 u64/i64/double
  // columns, the float arena, and one zone per block.
  EXPECT_GE(m.column_bytes, kRows * 8 * sizeof(std::uint64_t));
  EXPECT_GE(m.arena_bytes, kRows * kDim * sizeof(float));
  EXPECT_GE(m.zone_bytes, store.block_count() * sizeof(DetectionBlockZone));
  // And the total is not wildly above the live data (allocator slack from
  // doubling is at most ~2x).
  std::size_t live = kRows * 8 * sizeof(std::uint64_t) +
                     kRows * kDim * sizeof(float) +
                     store.block_count() * sizeof(DetectionBlockZone);
  EXPECT_LE(m.total(), 2 * live + 4096);
}

TEST(ColumnarStore, AppendCopyPreservesRows) {
  DetectionStore src;
  Rng rng(13);
  std::vector<Detection> originals;
  for (std::uint64_t i = 1; i <= 100; ++i) {
    Detection d = random_detection(rng, i);
    d.appearance.values = {0.1f * static_cast<float>(i), 0.5f, -0.25f};
    originals.push_back(d);
    (void)src.append(d);
  }
  DetectionStore dst;
  for (std::uint32_t i = 0; i < 100; ++i) {
    DetectionRef ref = dst.append_copy(src, static_cast<DetectionRef>(i));
    EXPECT_EQ(dst.get(ref), originals[i]);
  }
}

// Batched kernel vs the scalar AppearanceFeature::similarity: identical to
// well under the 1e-6 differential budget (both accumulate in double).
TEST(AppearanceKernel, BatchedMatchesScalar) {
  Rng rng(17);
  for (std::size_t dim : {1u, 3u, 4u, 7u, 31u, 128u, 257u}) {
    AppearanceFeature query;
    query.values.resize(dim);
    for (float& v : query.values) v = static_cast<float>(rng.normal(0, 1));
    query.normalize();
    constexpr std::size_t kN = 64;
    std::vector<AppearanceFeature> candidates(kN);
    std::vector<const float*> ptrs(kN);
    std::vector<float> contiguous;
    for (std::size_t c = 0; c < kN; ++c) {
      candidates[c].values.resize(dim);
      for (float& v : candidates[c].values) {
        v = static_cast<float>(rng.normal(0, 1));
      }
      candidates[c].normalize();
      ptrs[c] = candidates[c].values.data();
      contiguous.insert(contiguous.end(), candidates[c].values.begin(),
                        candidates[c].values.end());
    }
    std::vector<double> batched(kN);
    appearance_score_batch(query.values.data(), dim, ptrs.data(), kN,
                           batched.data());
    std::vector<double> dense(kN);
    appearance_score_batch_contiguous(query.values.data(), dim,
                                      contiguous.data(), kN, dense.data());
    for (std::size_t c = 0; c < kN; ++c) {
      double scalar = query.similarity(candidates[c]);
      EXPECT_NEAR(batched[c], scalar, 1e-6) << "dim " << dim << " cand " << c;
      EXPECT_NEAR(dense[c], scalar, 1e-6) << "dim " << dim << " cand " << c;
      EXPECT_NEAR(appearance_dot(query.values.data(), ptrs[c], dim), scalar,
                  1e-6);
    }
  }
}

}  // namespace
}  // namespace stcn
