// Differential tests for the columnar DetectionStore: zone-map block
// skipping must be invisible to results. A naive reference scan over a
// plain vector<Detection> (the layout the columnar store replaced) defines
// the expected answer for every query shape; the store and the grid index
// on top of it must agree exactly, including on adversarial inputs —
// out-of-order arrival times (zone maps cannot assume sorted blocks) and
// positions clamped to the region borders (half-open edge semantics).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/appearance_kernel.h"
#include "common/rng.h"
#include "index/detection_store.h"
#include "index/grid_index.h"
#include "query/executor.h"

namespace stcn {
namespace {

constexpr double kWorld = 1000.0;

Detection random_detection(Rng& rng, std::uint64_t id) {
  Detection d;
  d.id = DetectionId(id);
  d.camera = CameraId(1 + rng.uniform_index(40));
  d.object = ObjectId(1 + rng.uniform_index(200));
  // Out-of-order arrival: time is independent of append order.
  d.time = TimePoint(rng.uniform_int(0, 1'000'000));
  d.position = {rng.uniform(0, kWorld), rng.uniform(0, kWorld)};
  // A slice of positions clamped exactly onto the borders, where the
  // half-open contains() semantics bite.
  if (rng.uniform_index(10) == 0) {
    d.position.x = rng.uniform_index(2) == 0 ? 0.0 : kWorld;
  }
  if (rng.uniform_index(10) == 0) {
    d.position.y = rng.uniform_index(2) == 0 ? 0.0 : kWorld;
  }
  d.confidence = rng.uniform(0, 1);
  return d;
}

std::set<std::uint64_t> ids_of(const DetectionStore& store,
                               const std::vector<DetectionRef>& refs) {
  std::set<std::uint64_t> out;
  for (DetectionRef r : refs) out.insert(store.id_of(r).value());
  return out;
}

class ColumnarDifferential : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    Rng rng(GetParam());
    for (std::uint64_t i = 1; i <= 10'000; ++i) {
      Detection d = random_detection(rng, i);
      reference_.push_back(d);
      index_.insert(store_, store_.append(d));
    }
  }

  DetectionStore store_;
  GridIndex index_{{Rect{{0, 0}, {kWorld, kWorld}}, 25.0}};
  std::vector<Detection> reference_;  // naive row-store mirror
};

TEST_P(ColumnarDifferential, RangeMatchesReferenceScan) {
  Rng rng(GetParam() + 17);
  for (int trial = 0; trial < 30; ++trial) {
    Rect region =
        Rect::spanning({rng.uniform(0, kWorld), rng.uniform(0, kWorld)},
                       {rng.uniform(0, kWorld), rng.uniform(0, kWorld)});
    if (trial % 5 == 0) region = Rect{{0, 0}, {kWorld, kWorld}};  // full
    TimeInterval interval{TimePoint(rng.uniform_int(0, 500'000)),
                          TimePoint(rng.uniform_int(500'000, 1'000'000))};
    std::set<std::uint64_t> expected;
    for (const Detection& d : reference_) {
      if (region.contains(d.position) && interval.contains(d.time)) {
        expected.insert(d.id.value());
      }
    }
    EXPECT_EQ(ids_of(store_, store_.scan_range(region, interval)), expected)
        << "store scan, trial " << trial;
    EXPECT_EQ(ids_of(store_, index_.query_range(store_, region, interval)),
              expected)
        << "grid query, trial " << trial;
  }
}

TEST_P(ColumnarDifferential, CircleMatchesReferenceScan) {
  Rng rng(GetParam() + 31);
  for (int trial = 0; trial < 30; ++trial) {
    Circle circle{{rng.uniform(0, kWorld), rng.uniform(0, kWorld)},
                  rng.uniform(5, 200)};
    TimeInterval interval{TimePoint(rng.uniform_int(0, 500'000)),
                          TimePoint(rng.uniform_int(500'000, 1'000'000))};
    std::set<std::uint64_t> expected;
    for (const Detection& d : reference_) {
      if (circle.contains(d.position) && interval.contains(d.time)) {
        expected.insert(d.id.value());
      }
    }
    EXPECT_EQ(ids_of(store_, store_.scan_circle(circle, interval)), expected)
        << "store scan, trial " << trial;
    EXPECT_EQ(ids_of(store_, index_.query_circle(store_, circle, interval)),
              expected)
        << "grid query, trial " << trial;
  }
}

TEST_P(ColumnarDifferential, CameraMatchesReferenceScan) {
  Rng rng(GetParam() + 47);
  for (int trial = 0; trial < 30; ++trial) {
    CameraId camera(1 + rng.uniform_index(40));
    TimeInterval interval{TimePoint(rng.uniform_int(0, 500'000)),
                          TimePoint(rng.uniform_int(500'000, 1'000'000))};
    std::set<std::uint64_t> expected;
    for (const Detection& d : reference_) {
      if (d.camera == camera && interval.contains(d.time)) {
        expected.insert(d.id.value());
      }
    }
    EXPECT_EQ(ids_of(store_, store_.scan_camera(camera, interval)), expected)
        << "trial " << trial;
  }
}

TEST_P(ColumnarDifferential, KnnMatchesReferenceScan) {
  Rng rng(GetParam() + 63);
  for (int trial = 0; trial < 20; ++trial) {
    Point center{rng.uniform(-50, kWorld + 50), rng.uniform(-50, kWorld + 50)};
    std::size_t k = 1 + rng.uniform_index(25);
    auto result = index_.query_knn(store_, center, k, TimeInterval::all());
    ASSERT_EQ(result.size(), std::min(k, reference_.size()));
    std::vector<double> brute;
    brute.reserve(reference_.size());
    for (const Detection& d : reference_) {
      brute.push_back(distance(d.position, center));
    }
    std::sort(brute.begin(), brute.end());
    for (std::size_t i = 0; i < result.size(); ++i) {
      ASSERT_NEAR(result[i].second, brute[i], 1e-9)
          << "trial " << trial << " rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColumnarDifferential,
                         ::testing::Values(7, 99, 20260806));

// Zone maps must actually fire: near-time-ordered ingest (the realistic
// arrival pattern) plus a selective time window leaves most blocks provably
// outside the window.
TEST(ColumnarStore, SelectiveScanSkipsBlocks) {
  DetectionStore store;
  Rng rng(5);
  for (std::uint64_t i = 0; i < 8 * kDetectionBlockRows; ++i) {
    Detection d;
    d.id = DetectionId(i + 1);
    d.camera = CameraId(1 + i % 16);
    d.object = ObjectId(1);
    d.time = TimePoint(static_cast<std::int64_t>(i * 100) +
                       rng.uniform_int(0, 50));
    d.position = {rng.uniform(0, 100), rng.uniform(0, 100)};
    (void)store.append(d);
  }
  ASSERT_EQ(store.block_count(), 8u);
  // A window covering ~1/8 of the time axis.
  TimeInterval narrow{TimePoint(0), TimePoint(100 * kDetectionBlockRows)};
  auto refs = store.scan_range(Rect{{0, 0}, {100, 100}}, narrow);
  EXPECT_GT(refs.size(), 0u);
  EXPECT_GT(store.blocks_skipped(), 0u);
  EXPECT_LT(store.blocks_scanned(), store.block_count());
}

TEST(ColumnarStore, MemoryAccountingIsExact) {
  DetectionStore store;
  Rng rng(11);
  constexpr std::size_t kRows = 5000;
  constexpr std::size_t kDim = 32;
  for (std::uint64_t i = 1; i <= kRows; ++i) {
    Detection d = random_detection(rng, i);
    d.appearance.values.assign(kDim, 0.5f);
    (void)store.append(d);
  }
  auto m = store.memory_breakdown();
  EXPECT_EQ(store.memory_bytes(), m.total());
  // Lower bounds from live data alone (capacity ≥ size): 8 u64/i64/double
  // columns, the float arena, and one zone per block.
  EXPECT_GE(m.column_bytes, kRows * 8 * sizeof(std::uint64_t));
  EXPECT_GE(m.arena_bytes, kRows * kDim * sizeof(float));
  EXPECT_GE(m.zone_bytes, store.block_count() * sizeof(DetectionBlockZone));
  // And the total is not wildly above the live data (allocator slack from
  // doubling is at most ~2x).
  std::size_t live = kRows * 8 * sizeof(std::uint64_t) +
                     kRows * kDim * sizeof(float) +
                     store.block_count() * sizeof(DetectionBlockZone);
  EXPECT_LE(m.total(), 2 * live + 4096);
}

TEST(ColumnarStore, AppendCopyPreservesRows) {
  DetectionStore src;
  Rng rng(13);
  std::vector<Detection> originals;
  for (std::uint64_t i = 1; i <= 100; ++i) {
    Detection d = random_detection(rng, i);
    d.appearance.values = {0.1f * static_cast<float>(i), 0.5f, -0.25f};
    originals.push_back(d);
    (void)src.append(d);
  }
  DetectionStore dst;
  for (std::uint32_t i = 0; i < 100; ++i) {
    DetectionRef ref = dst.append_copy(src, static_cast<DetectionRef>(i));
    EXPECT_EQ(dst.get(ref), originals[i]);
  }
}

TEST(ColumnarStore, AppendRowsPreservesRowsAndRecomputesZonesTightly) {
  DetectionStore src;
  Rng rng(19);
  std::vector<Detection> originals;
  for (std::uint64_t i = 1; i <= 300; ++i) {
    Detection d = random_detection(rng, i);
    d.appearance.values = {0.25f * static_cast<float>(i % 7), -1.5f};
    // Rows 100..199 sit in a narrow time/position band; the rest are wide.
    if (i >= 100 && i < 200) {
      d.time = TimePoint(500'000 + static_cast<std::int64_t>(i));
      d.position = {400.0 + static_cast<double>(i % 50), 250.0};
    }
    originals.push_back(d);
    (void)src.append(d);
  }
  DetectionStore dst;
  DetectionRef first_ref = dst.append_rows(src, 99, 199);
  ASSERT_EQ(dst.size(), 100u);
  EXPECT_EQ(to_index(first_ref), 0u);
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(dst.get(static_cast<DetectionRef>(i)), originals[99 + i]);
  }
  // The destination zone must be recomputed tightly from the copied rows,
  // not inherited from the source block (whose bounds span the full wide
  // distribution).
  std::int64_t t_min = std::numeric_limits<std::int64_t>::max();
  std::int64_t t_max = std::numeric_limits<std::int64_t>::min();
  double x_min = 1e18;
  double x_max = -1e18;
  for (std::uint32_t i = 99; i < 199; ++i) {
    const Detection& d = originals[i];
    t_min = std::min(t_min, d.time.micros_since_origin());
    t_max = std::max(t_max, d.time.micros_since_origin());
    x_min = std::min(x_min, d.position.x);
    x_max = std::max(x_max, d.position.x);
  }
  ASSERT_EQ(dst.block_count(), 1u);
  EXPECT_EQ(dst.zone(0).t_min, t_min);
  EXPECT_EQ(dst.zone(0).t_max, t_max);
  EXPECT_DOUBLE_EQ(dst.zone(0).x_min, x_min);
  EXPECT_DOUBLE_EQ(dst.zone(0).x_max, x_max);
}

// Retention compaction must not degrade block skipping: the rebuilt
// store's zone maps are recomputed from the surviving rows, so a selective
// scan skips the same fraction of blocks before and after a no-op
// compaction (and still skips after a real eviction).
TEST(ColumnarStore, CompactionKeepsSkipRatioParity) {
  WorkerIndexes indexes({Rect{{0, 0}, {100, 100}}, 25.0});
  Rng rng(23);
  for (std::uint64_t i = 0; i < 8 * kDetectionBlockRows; ++i) {
    Detection d;
    d.id = DetectionId(i + 1);
    d.camera = CameraId(1 + i % 16);
    d.object = ObjectId(1 + i % 64);
    d.time = TimePoint(static_cast<std::int64_t>(i * 100) +
                       rng.uniform_int(0, 50));
    d.position = {rng.uniform(0, 100), rng.uniform(0, 100)};
    (void)indexes.ingest(d);
  }
  ASSERT_EQ(indexes.store.block_count(), 8u);
  TimeInterval narrow{TimePoint(0), TimePoint(100 * kDetectionBlockRows)};
  Rect all{{0, 0}, {100, 100}};

  MorselStats before;
  auto refs_before = indexes.store.scan_range(all, narrow, &before);
  ASSERT_GT(before.blocks_skipped, 0u);

  // No-op compaction (horizon before every row): same rows, rebuilt blocks.
  ASSERT_EQ(indexes.compact(TimePoint(0)), 0u);
  MorselStats after;
  auto refs_after = indexes.store.scan_range(all, narrow, &after);
  EXPECT_EQ(ids_of(indexes.store, refs_after),
            ids_of(indexes.store, refs_before));
  EXPECT_EQ(after.blocks_skipped, before.blocks_skipped);
  EXPECT_EQ(after.blocks_scanned, before.blocks_scanned);

  // Real eviction: drop the first half of the time axis, then a window over
  // the evicted range must skip every remaining block.
  TimePoint horizon(100 * 4 * static_cast<std::int64_t>(kDetectionBlockRows));
  std::size_t evicted = indexes.compact(horizon);
  EXPECT_GT(evicted, 0u);
  MorselStats stale;
  auto refs_stale = indexes.store.scan_range(
      all, TimeInterval{TimePoint(0), TimePoint(100)}, &stale);
  EXPECT_TRUE(refs_stale.empty());
  EXPECT_EQ(stale.blocks_scanned, 0u);
  EXPECT_EQ(stale.blocks_skipped, indexes.store.block_count());
}

// Positions clamped exactly onto the world border, probed with circles
// whose fully-inside fast path would wrongly fire if the containment check
// compared bounding boxes instead of testing the zone's corners against
// the circle. The AoS reference defines truth; the vectorized scan and the
// scalar block scan must both match it.
TEST(ColumnarStore, CircleFastPathExcludesClampedBorderPositions) {
  constexpr double kW = 1000.0;
  DetectionStore store;
  std::vector<Detection> reference;
  Rng rng(29);
  for (std::uint64_t i = 1; i <= 6000; ++i) {
    Detection d;
    d.id = DetectionId(i);
    d.camera = CameraId(1 + i % 8);
    d.object = ObjectId(1 + i % 32);
    d.time = TimePoint(static_cast<std::int64_t>(i));
    // Every position sits exactly on a clamp boundary: x pinned to 0 or
    // kW, y uniform (and a slice with y pinned too).
    d.position.x = (i % 2 == 0) ? 0.0 : kW;
    d.position.y = rng.uniform(0, kW);
    if (i % 10 == 0) d.position.y = (i % 20 == 0) ? 0.0 : kW;
    reference.push_back(d);
    (void)store.append(d);
  }
  // Circles centered on and near the border, radii chosen so some zones
  // are fully inside (legitimate fast path), some straddle the boundary
  // (fast path must NOT fire), and the boundary rows land exactly on the
  // radius (Circle::contains is inclusive).
  std::vector<Circle> circles = {
      {{kW, kW / 2}, kW / 4},   {{0.0, kW / 2}, kW / 4},
      {{kW, kW}, 1.0},          {{kW / 2, kW / 2}, kW / 2},
      {{kW, kW / 2}, kW / 2},   {{kW / 2, kW / 2}, std::sqrt(2.0) * kW / 2},
  };
  for (const Circle& circle : circles) {
    for (TimeInterval interval :
         {TimeInterval::all(),
          TimeInterval{TimePoint(1000), TimePoint(4000)}}) {
      std::set<std::uint64_t> expected;
      for (const Detection& d : reference) {
        if (circle.contains(d.position) && interval.contains(d.time)) {
          expected.insert(d.id.value());
        }
      }
      EXPECT_EQ(ids_of(store, store.scan_circle(circle, interval)), expected)
          << "vectorized, circle (" << circle.center.x << ","
          << circle.center.y << ") r=" << circle.radius;
      EXPECT_EQ(ids_of(store, store.scan_circle_scalar(circle, interval)),
                expected)
          << "scalar, circle (" << circle.center.x << "," << circle.center.y
          << ") r=" << circle.radius;
    }
  }
}

// Batched kernel vs the scalar AppearanceFeature::similarity: identical to
// well under the 1e-6 differential budget (both accumulate in double).
TEST(AppearanceKernel, BatchedMatchesScalar) {
  Rng rng(17);
  for (std::size_t dim : {1u, 3u, 4u, 7u, 31u, 128u, 257u}) {
    AppearanceFeature query;
    query.values.resize(dim);
    for (float& v : query.values) v = static_cast<float>(rng.normal(0, 1));
    query.normalize();
    constexpr std::size_t kN = 64;
    std::vector<AppearanceFeature> candidates(kN);
    std::vector<const float*> ptrs(kN);
    std::vector<float> contiguous;
    for (std::size_t c = 0; c < kN; ++c) {
      candidates[c].values.resize(dim);
      for (float& v : candidates[c].values) {
        v = static_cast<float>(rng.normal(0, 1));
      }
      candidates[c].normalize();
      ptrs[c] = candidates[c].values.data();
      contiguous.insert(contiguous.end(), candidates[c].values.begin(),
                        candidates[c].values.end());
    }
    std::vector<double> batched(kN);
    appearance_score_batch(query.values.data(), dim, ptrs.data(), kN,
                           batched.data());
    std::vector<double> dense(kN);
    appearance_score_batch_contiguous(query.values.data(), dim,
                                      contiguous.data(), kN, dense.data());
    for (std::size_t c = 0; c < kN; ++c) {
      double scalar = query.similarity(candidates[c]);
      EXPECT_NEAR(batched[c], scalar, 1e-6) << "dim " << dim << " cand " << c;
      EXPECT_NEAR(dense[c], scalar, 1e-6) << "dim " << dim << " cand " << c;
      EXPECT_NEAR(appearance_dot(query.values.data(), ptrs[c], dim), scalar,
                  1e-6);
    }
  }
}

}  // namespace
}  // namespace stcn
