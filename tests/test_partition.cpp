#include "partition/strategies.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "baseline/broadcast_router.h"
#include "partition/load_stats.h"
#include "trace/generator.h"

namespace stcn {
namespace {

struct World {
  RoadNetwork roads;
  CameraNetwork cameras;
  Rect bounds;
};

World make_world() {
  RoadNetworkConfig rc;
  rc.grid_cols = 10;
  rc.grid_rows = 10;
  rc.block_size_m = 100.0;
  rc.seed = 2;
  World w{RoadNetwork::build(rc), {}, {}};
  CameraNetworkConfig cc;
  cc.camera_count = 60;
  cc.seed = 3;
  w.cameras = CameraNetwork::place(w.roads, cc);
  w.bounds = w.roads.bounds(100.0);
  return w;
}

bool footprint_contains(const PartitionStrategy& strategy, const Rect& region,
                        const TimeInterval& interval, PartitionId p) {
  auto parts = strategy.partitions_for_region(region, interval);
  return std::find(parts.begin(), parts.end(), p) != parts.end();
}

// ------------------------------------------------------------- soundness
// The fundamental partitioning invariant: a detection's partition must be
// in the footprint of any query region that contains the detection.
template <typename Strategy>
void check_soundness(const Strategy& strategy, const World& world,
                     std::uint64_t seed) {
  Rng rng(seed);
  for (int i = 0; i < 300; ++i) {
    Point pos{rng.uniform(world.bounds.min.x, world.bounds.max.x),
              rng.uniform(world.bounds.min.y, world.bounds.max.y)};
    CameraId cam(1 + rng.uniform_index(world.cameras.size()));
    TimePoint t(rng.uniform_int(0, 600'000'000));
    PartitionId p = strategy.partition_of(cam, pos, t);
    ASSERT_LT(p.value(), strategy.partition_count());

    // Any region containing pos must include p in its footprint.
    Rect region = Rect::centered(pos, rng.uniform(1.0, 300.0));
    TimeInterval interval{t - Duration::seconds(10), t + Duration::seconds(10)};
    ASSERT_TRUE(footprint_contains(strategy, region, interval, p))
        << strategy.name() << ": partition " << p
        << " missing from footprint of region containing " << pos;
  }
}

TEST(SpatialGridStrategy, SoundFootprints) {
  World world = make_world();
  SpatialGridStrategy strategy(world.bounds, 4, 4, world.cameras);
  EXPECT_EQ(strategy.partition_count(), 16u);
  check_soundness(strategy, world, 10);
}

TEST(SpatialGridStrategy, TilesPartitionTheWorld) {
  World world = make_world();
  SpatialGridStrategy strategy(world.bounds, 4, 3, world.cameras);
  double total_area = 0.0;
  for (std::size_t i = 0; i < strategy.partition_count(); ++i) {
    total_area += strategy.tile_bounds(PartitionId(i)).area();
  }
  EXPECT_NEAR(total_area, world.bounds.area(), 1e-6);
}

TEST(SpatialGridStrategy, SmallRegionHitsFewPartitions) {
  World world = make_world();
  SpatialGridStrategy strategy(world.bounds, 8, 8, world.cameras);
  Rect small = Rect::centered(world.bounds.center(), 10.0);
  auto parts = strategy.partitions_for_region(small, TimeInterval::all());
  EXPECT_LE(parts.size(), 4u);
  Rect everything = world.bounds;
  auto all = strategy.partitions_for_region(everything, TimeInterval::all());
  EXPECT_EQ(all.size(), 64u);
}

TEST(SpatialGridStrategy, CameraFootprintCoversCameraPartitions) {
  World world = make_world();
  SpatialGridStrategy strategy(world.bounds, 5, 5, world.cameras);
  for (const Camera& cam : world.cameras.cameras()) {
    auto parts = strategy.partitions_for_camera(cam.id, TimeInterval::all());
    // The partition owning detections at the apex must be present.
    PartitionId p = strategy.partition_of(cam.id, cam.fov.apex, TimePoint(0));
    EXPECT_NE(std::find(parts.begin(), parts.end(), p), parts.end());
  }
}

TEST(HashStrategy, SoundAndBalanced) {
  World world = make_world();
  HashStrategy strategy(16);
  EXPECT_EQ(strategy.partition_count(), 16u);
  check_soundness(strategy, world, 20);

  // Same camera always maps to the same partition.
  PartitionId p1 = strategy.partition_of(CameraId(5), {0, 0}, TimePoint(0));
  PartitionId p2 =
      strategy.partition_of(CameraId(5), {999, 999}, TimePoint(12345));
  EXPECT_EQ(p1, p2);

  // Region footprint is everything (no spatial pruning).
  auto parts = strategy.partitions_for_region({{0, 0}, {1, 1}},
                                              TimeInterval::all());
  EXPECT_EQ(parts.size(), 16u);

  // Camera footprint is exactly one partition.
  auto cam_parts =
      strategy.partitions_for_camera(CameraId(5), TimeInterval::all());
  ASSERT_EQ(cam_parts.size(), 1u);
  EXPECT_EQ(cam_parts[0], p1);
}

TEST(HashStrategy, SpreadsCamerasAcrossPartitions) {
  HashStrategy strategy(8);
  std::set<std::uint64_t> used;
  for (std::uint64_t c = 1; c <= 100; ++c) {
    used.insert(
        strategy.partition_of(CameraId(c), {0, 0}, TimePoint(0)).value());
  }
  EXPECT_EQ(used.size(), 8u);
}

TEST(TemporalStrategy, EpochRouting) {
  TemporalStrategy strategy(4, Duration::minutes(1));
  EXPECT_EQ(strategy.partition_count(), 4u);
  // Same epoch → same partition regardless of space/camera.
  TimePoint t(30'000'000);  // 30 s → epoch 0
  EXPECT_EQ(strategy.partition_of(CameraId(1), {0, 0}, t),
            strategy.partition_of(CameraId(9), {55, 5}, t));
  // Consecutive epochs → consecutive partitions (round-robin).
  PartitionId e0 = strategy.partition_of(CameraId(1), {0, 0}, TimePoint(0));
  PartitionId e1 = strategy.partition_of(CameraId(1), {0, 0},
                                         TimePoint(60'000'001));
  EXPECT_NE(e0, e1);
}

TEST(TemporalStrategy, NarrowIntervalPrunes) {
  TemporalStrategy strategy(8, Duration::minutes(1));
  TimeInterval narrow{TimePoint(0), TimePoint(30'000'000)};  // half an epoch
  EXPECT_EQ(strategy.partitions_for_region({{0, 0}, {1, 1}}, narrow).size(),
            1u);
  TimeInterval wide{TimePoint(0), TimePoint(3'600'000'000)};  // 60 epochs
  EXPECT_EQ(strategy.partitions_for_region({{0, 0}, {1, 1}}, wide).size(),
            8u);
}

TEST(TemporalStrategy, SoundFootprints) {
  World world = make_world();
  TemporalStrategy strategy(6, Duration::minutes(1));
  check_soundness(strategy, world, 30);
}

TEST(HybridStrategy, SplitsHotTiles) {
  World world = make_world();
  HybridStrategy::Config config;
  config.tiles_x = 4;
  config.tiles_y = 4;
  config.hot_camera_threshold = 3;  // with 60 cameras / 16 tiles, some are hot
  config.hot_split_factor = 3;
  HybridStrategy strategy(world.bounds, world.cameras, config);
  EXPECT_GT(strategy.hot_tile_count(), 0u);
  EXPECT_GT(strategy.partition_count(), 16u);
  EXPECT_LE(strategy.partition_count(), 16u * 3u);
}

TEST(HybridStrategy, SoundFootprints) {
  World world = make_world();
  HybridStrategy::Config config;
  config.tiles_x = 4;
  config.tiles_y = 4;
  config.hot_camera_threshold = 3;
  config.hot_split_factor = 3;
  HybridStrategy strategy(world.bounds, world.cameras, config);
  check_soundness(strategy, world, 40);
}

TEST(HybridStrategy, CameraFootprintRefinesToSubPartition) {
  World world = make_world();
  HybridStrategy::Config config;
  config.tiles_x = 4;
  config.tiles_y = 4;
  config.hot_camera_threshold = 3;
  config.hot_split_factor = 4;
  HybridStrategy strategy(world.bounds, world.cameras, config);
  for (const Camera& cam : world.cameras.cameras()) {
    auto parts = strategy.partitions_for_camera(cam.id, TimeInterval::all());
    PartitionId p = strategy.partition_of(cam.id, cam.fov.apex, TimePoint(0));
    EXPECT_NE(std::find(parts.begin(), parts.end(), p), parts.end());
    // Camera routing must not fan out to every sub-partition of its tiles.
    auto region_parts = strategy.partitions_for_region(
        Rect::centered(cam.fov.apex, 80.0), TimeInterval::all());
    EXPECT_LE(parts.size(), region_parts.size());
  }
}

TEST(BroadcastStrategy, DelegatesPlacementButBroadcastsFootprint) {
  World world = make_world();
  auto inner = std::make_unique<SpatialGridStrategy>(world.bounds, 4, 4,
                                                     world.cameras);
  const SpatialGridStrategy& inner_ref = *inner;
  BroadcastStrategy broadcast(std::move(inner));
  EXPECT_EQ(broadcast.partition_count(), 16u);
  EXPECT_EQ(broadcast.name(), "broadcast(spatial)");

  Point pos = world.bounds.center();
  EXPECT_EQ(broadcast.partition_of(CameraId(1), pos, TimePoint(0)),
            inner_ref.partition_of(CameraId(1), pos, TimePoint(0)));
  EXPECT_EQ(
      broadcast.partitions_for_region({{0, 0}, {1, 1}}, TimeInterval::all())
          .size(),
      16u);
  EXPECT_EQ(
      broadcast.partitions_for_camera(CameraId(1), TimeInterval::all()).size(),
      16u);
}

TEST(PartitionMap, RoundRobinPlacement) {
  std::vector<WorkerId> workers{WorkerId(1), WorkerId(2), WorkerId(3)};
  PartitionMap map = PartitionMap::round_robin(7, workers);
  EXPECT_EQ(map.partition_count(), 7u);
  EXPECT_EQ(map.primary(PartitionId(0)), WorkerId(1));
  EXPECT_EQ(map.primary(PartitionId(1)), WorkerId(2));
  EXPECT_EQ(map.primary(PartitionId(3)), WorkerId(1));
  // Backup differs from primary when >1 worker.
  for (std::size_t p = 0; p < 7; ++p) {
    EXPECT_TRUE(map.has_distinct_backup(PartitionId(p)));
  }
}

TEST(PartitionMap, SingleWorkerHasNoDistinctBackup) {
  PartitionMap map = PartitionMap::round_robin(4, {WorkerId(1)});
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_FALSE(map.has_distinct_backup(PartitionId(p)));
  }
}

TEST(PartitionMap, FailoverReassignment) {
  std::vector<WorkerId> workers{WorkerId(1), WorkerId(2)};
  PartitionMap map = PartitionMap::round_robin(4, workers);
  map.set_primary(PartitionId(0), WorkerId(2));
  EXPECT_EQ(map.primary(PartitionId(0)), WorkerId(2));
  auto of2 = map.partitions_of(WorkerId(2));
  EXPECT_EQ(of2.size(), 3u);  // originally 1 and 3, plus promoted 0
}

TEST(LoadStats, ComputesImbalanceMetrics) {
  std::vector<WorkerId> workers{WorkerId(1), WorkerId(2), WorkerId(3)};
  LoadStats stats(3);
  for (int i = 0; i < 80; ++i) stats.record(PartitionId(0), WorkerId(1));
  for (int i = 0; i < 10; ++i) stats.record(PartitionId(1), WorkerId(2));
  for (int i = 0; i < 10; ++i) stats.record(PartitionId(2), WorkerId(3));
  EXPECT_EQ(stats.total(), 100u);
  EXPECT_GT(stats.worker_load_cv(workers), 1.0);
  EXPECT_NEAR(stats.worker_max_over_mean(workers), 80.0 / (100.0 / 3.0),
              1e-9);

  LoadStats balanced(3);
  for (int i = 0; i < 30; ++i) {
    balanced.record(PartitionId(static_cast<std::uint64_t>(i % 3)),
                    workers[static_cast<std::size_t>(i % 3)]);
  }
  EXPECT_NEAR(balanced.worker_load_cv(workers), 0.0, 1e-12);
}

TEST(LoadStats, HashBeatsSpatialOnSkewedLoad) {
  // Generate a real skewed trace and compare strategies' worker-load CV —
  // the core claim behind hybrid partitioning.
  // Enough cameras that hashing has granularity to balance with, and
  // enough hotspots that the hot load is spread over several cameras
  // (hashing cannot split a single ultra-hot camera).
  TraceConfig tc;
  tc.roads.grid_cols = 10;
  tc.roads.grid_rows = 10;
  tc.cameras.camera_count = 90;
  tc.mobility.object_count = 40;
  tc.mobility.hotspot_fraction = 0.6;
  tc.mobility.hotspot_count = 6;
  tc.duration = Duration::minutes(4);
  Trace trace = TraceGenerator::generate(tc);
  Rect world = trace.roads.bounds(100.0);
  std::vector<WorkerId> workers;
  for (std::uint64_t w = 1; w <= 8; ++w) workers.emplace_back(w);

  auto run = [&](const PartitionStrategy& strategy) {
    PartitionMap map =
        PartitionMap::round_robin(strategy.partition_count(), workers);
    LoadStats stats(strategy.partition_count());
    for (const Detection& d : trace.detections) {
      PartitionId p = strategy.partition_of(d.camera, d.position, d.time);
      stats.record(p, map.primary(p));
    }
    return stats.worker_load_cv(workers);
  };

  SpatialGridStrategy spatial(world, 4, 4, trace.cameras);
  HashStrategy hash(16);
  double spatial_cv = run(spatial);
  double hash_cv = run(hash);
  EXPECT_LT(hash_cv, spatial_cv)
      << "hash partitioning must balance a skewed workload better than "
         "spatial tiles";
}

}  // namespace
}  // namespace stcn
