#include "common/stats.h"

#include <gtest/gtest.h>

namespace stcn {
namespace {

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStat, MergeEqualsBulk) {
  RunningStat bulk;
  RunningStat a;
  RunningStat b;
  for (int i = 0; i < 100; ++i) {
    double x = i * 0.7 - 20.0;
    bulk.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), bulk.count());
  EXPECT_NEAR(a.mean(), bulk.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), bulk.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), bulk.min());
  EXPECT_DOUBLE_EQ(a.max(), bulk.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a;
  a.add(1.0);
  a.add(3.0);
  RunningStat empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  RunningStat other;
  other.add(5.0);
  empty.merge(other);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(RunningStat, CoefficientOfVariation) {
  RunningStat balanced;
  for (int i = 0; i < 10; ++i) balanced.add(100.0);
  EXPECT_DOUBLE_EQ(balanced.cv(), 0.0);

  RunningStat skewed;
  skewed.add(0.0);
  skewed.add(200.0);
  EXPECT_GT(skewed.cv(), 1.0);
}

TEST(QuantileRecorder, Quantiles) {
  QuantileRecorder q;
  for (int i = 1; i <= 100; ++i) q.add(static_cast<double>(i));
  EXPECT_EQ(q.count(), 100u);
  EXPECT_NEAR(q.median(), 50.0, 1.0);
  EXPECT_NEAR(q.quantile(0.0), 1.0, 1e-12);
  EXPECT_NEAR(q.quantile(1.0), 100.0, 1e-12);
  EXPECT_NEAR(q.p99(), 99.0, 1.5);
  EXPECT_DOUBLE_EQ(q.mean(), 50.5);
}

// Exact nearest-rank semantics (index ⌈q·n⌉ - 1) at the sample counts
// where the old rounding formula sat one rank too high.
TEST(QuantileRecorder, ExactNearestRankSingleSample) {
  QuantileRecorder q;
  q.add(42.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(q.median(), 42.0);
  EXPECT_DOUBLE_EQ(q.p99(), 42.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 42.0);
}

TEST(QuantileRecorder, ExactNearestRankTwoSamples) {
  QuantileRecorder q;
  q.add(10.0);
  q.add(20.0);
  // ⌈0.5·2⌉-1 = 0: the nearest-rank median of two samples is the lower
  // one (the old formula returned 20).
  EXPECT_DOUBLE_EQ(q.median(), 10.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.25), 10.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.51), 20.0);
  EXPECT_DOUBLE_EQ(q.p99(), 20.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 20.0);
}

TEST(QuantileRecorder, ExactNearestRankHundredSamples) {
  QuantileRecorder q;
  for (int i = 1; i <= 100; ++i) q.add(static_cast<double>(i));
  // ⌈q·100⌉-1 picks the q·100-th smallest exactly.
  EXPECT_DOUBLE_EQ(q.quantile(0.01), 1.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.25), 25.0);
  EXPECT_DOUBLE_EQ(q.median(), 50.0);  // old formula returned 51
  EXPECT_DOUBLE_EQ(q.quantile(0.75), 75.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.90), 90.0);
  EXPECT_DOUBLE_EQ(q.p99(), 99.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 100.0);
}

TEST(QuantileRecorder, EmptyReturnsZero) {
  QuantileRecorder q;
  EXPECT_DOUBLE_EQ(q.median(), 0.0);
  EXPECT_DOUBLE_EQ(q.mean(), 0.0);
}

TEST(QuantileRecorder, InterleavedAddAndQuery) {
  QuantileRecorder q;
  q.add(5.0);
  EXPECT_DOUBLE_EQ(q.median(), 5.0);
  q.add(1.0);
  q.add(9.0);
  EXPECT_DOUBLE_EQ(q.median(), 5.0);  // re-sorts after new samples
}

TEST(CounterSet, AddGetReset) {
  CounterSet c;
  EXPECT_EQ(c.get("missing"), 0u);
  c.add("msgs");
  c.add("msgs");
  c.add("bytes", 100);
  EXPECT_EQ(c.get("msgs"), 2u);
  EXPECT_EQ(c.get("bytes"), 100u);
  EXPECT_EQ(c.all().size(), 2u);
  c.reset();
  EXPECT_EQ(c.get("msgs"), 0u);
  EXPECT_TRUE(c.all().empty());
}

}  // namespace
}  // namespace stcn
