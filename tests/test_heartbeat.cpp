// Heartbeat-based failure detection at the coordinator.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/framework.h"
#include "partition/strategies.h"
#include "trace/generator.h"

namespace stcn {
namespace {

struct HeartbeatScenario {
  Trace trace;
  Rect world;

  HeartbeatScenario() {
    TraceConfig tc;
    tc.roads.grid_cols = 6;
    tc.roads.grid_rows = 6;
    tc.cameras.camera_count = 18;
    tc.mobility.object_count = 12;
    tc.duration = Duration::minutes(2);
    trace = TraceGenerator::generate(tc);
    world = trace.roads.bounds(120.0);
  }

  std::unique_ptr<Cluster> make_cluster(bool detect = true) {
    ClusterConfig config;
    config.worker_count = 4;
    config.coordinator.detect_failures = detect;
    config.coordinator.heartbeat_timeout = Duration::seconds(5);
    config.coordinator.failure_sweep_period = Duration::seconds(2);
    return std::make_unique<Cluster>(
        world,
        std::make_unique<SpatialGridStrategy>(world, 3, 3, trace.cameras),
        config);
  }
};

TEST(Heartbeat, HealthyClusterSuspectsNobody) {
  HeartbeatScenario s;
  auto cluster = s.make_cluster();
  cluster->ingest_all(s.trace.detections);
  cluster->advance_time(Duration::seconds(30));
  EXPECT_TRUE(cluster->coordinator().suspected_workers().empty());
  EXPECT_EQ(cluster->coordinator().counters().get("workers_suspected"), 0u);
}

TEST(Heartbeat, SilentWorkerSuspectedAndFailedOver) {
  HeartbeatScenario s;
  auto cluster = s.make_cluster();
  cluster->ingest_all(s.trace.detections);
  cluster->advance_time(Duration::seconds(10));  // heartbeats registered

  cluster->crash_worker(WorkerId(2));
  cluster->advance_time(Duration::seconds(15));  // past timeout + sweep

  EXPECT_TRUE(
      cluster->coordinator().suspected_workers().contains(WorkerId(2)));
  EXPECT_GT(cluster->coordinator().counters().get("workers_suspected"), 0u);
  // Every partition has been re-pointed away from the dead worker.
  const PartitionMap& map = cluster->coordinator().partition_map();
  for (std::size_t p = 0; p < map.partition_count(); ++p) {
    EXPECT_NE(map.primary(PartitionId(p)), WorkerId(2));
  }
}

TEST(Heartbeat, QueriesAfterDetectionNeedNoRetry) {
  HeartbeatScenario s;
  auto cluster = s.make_cluster();
  cluster->ingest_all(s.trace.detections);
  cluster->advance_time(Duration::seconds(10));
  cluster->crash_worker(WorkerId(1));
  cluster->advance_time(Duration::seconds(15));

  auto retries0 = cluster->coordinator().counters().get("failover_retries");
  QueryResult r = cluster->execute(Query::range(
      cluster->next_query_id(), s.world, TimeInterval::all()));
  EXPECT_EQ(cluster->coordinator().counters().get("failover_retries"),
            retries0)
      << "after proactive failover, no per-query retry should be needed";
  EXPECT_EQ(r.detections.size(), s.trace.detections.size());
}

TEST(Heartbeat, RestartedWorkerUnsuspectedByItsHeartbeat) {
  HeartbeatScenario s;
  auto cluster = s.make_cluster();
  cluster->ingest_all(s.trace.detections);
  cluster->advance_time(Duration::seconds(10));
  cluster->crash_worker(WorkerId(3));
  cluster->advance_time(Duration::seconds(15));
  ASSERT_TRUE(
      cluster->coordinator().suspected_workers().contains(WorkerId(3)));

  cluster->restart_worker(WorkerId(3));
  cluster->advance_time(Duration::seconds(5));  // heartbeats resume
  EXPECT_FALSE(
      cluster->coordinator().suspected_workers().contains(WorkerId(3)));
}

TEST(Heartbeat, DetectionCanBeDisabled) {
  HeartbeatScenario s;
  auto cluster = s.make_cluster(/*detect=*/false);
  cluster->ingest_all(s.trace.detections);
  cluster->advance_time(Duration::seconds(10));
  cluster->crash_worker(WorkerId(2));
  cluster->advance_time(Duration::seconds(30));
  EXPECT_TRUE(cluster->coordinator().suspected_workers().empty());
}

}  // namespace
}  // namespace stcn
