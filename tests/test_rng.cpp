#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace stcn {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent1(99);
  Rng parent2(99);
  Rng child_a = parent1.split(1);
  Rng child_b = parent2.split(1);
  // Same parent state + same stream → same child.
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(child_a.next_u64(), child_b.next_u64());
  }
  // Different streams → different children.
  Rng parent3(99);
  Rng child_c = parent3.split(2);
  Rng parent4(99);
  Rng child_d = parent4.split(1);
  EXPECT_NE(child_c.next_u64(), child_d.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, UniformRange) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform(-3.0, 7.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 7.0);
  }
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    std::uint64_t v = rng.uniform_index(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
  // n=1 always yields 0.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(8);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    std::int64_t v = rng.uniform_int(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(10);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalScaled) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMeanAndPositivity) {
  Rng rng(12);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double x = rng.exponential(4.0);
    ASSERT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, LognormalPositive) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.lognormal(1.0, 0.5), 0.0);
  }
}

TEST(Rng, ZipfSkewAndBounds) {
  Rng rng(14);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) {
    std::uint64_t v = rng.zipf(100, 1.0);
    ASSERT_LT(v, 100u);
    ++counts[v];
  }
  // Rank 0 must dominate rank 50 heavily under s=1.
  EXPECT_GT(counts[0], counts[50] * 10);
  // s=0 degenerates to uniform: head should not dominate.
  std::vector<int> flat(10, 0);
  for (int i = 0; i < 50000; ++i) ++flat[rng.zipf(10, 0.0)];
  EXPECT_LT(flat[0], flat[9] * 2);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(15);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(16);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  rng.shuffle(v);
  int displaced = 0;
  for (int i = 0; i < 100; ++i) {
    if (v[i] != i) ++displaced;
  }
  EXPECT_GT(displaced, 80);
}

TEST(SplitMix, KnownDeterministicSequence) {
  SplitMix64 sm(0);
  std::uint64_t first = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.next(), first);
  EXPECT_NE(sm.next(), first);
}

}  // namespace
}  // namespace stcn
