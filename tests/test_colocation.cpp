#include "query/colocation.h"

#include <gtest/gtest.h>

#include <map>
#include <utility>

#include "common/rng.h"

namespace stcn {
namespace {

Detection det(std::uint64_t id, std::uint64_t object, Point pos,
              std::int64_t t_seconds, std::uint64_t camera = 1) {
  Detection d;
  d.id = DetectionId(id);
  d.object = ObjectId(object);
  d.camera = CameraId(camera);
  d.position = pos;
  d.time = TimePoint(t_seconds * 1'000'000);
  return d;
}

CoLocationParams params(std::size_t min_events = 1) {
  CoLocationParams p;
  p.max_distance = 20.0;
  p.max_gap = Duration::seconds(5);
  p.min_events = min_events;
  return p;
}

TEST(CoLocation, EmptyInput) {
  EXPECT_TRUE(find_meetings({}, params()).empty());
}

TEST(CoLocation, DetectsOnePair) {
  std::vector<Detection> ds = {
      det(1, 7, {100, 100}, 10),
      det(2, 8, {105, 100}, 12),  // 5 m, 2 s apart → co-located
  };
  auto meetings = find_meetings(ds, params());
  ASSERT_EQ(meetings.size(), 1u);
  EXPECT_EQ(meetings[0].a, ObjectId(7));
  EXPECT_EQ(meetings[0].b, ObjectId(8));
  EXPECT_EQ(meetings[0].events, 1u);
  EXPECT_EQ(meetings[0].first_seen, TimePoint(10'000'000));
  EXPECT_EQ(meetings[0].last_seen, TimePoint(12'000'000));
}

TEST(CoLocation, TooFarApartIgnored) {
  std::vector<Detection> ds = {
      det(1, 7, {100, 100}, 10),
      det(2, 8, {150, 100}, 12),  // 50 m: beyond max_distance
  };
  EXPECT_TRUE(find_meetings(ds, params()).empty());
}

TEST(CoLocation, TooLateIgnored) {
  std::vector<Detection> ds = {
      det(1, 7, {100, 100}, 10),
      det(2, 8, {105, 100}, 30),  // 20 s: beyond max_gap
  };
  EXPECT_TRUE(find_meetings(ds, params()).empty());
}

TEST(CoLocation, SameObjectNeverMeetsItself) {
  std::vector<Detection> ds = {
      det(1, 7, {100, 100}, 10),
      det(2, 7, {101, 100}, 11),
  };
  EXPECT_TRUE(find_meetings(ds, params()).empty());
}

TEST(CoLocation, MinEventsFilters) {
  std::vector<Detection> ds = {
      det(1, 7, {100, 100}, 10),
      det(2, 8, {105, 100}, 11),
  };
  EXPECT_EQ(find_meetings(ds, params(1)).size(), 1u);
  EXPECT_TRUE(find_meetings(ds, params(2)).empty());
}

TEST(CoLocation, RepeatedEncountersAccumulate) {
  std::vector<Detection> ds;
  std::uint64_t id = 1;
  // Objects 7 and 8 walk together: 4 co-located sightings.
  for (int i = 0; i < 4; ++i) {
    double x = 100.0 + i * 50.0;
    ds.push_back(det(id++, 7, {x, 100}, 10 + i * 20));
    ds.push_back(det(id++, 8, {x + 4, 100}, 11 + i * 20,
                     /*camera=*/static_cast<std::uint64_t>(1 + i)));
  }
  auto meetings = find_meetings(ds, params(3));
  ASSERT_EQ(meetings.size(), 1u);
  EXPECT_EQ(meetings[0].events, 4u);
  EXPECT_GE(meetings[0].distinct_cameras, 4u);
}

TEST(CoLocation, MinDistinctCamerasFilters) {
  // Two strangers caught once by the same camera pair.
  std::vector<Detection> ds = {
      det(1, 7, {100, 100}, 10, 1),
      det(2, 8, {104, 100}, 11, 1),
  };
  CoLocationParams p = params(1);
  p.min_distinct_cameras = 2;
  EXPECT_TRUE(find_meetings(ds, p).empty());
  p.min_distinct_cameras = 1;
  EXPECT_EQ(find_meetings(ds, p).size(), 1u);
}

TEST(CoLocation, SortedByEventCount) {
  std::vector<Detection> ds;
  std::uint64_t id = 1;
  // Pair (1,2): 3 events; pair (3,4): 1 event.
  for (int i = 0; i < 3; ++i) {
    ds.push_back(det(id++, 1, {100.0 + i * 100, 100}, i * 30));
    ds.push_back(det(id++, 2, {103.0 + i * 100, 100}, i * 30 + 1));
  }
  ds.push_back(det(id++, 3, {500, 500}, 10));
  ds.push_back(det(id++, 4, {503, 500}, 11));
  auto meetings = find_meetings(ds, params(1));
  ASSERT_EQ(meetings.size(), 2u);
  EXPECT_EQ(meetings[0].events, 3u);
  EXPECT_EQ(meetings[1].events, 1u);
}

// Property: the grid-hashed join must equal the O(n²) brute force.
class CoLocationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoLocationProperty, MatchesBruteForce) {
  Rng rng(GetParam());
  std::vector<Detection> ds;
  for (std::uint64_t i = 1; i <= 250; ++i) {
    ds.push_back(det(i, 1 + rng.uniform_index(20),
                     {rng.uniform(0, 500), rng.uniform(0, 500)},
                     rng.uniform_int(0, 300),
                     1 + rng.uniform_index(10)));
  }
  CoLocationParams p = params(1);

  auto fast = find_meetings(ds, p);

  // Brute force.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::size_t> brute;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    for (std::size_t j = i + 1; j < ds.size(); ++j) {
      const Detection& x = ds[i];
      const Detection& y = ds[j];
      if (x.object == y.object) continue;
      Duration gap = x.time >= y.time ? x.time - y.time : y.time - x.time;
      if (gap > p.max_gap) continue;
      if (distance(x.position, y.position) > p.max_distance) continue;
      ++brute[{std::min(x.object.value(), y.object.value()),
               std::max(x.object.value(), y.object.value())}];
    }
  }
  ASSERT_EQ(fast.size(), brute.size());
  for (const Meeting& m : fast) {
    auto it = brute.find({m.a.value(), m.b.value()});
    ASSERT_NE(it, brute.end());
    EXPECT_EQ(m.events, it->second)
        << "pair " << m.a << "," << m.b << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoLocationProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace stcn
