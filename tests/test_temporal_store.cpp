#include "index/temporal_store.h"

#include <gtest/gtest.h>

namespace stcn {
namespace {

Detection make_detection(std::uint64_t id, std::uint64_t camera,
                         std::int64_t t) {
  Detection d;
  d.id = DetectionId(id);
  d.camera = CameraId(camera);
  d.object = ObjectId(1);
  d.time = TimePoint(t);
  return d;
}

class TemporalStoreFixture : public ::testing::Test {
 protected:
  DetectionStore store_;
  TemporalStore temporal_;

  void add(std::uint64_t id, std::uint64_t camera, std::int64_t t) {
    temporal_.insert(store_, store_.append(make_detection(id, camera, t)));
  }
};

TEST_F(TemporalStoreFixture, EmptyStore) {
  EXPECT_EQ(temporal_.size(), 0u);
  EXPECT_TRUE(temporal_.query(TimeInterval::all()).empty());
  EXPECT_TRUE(
      temporal_.query_camera(CameraId(1), TimeInterval::all()).empty());
}

TEST_F(TemporalStoreFixture, GlobalLogTimeOrdered) {
  add(1, 1, 300);
  add(2, 2, 100);
  add(3, 1, 200);
  auto refs = temporal_.query(TimeInterval::all());
  ASSERT_EQ(refs.size(), 3u);
  EXPECT_EQ(store_.get(refs[0]).time, TimePoint(100));
  EXPECT_EQ(store_.get(refs[1]).time, TimePoint(200));
  EXPECT_EQ(store_.get(refs[2]).time, TimePoint(300));
}

TEST_F(TemporalStoreFixture, PerCameraFilter) {
  add(1, 1, 100);
  add(2, 2, 150);
  add(3, 1, 200);
  auto cam1 = temporal_.query_camera(CameraId(1), TimeInterval::all());
  ASSERT_EQ(cam1.size(), 2u);
  EXPECT_EQ(store_.get(cam1[0]).id, DetectionId(1));
  EXPECT_EQ(store_.get(cam1[1]).id, DetectionId(3));
  auto cam2 = temporal_.query_camera(CameraId(2), TimeInterval::all());
  ASSERT_EQ(cam2.size(), 1u);
  EXPECT_EQ(store_.get(cam2[0]).id, DetectionId(2));
  EXPECT_TRUE(
      temporal_.query_camera(CameraId(3), TimeInterval::all()).empty());
}

TEST_F(TemporalStoreFixture, IntervalHalfOpen) {
  add(1, 1, 100);
  add(2, 1, 200);
  auto refs = temporal_.query({TimePoint(100), TimePoint(200)});
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(store_.get(refs[0]).id, DetectionId(1));
  auto cam = temporal_.query_camera(CameraId(1),
                                    {TimePoint(150), TimePoint(250)});
  ASSERT_EQ(cam.size(), 1u);
  EXPECT_EQ(store_.get(cam[0]).id, DetectionId(2));
}

TEST_F(TemporalStoreFixture, CameraCount) {
  add(1, 1, 100);
  add(2, 2, 100);
  add(3, 2, 200);
  EXPECT_EQ(temporal_.camera_count(), 2u);
  EXPECT_EQ(temporal_.size(), 3u);
}

}  // namespace
}  // namespace stcn
