#include "common/time.h"

#include <gtest/gtest.h>

#include <sstream>

namespace stcn {
namespace {

TEST(Duration, Factories) {
  EXPECT_EQ(Duration::micros(5).count_micros(), 5);
  EXPECT_EQ(Duration::millis(5).count_micros(), 5000);
  EXPECT_EQ(Duration::seconds(2).count_micros(), 2'000'000);
  EXPECT_EQ(Duration::minutes(1).count_micros(), 60'000'000);
  EXPECT_EQ(Duration::zero().count_micros(), 0);
}

TEST(Duration, Arithmetic) {
  Duration a = Duration::seconds(3);
  Duration b = Duration::seconds(1);
  EXPECT_EQ((a + b), Duration::seconds(4));
  EXPECT_EQ((a - b), Duration::seconds(2));
  EXPECT_EQ((a * 2), Duration::seconds(6));
  EXPECT_EQ((a / 3), Duration::seconds(1));
  EXPECT_DOUBLE_EQ(a.to_seconds(), 3.0);
}

TEST(Duration, Comparison) {
  EXPECT_LT(Duration::millis(1), Duration::seconds(1));
  EXPECT_EQ(Duration::millis(1000), Duration::seconds(1));
  EXPECT_GT(Duration::zero(), Duration::micros(-5));
}

TEST(TimePoint, ArithmeticWithDuration) {
  TimePoint t = TimePoint::origin() + Duration::seconds(10);
  EXPECT_EQ(t.micros_since_origin(), 10'000'000);
  EXPECT_EQ(t - Duration::seconds(4),
            TimePoint::origin() + Duration::seconds(6));
  EXPECT_EQ((t - TimePoint::origin()), Duration::seconds(10));
  EXPECT_DOUBLE_EQ(t.to_seconds(), 10.0);
}

TEST(TimeInterval, ContainsIsHalfOpen) {
  TimeInterval iv{TimePoint(100), TimePoint(200)};
  EXPECT_TRUE(iv.contains(TimePoint(100)));
  EXPECT_TRUE(iv.contains(TimePoint(199)));
  EXPECT_FALSE(iv.contains(TimePoint(200)));
  EXPECT_FALSE(iv.contains(TimePoint(99)));
}

TEST(TimeInterval, EmptyAndLength) {
  EXPECT_TRUE((TimeInterval{TimePoint(5), TimePoint(5)}).empty());
  EXPECT_TRUE((TimeInterval{TimePoint(6), TimePoint(5)}).empty());
  EXPECT_FALSE((TimeInterval{TimePoint(5), TimePoint(6)}).empty());
  EXPECT_EQ((TimeInterval{TimePoint(5), TimePoint(15)}).length(),
            Duration::micros(10));
}

TEST(TimeInterval, Overlaps) {
  TimeInterval a{TimePoint(0), TimePoint(10)};
  TimeInterval b{TimePoint(5), TimePoint(15)};
  TimeInterval c{TimePoint(10), TimePoint(20)};  // touches: no overlap
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_FALSE(c.overlaps(a));
}

TEST(TimeInterval, Intersection) {
  TimeInterval a{TimePoint(0), TimePoint(10)};
  TimeInterval b{TimePoint(5), TimePoint(15)};
  TimeInterval i = a.intersection(b);
  EXPECT_EQ(i.begin, TimePoint(5));
  EXPECT_EQ(i.end, TimePoint(10));
  TimeInterval disjoint{TimePoint(20), TimePoint(30)};
  EXPECT_TRUE(a.intersection(disjoint).empty());
}

TEST(TimeInterval, AllCoversEverything) {
  TimeInterval all = TimeInterval::all();
  EXPECT_TRUE(all.contains(TimePoint(0)));
  EXPECT_TRUE(all.contains(TimePoint(-1'000'000'000)));
  EXPECT_TRUE(all.contains(TimePoint(1'000'000'000'000)));
}

TEST(TimeTypes, Streaming) {
  std::ostringstream os;
  os << Duration::micros(42) << " " << TimePoint(7) << " "
     << TimeInterval{TimePoint(1), TimePoint(2)};
  EXPECT_EQ(os.str(), "42us t+7us [t+1us, t+2us)");
}

}  // namespace
}  // namespace stcn
