// Distributed continuous queries: the delta stream a cluster emits must
// replay to exactly the answer a snapshot query over the same region and
// window returns — for every partitioning strategy, including under
// incremental (windowed) ingest.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "baseline/broadcast_router.h"
#include "core/framework.h"
#include "partition/strategies.h"
#include "trace/generator.h"

namespace stcn {
namespace {

struct MonitorScenario {
  Trace trace;
  Rect world;

  MonitorScenario() {
    TraceConfig c;
    c.roads.grid_cols = 7;
    c.roads.grid_rows = 7;
    c.cameras.camera_count = 25;
    c.mobility.object_count = 20;
    c.duration = Duration::minutes(4);
    c.seed = 31337;
    trace = TraceGenerator::generate(c);
    world = trace.roads.bounds(120.0);
  }
};

enum class StrategyKind { kSpatial, kHash, kHybrid, kBroadcast };

std::unique_ptr<PartitionStrategy> make_strategy(StrategyKind kind,
                                                 const Rect& world,
                                                 const CameraNetwork& cams) {
  switch (kind) {
    case StrategyKind::kSpatial:
      return std::make_unique<SpatialGridStrategy>(world, 3, 3, cams);
    case StrategyKind::kHash:
      return std::make_unique<HashStrategy>(9);
    case StrategyKind::kHybrid: {
      HybridStrategy::Config config;
      config.tiles_x = 3;
      config.tiles_y = 3;
      config.hot_camera_threshold = 4;
      config.hot_split_factor = 2;
      return std::make_unique<HybridStrategy>(world, cams, config);
    }
    case StrategyKind::kBroadcast:
      return std::make_unique<BroadcastStrategy>(
          std::make_unique<SpatialGridStrategy>(world, 3, 3, cams));
  }
  return nullptr;
}

class DistributedMonitor : public ::testing::TestWithParam<StrategyKind> {};

TEST_P(DistributedMonitor, DeltaReplayEqualsSnapshotUnderWindowedIngest) {
  MonitorScenario s;
  ClusterConfig config;
  config.worker_count = 5;
  config.network.latency_jitter = Duration::zero();
  Cluster cluster(s.world,
                  make_strategy(GetParam(), s.world, s.trace.cameras),
                  config);

  QueryId monitor_id = cluster.next_query_id();
  Rect region = Rect::centered(s.world.center(), 350.0);
  Duration window = Duration::seconds(45);
  cluster.install_monitor({monitor_id, region, window});

  // Feed the stream in 30-second slices; after each slice, the live
  // answer replayed from deltas must equal the snapshot range query over
  // [now - window, now].
  std::set<std::uint64_t> replayed;
  std::size_t cursor = 0;
  for (int slice = 1; slice <= 8; ++slice) {
    TimePoint until = TimePoint::origin() + Duration::seconds(30 * slice);
    std::size_t begin = cursor;
    while (cursor < s.trace.detections.size() &&
           s.trace.detections[cursor].time < until) {
      ++cursor;
    }
    cluster.ingest_all(std::span<const Detection>(
        s.trace.detections.data() + begin, cursor - begin));
    // Let monitor ticks expire old entries and flush deltas; note this
    // advances the clock ~2 s past `until`.
    cluster.advance_time(Duration::seconds(2));
    TimePoint now = cluster.now();

    for (const DeltaUpdate& delta : cluster.drain_deltas(monitor_id)) {
      if (delta.positive) {
        ASSERT_TRUE(replayed.insert(delta.detection.id.value()).second);
      } else {
        ASSERT_EQ(replayed.erase(delta.detection.id.value()), 1u);
      }
    }

    // Snapshot truth brackets: workers expire entries on their 1 s monitor
    // tick, so the live set lags the instantaneous snapshot by at most one
    // tick. The replayed set must contain everything a strict snapshot at
    // `now` keeps, and nothing a snapshot one tick earlier would already
    // have dropped.
    auto snapshot_ids = [&](TimePoint horizon) {
      QueryResult r = cluster.execute(Query::range(
          cluster.next_query_id(), region, {horizon, TimePoint::max()}));
      std::set<std::uint64_t> ids;
      for (const Detection& d : r.detections) ids.insert(d.id.value());
      return ids;
    };
    std::set<std::uint64_t> strict = snapshot_ids(now - window);
    std::set<std::uint64_t> loose =
        snapshot_ids(now - window - Duration::seconds(1));
    for (std::uint64_t id : strict) {
      ASSERT_TRUE(replayed.contains(id))
          << "live set lost a current detection, slice " << slice;
    }
    for (std::uint64_t id : replayed) {
      ASSERT_TRUE(loose.contains(id))
          << "live set kept a detection expired for over a tick, slice "
          << slice;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, DistributedMonitor,
    ::testing::Values(StrategyKind::kSpatial, StrategyKind::kHash,
                      StrategyKind::kHybrid, StrategyKind::kBroadcast),
    [](const ::testing::TestParamInfo<StrategyKind>& info) {
      switch (info.param) {
        case StrategyKind::kSpatial: return std::string("Spatial");
        case StrategyKind::kHash: return std::string("Hash");
        case StrategyKind::kHybrid: return std::string("Hybrid");
        case StrategyKind::kBroadcast: return std::string("Broadcast");
      }
      return std::string("Unknown");
    });

TEST(DistributedMonitor, MultipleMonitorsIndependentStreams) {
  MonitorScenario s;
  ClusterConfig config;
  config.worker_count = 4;
  Cluster cluster(
      s.world,
      std::make_unique<SpatialGridStrategy>(s.world, 3, 3, s.trace.cameras),
      config);
  QueryId left = cluster.next_query_id();
  QueryId right = cluster.next_query_id();
  Rect left_region{{s.world.min.x, s.world.min.y},
                   {s.world.center().x, s.world.max.y}};
  Rect right_region{{s.world.center().x, s.world.min.y},
                    {s.world.max.x, s.world.max.y}};
  cluster.install_monitor({left, left_region, Duration::minutes(10)});
  cluster.install_monitor({right, right_region, Duration::minutes(10)});
  cluster.ingest_all(s.trace.detections);
  cluster.advance_time(Duration::seconds(3));

  auto left_answer = cluster.live_answer(left);
  auto right_answer = cluster.live_answer(right);
  // Every detection lands in exactly one half (regions partition space).
  EXPECT_EQ(left_answer.size() + right_answer.size(),
            s.trace.detections.size());
  for (const Detection& d : left_answer) {
    EXPECT_TRUE(left_region.contains(d.position));
  }
  for (const Detection& d : right_answer) {
    EXPECT_TRUE(right_region.contains(d.position));
  }
}

}  // namespace
}  // namespace stcn
