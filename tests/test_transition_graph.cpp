#include "reid/transition_graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "trace/generator.h"

namespace stcn {
namespace {

Detection det(std::uint64_t id, std::uint64_t camera, std::uint64_t object,
              std::int64_t t_seconds) {
  Detection d;
  d.id = DetectionId(id);
  d.camera = CameraId(camera);
  d.object = ObjectId(object);
  d.time = TimePoint(t_seconds * 1'000'000);
  return d;
}

TEST(TransitionEdge, StatsAccumulate) {
  TransitionGraph graph;
  graph.observe(CameraId(1), CameraId(2), Duration::seconds(10));
  graph.observe(CameraId(1), CameraId(2), Duration::seconds(20));
  graph.observe(CameraId(1), CameraId(2), Duration::seconds(30));
  const auto* edges = graph.edges_from(CameraId(1));
  ASSERT_NE(edges, nullptr);
  ASSERT_EQ(edges->size(), 1u);
  const TransitionEdge& e = (*edges)[0];
  EXPECT_EQ(e.to, CameraId(2));
  EXPECT_EQ(e.count, 3u);
  EXPECT_DOUBLE_EQ(e.mean_s, 20.0);
  EXPECT_DOUBLE_EQ(e.min_s, 10.0);
  EXPECT_DOUBLE_EQ(e.max_s, 30.0);
  EXPECT_NEAR(e.stddev_s(), 10.0, 1e-9);
}

TEST(TransitionEdge, PlausibleWindowCoversObservations) {
  TransitionGraph graph;
  for (int s : {8, 10, 12, 9, 11}) {
    graph.observe(CameraId(1), CameraId(2), Duration::seconds(s));
  }
  const TransitionEdge& e = (*graph.edges_from(CameraId(1)))[0];
  auto [lo, hi] = e.plausible_window_s(3.0, 2.0);
  EXPECT_LE(lo, 8.0);
  EXPECT_GE(hi, 12.0);
  EXPECT_GE(lo, 0.0);
}

TEST(TransitionEdge, LogLikelihoodPeaksAtMean) {
  TransitionGraph graph;
  for (int s : {10, 12, 14, 10, 14}) {
    graph.observe(CameraId(1), CameraId(2), Duration::seconds(s));
  }
  const TransitionEdge& e = (*graph.edges_from(CameraId(1)))[0];
  double at_mean = e.log_likelihood(12.0);
  EXPECT_GT(at_mean, e.log_likelihood(30.0));
  EXPECT_GT(at_mean, e.log_likelihood(1.0));
}

TEST(TransitionGraph, LearnsFromConsecutiveSightings) {
  TransitionGraph graph;
  std::vector<Detection> stream = {
      det(1, /*cam=*/1, /*obj=*/7, 0),
      det(2, 2, 7, 15),    // 1 → 2, 15 s
      det(3, 3, 7, 40),    // 2 → 3, 25 s
      det(4, 1, 8, 5),
      det(5, 2, 8, 22),    // 1 → 2, 17 s
  };
  graph.learn(stream);
  EXPECT_EQ(graph.edge_count(), 2u);
  const auto* from1 = graph.edges_from(CameraId(1));
  ASSERT_NE(from1, nullptr);
  ASSERT_EQ(from1->size(), 1u);
  EXPECT_EQ((*from1)[0].count, 2u);
  EXPECT_DOUBLE_EQ((*from1)[0].mean_s, 16.0);
}

TEST(TransitionGraph, LearnIgnoresSameCameraAndLongGaps) {
  TransitionGraph graph;
  std::vector<Detection> stream = {
      det(1, 1, 7, 0),
      det(2, 1, 7, 5),     // same camera: ignored
      det(3, 2, 7, 500),   // gap > max_gap (3 min): ignored
  };
  graph.learn(stream);
  EXPECT_EQ(graph.edge_count(), 0u);
}

TEST(TransitionGraph, ConeRespectsHopLimit) {
  TransitionGraph graph;
  // Chain 1 → 2 → 3 → 4, each 10 s, seen often.
  for (int i = 0; i < 5; ++i) {
    graph.observe(CameraId(1), CameraId(2), Duration::seconds(10));
    graph.observe(CameraId(2), CameraId(3), Duration::seconds(10));
    graph.observe(CameraId(3), CameraId(4), Duration::seconds(10));
  }
  TransitionGraph::ConeParams params;
  params.max_hops = 2;
  TimeInterval horizon{TimePoint(0), TimePoint(600'000'000)};
  auto cone = graph.cone(CameraId(1), TimePoint(0), horizon, params);
  std::set<std::uint64_t> cams;
  for (const ConeEntry& e : cone) cams.insert(e.camera.value());
  EXPECT_EQ(cams, (std::set<std::uint64_t>{2, 3}));
  for (const ConeEntry& e : cone) {
    EXPECT_LE(e.hops, 2u);
  }
}

TEST(TransitionGraph, ConeWindowsShiftWithHops) {
  TransitionGraph graph;
  for (int i = 0; i < 5; ++i) {
    graph.observe(CameraId(1), CameraId(2), Duration::seconds(10));
    graph.observe(CameraId(2), CameraId(3), Duration::seconds(10));
  }
  TransitionGraph::ConeParams params;
  params.max_hops = 2;
  params.slack_s = 1.0;
  TimeInterval horizon{TimePoint(0), TimePoint(600'000'000)};
  auto cone = graph.cone(CameraId(1), TimePoint(0), horizon, params);
  ASSERT_EQ(cone.size(), 2u);
  const ConeEntry* at2 = nullptr;
  const ConeEntry* at3 = nullptr;
  for (const ConeEntry& e : cone) {
    if (e.camera == CameraId(2)) at2 = &e;
    if (e.camera == CameraId(3)) at3 = &e;
  }
  ASSERT_NE(at2, nullptr);
  ASSERT_NE(at3, nullptr);
  // Two hops start later than one hop.
  EXPECT_GT(at3->window.begin, at2->window.begin);
  // One hop of ~10 s: window should start near 9 s, not at 0.
  EXPECT_GT(at2->window.begin, TimePoint(4'000'000));
}

TEST(TransitionGraph, ConeClippedByHorizon) {
  TransitionGraph graph;
  for (int i = 0; i < 5; ++i) {
    graph.observe(CameraId(1), CameraId(2), Duration::seconds(100));
  }
  TransitionGraph::ConeParams params;
  // Horizon ends before any plausible arrival: empty cone.
  TimeInterval horizon{TimePoint(0), TimePoint(10'000'000)};
  auto cone = graph.cone(CameraId(1), TimePoint(0), horizon, params);
  EXPECT_TRUE(cone.empty());
}

TEST(TransitionGraph, RareEdgesFilteredByMinCount) {
  TransitionGraph graph;
  graph.observe(CameraId(1), CameraId(2), Duration::seconds(10));  // once
  for (int i = 0; i < 5; ++i) {
    graph.observe(CameraId(1), CameraId(3), Duration::seconds(10));
  }
  TransitionGraph::ConeParams params;
  params.min_edge_count = 2;
  TimeInterval horizon{TimePoint(0), TimePoint(600'000'000)};
  auto cone = graph.cone(CameraId(1), TimePoint(0), horizon, params);
  ASSERT_EQ(cone.size(), 1u);
  EXPECT_EQ(cone[0].camera, CameraId(3));
}

TEST(TransitionGraph, ConeFromUnknownCameraIsEmpty) {
  TransitionGraph graph;
  graph.observe(CameraId(1), CameraId(2), Duration::seconds(10));
  TransitionGraph::ConeParams params;
  auto cone = graph.cone(CameraId(99), TimePoint(0), TimeInterval::all(),
                         params);
  EXPECT_TRUE(cone.empty());
}

TEST(TransitionGraph, LearnedFromTraceCoversTrueTransitions) {
  // On a generated trace, the cone from a probe camera must include the
  // camera where the object truly reappears (for reasonable parameters).
  TraceConfig tc;
  tc.roads.grid_cols = 8;
  tc.roads.grid_rows = 8;
  tc.cameras.camera_count = 30;
  tc.mobility.object_count = 40;
  tc.duration = Duration::minutes(8);
  Trace trace = TraceGenerator::generate(tc);
  TransitionGraph graph;
  graph.learn(trace.detections);
  ASSERT_GT(graph.edge_count(), 0u);

  TransitionGraph::ConeParams params;
  params.max_hops = 2;
  params.min_edge_count = 2;

  // Evaluate recall of the cone against actual next sightings.
  std::size_t total = 0;
  std::size_t covered = 0;
  std::unordered_map<ObjectId, const Detection*> last;
  for (const Detection& d : trace.detections) {
    auto it = last.find(d.object);
    if (it != last.end() && it->second->camera != d.camera &&
        d.time - it->second->time <= Duration::minutes(2)) {
      const Detection& prev = *it->second;
      auto cone = graph.cone(prev.camera, prev.time,
                             {prev.time, prev.time + Duration::minutes(3)},
                             params);
      ++total;
      for (const ConeEntry& e : cone) {
        if (e.camera == d.camera && e.window.contains(d.time)) {
          ++covered;
          break;
        }
      }
    }
    last[d.object] = &d;
  }
  ASSERT_GT(total, 20u);
  EXPECT_GT(static_cast<double>(covered) / static_cast<double>(total), 0.7)
      << "cone recall too low: " << covered << "/" << total;
}

}  // namespace
}  // namespace stcn
