#include "net/sim_network.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/failure.h"

namespace stcn {
namespace {

/// Records everything it receives.
class RecorderNode final : public NetworkNode {
 public:
  explicit RecorderNode(NodeId id) : id_(id) {}
  [[nodiscard]] NodeId node_id() const override { return id_; }

  void handle_message(const Message& message, SimNetwork& network) override {
    received.push_back(message);
    received_at.push_back(network.now());
  }
  void handle_timer(std::uint64_t token, SimNetwork& network) override {
    timer_tokens.push_back(token);
    timer_at.push_back(network.now());
  }

  std::vector<Message> received;
  std::vector<TimePoint> received_at;
  std::vector<std::uint64_t> timer_tokens;
  std::vector<TimePoint> timer_at;

 private:
  NodeId id_;
};

NetworkConfig quiet_config() {
  NetworkConfig c;
  c.latency_jitter = Duration::zero();
  return c;
}

TEST(SimNetwork, DeliversMessageWithLatency) {
  SimNetwork net(quiet_config());
  RecorderNode a(NodeId(1));
  RecorderNode b(NodeId(2));
  net.attach(a);
  net.attach(b);

  net.send({NodeId(1), NodeId(2), 7, {1, 2, 3}, {}, {}});
  EXPECT_TRUE(b.received.empty());  // nothing until the loop runs
  net.run_until_idle();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].type, 7u);
  EXPECT_EQ(b.received[0].payload, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_GE(b.received_at[0], TimePoint::origin() + net.config().base_latency);
}

TEST(SimNetwork, FifoOrderPreservedForEqualSizes) {
  SimNetwork net(quiet_config());
  RecorderNode a(NodeId(1));
  RecorderNode b(NodeId(2));
  net.attach(a);
  net.attach(b);
  for (std::uint32_t i = 0; i < 10; ++i) {
    net.send({NodeId(1), NodeId(2), i, {}, {}, {}});
  }
  net.run_until_idle();
  ASSERT_EQ(b.received.size(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(b.received[i].type, i);
  }
}

TEST(SimNetwork, LargerMessagesTakeLonger) {
  NetworkConfig config = quiet_config();
  config.bandwidth_bytes_per_sec = 1e6;  // slow link: 1 MB/s
  SimNetwork net(config);
  RecorderNode b(NodeId(2));
  net.attach(b);

  Message small{NodeId(1), NodeId(2), 1, std::vector<std::uint8_t>(10), {}, {}};
  Message large{NodeId(1), NodeId(2), 2,
                std::vector<std::uint8_t>(1'000'000), {}, {}};
  net.send(large);
  net.send(small);
  net.run_until_idle();
  ASSERT_EQ(b.received.size(), 2u);
  // The small message, although sent second, arrives first.
  EXPECT_EQ(b.received[0].type, 1u);
  EXPECT_EQ(b.received[1].type, 2u);
  EXPECT_GT(b.received_at[1] - b.received_at[0], Duration::millis(500));
}

TEST(SimNetwork, CountersAccountBytesAndMessages) {
  SimNetwork net(quiet_config());
  RecorderNode b(NodeId(2));
  net.attach(b);
  net.send({NodeId(1), NodeId(2), 0, std::vector<std::uint8_t>(100), {}, {}});
  net.run_until_idle();
  EXPECT_EQ(net.counters().get("messages_sent"), 1u);
  EXPECT_EQ(net.counters().get("messages_delivered"), 1u);
  EXPECT_EQ(net.counters().get("bytes_sent"), 142u);  // payload + envelope
}

TEST(SimNetwork, CrashedNodeDropsMessages) {
  SimNetwork net(quiet_config());
  RecorderNode b(NodeId(2));
  net.attach(b);
  net.crash(NodeId(2));
  EXPECT_TRUE(net.is_crashed(NodeId(2)));
  net.send({NodeId(1), NodeId(2), 0, {}, {}, {}});
  net.run_until_idle();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.counters().get("messages_dropped_crashed"), 1u);

  net.restart(NodeId(2));
  net.send({NodeId(1), NodeId(2), 0, {}, {}, {}});
  net.run_until_idle();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(SimNetwork, InFlightMessageLostWhenDestinationCrashesBeforeDelivery) {
  SimNetwork net(quiet_config());
  RecorderNode b(NodeId(2));
  net.attach(b);
  net.send({NodeId(1), NodeId(2), 0, {}, {}, {}});
  net.crash(NodeId(2));  // crash while the message is in flight
  net.run_until_idle();
  EXPECT_TRUE(b.received.empty());
}

TEST(SimNetwork, UnknownDestinationCounted) {
  SimNetwork net(quiet_config());
  net.send({NodeId(1), NodeId(99), 0, {}, {}, {}});
  net.run_until_idle();
  EXPECT_EQ(net.counters().get("messages_dropped_unknown_node"), 1u);
}

TEST(SimNetwork, DropProbabilityLosesMessages) {
  NetworkConfig config = quiet_config();
  config.drop_probability = 1.0;
  SimNetwork net(config);
  RecorderNode b(NodeId(2));
  net.attach(b);
  for (int i = 0; i < 10; ++i) net.send({NodeId(1), NodeId(2), 0, {}, {}, {}});
  net.run_until_idle();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.counters().get("messages_dropped_fabric"), 10u);
}

TEST(SimNetwork, TimersFireAtRequestedTime) {
  SimNetwork net(quiet_config());
  RecorderNode a(NodeId(1));
  net.attach(a);
  net.set_timer(NodeId(1), Duration::seconds(5), 42);
  net.set_timer(NodeId(1), Duration::seconds(1), 7);
  net.run_until_idle();
  ASSERT_EQ(a.timer_tokens.size(), 2u);
  EXPECT_EQ(a.timer_tokens[0], 7u);
  EXPECT_EQ(a.timer_tokens[1], 42u);
  EXPECT_EQ(a.timer_at[0], TimePoint::origin() + Duration::seconds(1));
  EXPECT_EQ(a.timer_at[1], TimePoint::origin() + Duration::seconds(5));
}

TEST(SimNetwork, CrashedNodeTimersSuppressed) {
  SimNetwork net(quiet_config());
  RecorderNode a(NodeId(1));
  net.attach(a);
  net.set_timer(NodeId(1), Duration::seconds(1), 1);
  net.crash(NodeId(1));
  net.run_until_idle();
  EXPECT_TRUE(a.timer_tokens.empty());
}

TEST(SimNetwork, RunUntilRespectsDeadline) {
  SimNetwork net(quiet_config());
  RecorderNode a(NodeId(1));
  net.attach(a);
  net.set_timer(NodeId(1), Duration::seconds(10), 1);
  net.run_until(TimePoint::origin() + Duration::seconds(5));
  EXPECT_TRUE(a.timer_tokens.empty());
  EXPECT_EQ(net.now(), TimePoint::origin() + Duration::seconds(5));
  net.run_until(TimePoint::origin() + Duration::seconds(20));
  EXPECT_EQ(a.timer_tokens.size(), 1u);
}

TEST(SimNetwork, StepProcessesOneEvent) {
  SimNetwork net(quiet_config());
  RecorderNode a(NodeId(1));
  net.attach(a);
  net.set_timer(NodeId(1), Duration::seconds(1), 1);
  net.set_timer(NodeId(1), Duration::seconds(2), 2);
  EXPECT_TRUE(net.step());
  EXPECT_EQ(a.timer_tokens.size(), 1u);
  EXPECT_TRUE(net.step());
  EXPECT_EQ(a.timer_tokens.size(), 2u);
  EXPECT_FALSE(net.step());
}

TEST(SimNetwork, DeterministicAcrossRuns) {
  auto run = [] {
    NetworkConfig config;
    config.seed = 7;
    config.latency_jitter = Duration::micros(100);
    SimNetwork net(config);
    RecorderNode b(NodeId(2));
    net.attach(b);
    for (int i = 0; i < 50; ++i) {
      net.send({NodeId(1), NodeId(2), static_cast<std::uint32_t>(i),
                std::vector<std::uint8_t>(static_cast<std::size_t>(i)), {}, {}});
    }
    net.run_until_idle();
    std::vector<std::int64_t> times;
    for (TimePoint t : b.received_at) times.push_back(t.micros_since_origin());
    return times;
  };
  EXPECT_EQ(run(), run());
}

TEST(SimNetwork, PartitionCutsBothDirectionsUntilHealed) {
  SimNetwork net(quiet_config());
  RecorderNode a(NodeId(1));
  RecorderNode b(NodeId(2));
  RecorderNode c(NodeId(3));
  net.attach(a);
  net.attach(b);
  net.attach(c);

  net.partition({NodeId(1)}, {NodeId(2)});
  EXPECT_TRUE(net.partitioned(NodeId(1), NodeId(2)));
  EXPECT_TRUE(net.partitioned(NodeId(2), NodeId(1)));
  EXPECT_FALSE(net.partitioned(NodeId(1), NodeId(3)));

  net.send({NodeId(1), NodeId(2), 0, {}, {}, {}});
  net.send({NodeId(2), NodeId(1), 0, {}, {}, {}});
  net.send({NodeId(1), NodeId(3), 0, {}, {}, {}});  // unaffected pair
  net.run_until_idle();
  EXPECT_TRUE(a.received.empty());
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(c.received.size(), 1u);
  EXPECT_EQ(net.counters().get("messages_dropped_partition"), 2u);

  net.heal();
  net.send({NodeId(1), NodeId(2), 0, {}, {}, {}});
  net.run_until_idle();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(SimNetwork, PartitionCutsMessageInFlight) {
  // A message already in flight when the partition forms is lost too: the
  // cut is checked again at delivery time.
  SimNetwork net(quiet_config());
  RecorderNode b(NodeId(2));
  net.attach(b);
  net.send({NodeId(1), NodeId(2), 0, {}, {}, {}});
  net.partition({NodeId(1)}, {NodeId(2)});
  net.run_until_idle();
  EXPECT_TRUE(b.received.empty());
}

TEST(SimNetwork, PartitionsStack) {
  SimNetwork net(quiet_config());
  net.partition({NodeId(1)}, {NodeId(2)});
  net.partition({NodeId(1)}, {NodeId(3)});
  EXPECT_EQ(net.active_partitions(), 2u);
  EXPECT_TRUE(net.partitioned(NodeId(1), NodeId(2)));
  EXPECT_TRUE(net.partitioned(NodeId(1), NodeId(3)));
  EXPECT_FALSE(net.partitioned(NodeId(2), NodeId(3)));
  net.heal();
  EXPECT_EQ(net.active_partitions(), 0u);
}

TEST(SimNetwork, DuplicateProbabilityDeliversTwice) {
  NetworkConfig config = quiet_config();
  config.duplicate_probability = 1.0;
  SimNetwork net(config);
  RecorderNode b(NodeId(2));
  net.attach(b);
  for (int i = 0; i < 5; ++i) net.send({NodeId(1), NodeId(2), 0, {}, {}, {}});
  net.run_until_idle();
  EXPECT_EQ(b.received.size(), 10u);
  EXPECT_EQ(net.counters().get("messages_duplicated"), 5u);
  EXPECT_EQ(net.counters().get("messages_delivered"), 10u);
}

TEST(SimNetwork, LinkOverrideDropAndLatency) {
  SimNetwork net(quiet_config());
  RecorderNode b(NodeId(2));
  RecorderNode c(NodeId(3));
  net.attach(b);
  net.attach(c);

  // Directed override: 1→2 always drops; 2→1 unaffected.
  net.set_link(NodeId(1), NodeId(2), {.drop_probability = 1.0});
  net.send({NodeId(1), NodeId(2), 0, {}, {}, {}});
  net.run_until_idle();
  EXPECT_TRUE(b.received.empty());
  net.clear_link(NodeId(1), NodeId(2));

  // Latency shaping: +10ms extra on 1→3.
  net.set_link(NodeId(1), NodeId(3),
               {.extra_latency = Duration::millis(10)});
  net.send({NodeId(1), NodeId(3), 0, {}, {}, {}});
  net.send({NodeId(1), NodeId(2), 0, {}, {}, {}});
  net.run_until_idle();
  ASSERT_EQ(c.received.size(), 1u);
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_GT(c.received_at[0] - b.received_at[0], Duration::millis(9));
}

TEST(SimNetwork, SlowNodeDelaysTrafficBothWays) {
  SimNetwork net(quiet_config());
  RecorderNode a(NodeId(1));
  RecorderNode b(NodeId(2));
  RecorderNode c(NodeId(3));
  net.attach(a);
  net.attach(b);
  net.attach(c);

  net.set_slow(NodeId(2), 100.0);
  EXPECT_TRUE(net.is_slow(NodeId(2)));
  net.send({NodeId(1), NodeId(2), 0, {}, {}, {}});  // into the slow node
  net.send({NodeId(2), NodeId(3), 0, {}, {}, {}});  // out of the slow node
  net.send({NodeId(1), NodeId(3), 0, {}, {}, {}});  // healthy pair
  net.run_until_idle();
  ASSERT_EQ(b.received.size(), 1u);
  ASSERT_EQ(c.received.size(), 2u);
  // Healthy-pair delivery is ~base_latency; slow-node traffic is ~100x.
  Duration healthy = c.received_at[0] - TimePoint::origin();
  EXPECT_GT(b.received_at[0] - TimePoint::origin(), healthy * 50.0);

  net.clear_slow(NodeId(2));
  EXPECT_FALSE(net.is_slow(NodeId(2)));
}

TEST(SimNetwork, ParkedTimersResumeOnRestart) {
  SimNetwork net(quiet_config());
  RecorderNode a(NodeId(1));
  net.attach(a);
  net.set_timer(NodeId(1), Duration::seconds(1), 77);
  net.crash(NodeId(1));
  net.run_until(TimePoint::origin() + Duration::seconds(5));
  EXPECT_TRUE(a.timer_tokens.empty());
  EXPECT_EQ(net.counters().get("timers_parked"), 1u);

  net.restart(NodeId(1));
  net.run_until_idle();
  ASSERT_EQ(a.timer_tokens.size(), 1u);
  EXPECT_EQ(a.timer_tokens[0], 77u);
  // Fired at restart time (its original due time had already passed).
  EXPECT_GE(a.timer_at[0], TimePoint::origin() + Duration::seconds(5));
  EXPECT_EQ(net.counters().get("timers_resumed"), 1u);
}

TEST(FailureSchedule, AppliesInOrder) {
  SimNetwork net(quiet_config());
  RecorderNode a(NodeId(1));
  net.attach(a);
  FailureSchedule schedule;
  schedule.add_crash(TimePoint(100), NodeId(1));
  schedule.add_restart(TimePoint(200), NodeId(1));

  auto fired = schedule.apply_until(TimePoint(150), net);
  EXPECT_EQ(fired.size(), 1u);
  EXPECT_TRUE(net.is_crashed(NodeId(1)));

  fired = schedule.apply_until(TimePoint(300), net);
  EXPECT_EQ(fired.size(), 1u);
  EXPECT_FALSE(net.is_crashed(NodeId(1)));
  EXPECT_TRUE(schedule.exhausted());
}

TEST(FailureSchedule, RandomScheduleRespectsWindowAndCount) {
  Rng rng(3);
  std::vector<NodeId> nodes{NodeId(1), NodeId(2), NodeId(3), NodeId(4)};
  TimeInterval window{TimePoint(1000), TimePoint(2000)};
  FailureSchedule schedule = FailureSchedule::random(
      rng, nodes, 3, window, Duration::micros(50));
  std::size_t crashes = 0;
  for (const FailureEvent& e : schedule.events()) {
    if (e.kind == FailureEvent::Kind::kCrash) {
      ++crashes;
      EXPECT_TRUE(window.contains(e.at));
    }
  }
  EXPECT_EQ(crashes, 3u);
  EXPECT_EQ(schedule.events().size(), 6u);  // crash + restart each
}

TEST(FailureSchedule, RandomWithNoCandidatesIsEmpty) {
  Rng rng(3);
  FailureSchedule schedule = FailureSchedule::random(
      rng, {}, 3, {TimePoint(1000), TimePoint(2000)}, Duration::micros(50));
  EXPECT_TRUE(schedule.events().empty());
  EXPECT_TRUE(schedule.exhausted());
}

TEST(FailureSchedule, RandomWithZeroLengthWindowPinsEventsToStart) {
  Rng rng(3);
  std::vector<NodeId> nodes{NodeId(1), NodeId(2)};
  TimeInterval window{TimePoint(1000), TimePoint(1000)};
  FailureSchedule schedule = FailureSchedule::random(
      rng, nodes, 2, window, Duration::micros(50));
  std::size_t crashes = 0;
  for (const FailureEvent& e : schedule.events()) {
    if (e.kind == FailureEvent::Kind::kCrash) {
      ++crashes;
      EXPECT_EQ(e.at, TimePoint(1000));
    }
  }
  EXPECT_EQ(crashes, 2u);
}

}  // namespace
}  // namespace stcn
