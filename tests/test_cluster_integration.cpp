// End-to-end integration: the distributed cluster must give exactly the
// same answers as the centralized baseline on a full generated trace, for
// every query kind and every partitioning strategy.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "baseline/broadcast_router.h"
#include "baseline/centralized.h"
#include "core/framework.h"
#include "partition/strategies.h"
#include "trace/generator.h"

namespace stcn {
namespace {

struct Scenario {
  Trace trace;
  Rect world;
  CentralizedIndex oracle;

  Scenario()
      : trace(TraceGenerator::generate([] {
          TraceConfig c;
          c.roads.grid_cols = 8;
          c.roads.grid_rows = 8;
          c.cameras.camera_count = 30;
          c.mobility.object_count = 25;
          c.duration = Duration::minutes(5);
          c.seed = 1234;
          return c;
        }())),
        world(trace.roads.bounds(120.0)),
        oracle(world) {
    oracle.ingest_all(trace.detections);
  }
};

// Shared across tests: generating the trace once keeps the suite fast.
Scenario& scenario() {
  static Scenario s;
  return s;
}

std::set<std::uint64_t> ids_of(const QueryResult& r) {
  std::set<std::uint64_t> ids;
  for (const Detection& d : r.detections) ids.insert(d.id.value());
  return ids;
}

enum class StrategyKind { kSpatial, kHash, kTemporal, kHybrid, kBroadcast };

std::unique_ptr<PartitionStrategy> make_strategy(StrategyKind kind,
                                                 const Rect& world,
                                                 const CameraNetwork& cams) {
  switch (kind) {
    case StrategyKind::kSpatial:
      return std::make_unique<SpatialGridStrategy>(world, 3, 3, cams);
    case StrategyKind::kHash:
      return std::make_unique<HashStrategy>(9);
    case StrategyKind::kTemporal:
      return std::make_unique<TemporalStrategy>(9, Duration::minutes(1));
    case StrategyKind::kHybrid: {
      HybridStrategy::Config config;
      config.tiles_x = 3;
      config.tiles_y = 3;
      config.hot_camera_threshold = 4;
      config.hot_split_factor = 2;
      return std::make_unique<HybridStrategy>(world, cams, config);
    }
    case StrategyKind::kBroadcast:
      return std::make_unique<BroadcastStrategy>(
          std::make_unique<SpatialGridStrategy>(world, 3, 3, cams));
  }
  return nullptr;
}

class DistributedEqualsCentralized
    : public ::testing::TestWithParam<StrategyKind> {
 protected:
  DistributedEqualsCentralized() {
    Scenario& s = scenario();
    ClusterConfig config;
    config.worker_count = 5;
    config.network.latency_jitter = Duration::zero();
    cluster_ = std::make_unique<Cluster>(
        s.world, make_strategy(GetParam(), s.world, s.trace.cameras), config);
    cluster_->ingest_all(s.trace.detections);
  }

  std::unique_ptr<Cluster> cluster_;
};

TEST_P(DistributedEqualsCentralized, RangeQueries) {
  Scenario& s = scenario();
  Rng rng(42);
  for (int trial = 0; trial < 15; ++trial) {
    Rect region = Rect::centered(
        {rng.uniform(s.world.min.x, s.world.max.x),
         rng.uniform(s.world.min.y, s.world.max.y)},
        rng.uniform(20.0, 400.0));
    TimeInterval interval{
        TimePoint(rng.uniform_int(0, 150'000'000)),
        TimePoint(rng.uniform_int(150'000'000, 300'000'000))};
    Query q = Query::range(cluster_->next_query_id(), region, interval);
    QueryResult distributed = cluster_->execute(q);
    QueryResult central = s.oracle.execute(q);
    ASSERT_EQ(ids_of(distributed), ids_of(central)) << "trial " << trial;
  }
}

TEST_P(DistributedEqualsCentralized, CircleQueries) {
  Scenario& s = scenario();
  Rng rng(43);
  for (int trial = 0; trial < 10; ++trial) {
    Circle circle{{rng.uniform(s.world.min.x, s.world.max.x),
                   rng.uniform(s.world.min.y, s.world.max.y)},
                  rng.uniform(10.0, 200.0)};
    Query q = Query::circle_query(cluster_->next_query_id(), circle,
                                  TimeInterval::all());
    ASSERT_EQ(ids_of(cluster_->execute(q)), ids_of(s.oracle.execute(q)));
  }
}

TEST_P(DistributedEqualsCentralized, KnnQueries) {
  Scenario& s = scenario();
  Rng rng(44);
  for (int trial = 0; trial < 10; ++trial) {
    Point center{rng.uniform(s.world.min.x, s.world.max.x),
                 rng.uniform(s.world.min.y, s.world.max.y)};
    auto k = static_cast<std::uint32_t>(1 + rng.uniform_index(15));
    Query q = Query::knn(cluster_->next_query_id(), center, k,
                         TimeInterval::all());
    QueryResult distributed = cluster_->execute(q);
    QueryResult central = s.oracle.execute(q);
    ASSERT_EQ(distributed.detections.size(), central.detections.size());
    // Distances must agree rank by rank (ids may differ on exact ties).
    for (std::size_t i = 0; i < distributed.detections.size(); ++i) {
      ASSERT_NEAR(distance(distributed.detections[i].position, center),
                  distance(central.detections[i].position, center), 1e-9);
    }
  }
}

TEST_P(DistributedEqualsCentralized, TrajectoryQueries) {
  Scenario& s = scenario();
  for (std::uint64_t obj = 1; obj <= 10; ++obj) {
    Query q = Query::trajectory(cluster_->next_query_id(), ObjectId(obj),
                                TimeInterval::all());
    ASSERT_EQ(ids_of(cluster_->execute(q)), ids_of(s.oracle.execute(q)));
  }
}

TEST_P(DistributedEqualsCentralized, CountQueries) {
  Scenario& s = scenario();
  Rng rng(45);
  for (int trial = 0; trial < 10; ++trial) {
    Rect region = Rect::centered(
        {rng.uniform(s.world.min.x, s.world.max.x),
         rng.uniform(s.world.min.y, s.world.max.y)},
        rng.uniform(50.0, 500.0));
    Query q = Query::count(cluster_->next_query_id(), region,
                           TimeInterval::all(), GroupBy::kCamera);
    QueryResult distributed = cluster_->execute(q);
    QueryResult central = s.oracle.execute(q);
    ASSERT_EQ(distributed.counts, central.counts);
  }
}

TEST_P(DistributedEqualsCentralized, CameraWindowQueries) {
  Scenario& s = scenario();
  for (std::uint64_t cam = 1; cam <= 10; ++cam) {
    Query q = Query::camera_window(
        cluster_->next_query_id(), CameraId(cam),
        {TimePoint(0), TimePoint(200'000'000)});
    ASSERT_EQ(ids_of(cluster_->execute(q)), ids_of(s.oracle.execute(q)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, DistributedEqualsCentralized,
    ::testing::Values(StrategyKind::kSpatial, StrategyKind::kHash,
                      StrategyKind::kTemporal, StrategyKind::kHybrid,
                      StrategyKind::kBroadcast),
    [](const ::testing::TestParamInfo<StrategyKind>& info) {
      switch (info.param) {
        case StrategyKind::kSpatial: return std::string("Spatial");
        case StrategyKind::kHash: return std::string("Hash");
        case StrategyKind::kTemporal: return std::string("Temporal");
        case StrategyKind::kHybrid: return std::string("Hybrid");
        case StrategyKind::kBroadcast: return std::string("Broadcast");
      }
      return std::string("Unknown");
    });

TEST(ClusterIntegration, DistributedReidMatchesLocalReid) {
  Scenario& s = scenario();
  ClusterConfig config;
  config.worker_count = 4;
  config.network.latency_jitter = Duration::zero();
  Cluster cluster(
      s.world,
      std::make_unique<SpatialGridStrategy>(s.world, 3, 3, s.trace.cameras),
      config);
  cluster.ingest_all(s.trace.detections);

  TransitionGraph graph;
  graph.learn(s.trace.detections);
  ReidParams params;
  params.cone.min_edge_count = 2;
  ReidEngine engine(graph, params);

  DistributedCandidateSource remote(cluster, s.trace.cameras);
  LocalCandidateSource local(s.oracle, s.trace.cameras);

  std::size_t compared = 0;
  for (std::size_t i = 0; i < s.trace.detections.size() && compared < 10;
       i += 97) {
    const Detection& probe = s.trace.detections[i];
    TimeInterval horizon{probe.time, probe.time + Duration::minutes(2)};
    ReidOutcome via_cluster = engine.find_matches(probe, horizon, remote);
    ReidOutcome via_local = engine.find_matches(probe, horizon, local);
    ASSERT_EQ(via_cluster.matches.size(), via_local.matches.size());
    for (std::size_t m = 0; m < via_cluster.matches.size(); ++m) {
      ASSERT_EQ(via_cluster.matches[m].detection.id,
                via_local.matches[m].detection.id);
    }
    ++compared;
  }
  EXPECT_GT(compared, 0u);
}

TEST(ClusterIntegration, NetworkBytesAccounted) {
  Scenario& s = scenario();
  ClusterConfig config;
  config.worker_count = 4;
  Cluster cluster(
      s.world,
      std::make_unique<SpatialGridStrategy>(s.world, 3, 3, s.trace.cameras),
      config);
  cluster.ingest_all(s.trace.detections);
  const CounterSet& counters = cluster.network().counters();
  EXPECT_GT(counters.get("messages_sent"), 0u);
  EXPECT_GT(counters.get("bytes_sent"),
            s.trace.detections.size() * 50)
      << "every detection crosses the wire at least once";
}

}  // namespace
}  // namespace stcn
