// Reliable channel: exactly-once delivery over a faulty fabric, and the
// end-to-end behaviours it enables — lossless ingest under drops, hedged
// queries masking gray failures, and heartbeat resumption after restarts.
#include "net/reliable_channel.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "baseline/centralized.h"
#include "core/framework.h"
#include "partition/strategies.h"
#include "trace/generator.h"

namespace stcn {
namespace {

// ------------------------------------------------------------- unit layer

/// Endpoint with a channel: unwraps DATA frames, records inner messages.
class ChannelNode final : public NetworkNode {
 public:
  explicit ChannelNode(NodeId id, ReliableChannelConfig config = {})
      : id_(id), channel_(id, counters_, config) {}

  [[nodiscard]] NodeId node_id() const override { return id_; }

  void handle_message(const Message& message, SimNetwork& network) override {
    if (message.type == 12) {
      if (auto inner = channel_.on_data(message, network)) {
        delivered.push_back(*inner);
      }
      return;
    }
    if (message.type == 13) {
      channel_.on_ack(message);
      return;
    }
  }

  void handle_timer(std::uint64_t token, SimNetwork& network) override {
    if (channel_.owns_timer(token)) channel_.handle_timer(token, network);
  }

  ReliableChannel& channel() { return channel_; }
  const CounterSet& counters() const { return counters_; }

  std::vector<Message> delivered;

 private:
  NodeId id_;
  CounterSet counters_;
  ReliableChannel channel_;
};

TEST(ReliableChannel, DeliversExactlyOnceUnderHeavyLoss) {
  NetworkConfig nc;
  nc.drop_probability = 0.5;
  nc.seed = 11;
  SimNetwork net(nc);
  ChannelNode a(NodeId(1));
  ChannelNode b(NodeId(2));
  net.attach(a);
  net.attach(b);

  for (std::uint8_t i = 0; i < 50; ++i) {
    a.channel().send(NodeId(2), 100 + i, {i}, net);
  }
  net.run_until_idle();

  ASSERT_EQ(b.delivered.size(), 50u);
  std::set<std::uint32_t> types;
  for (const Message& m : b.delivered) types.insert(m.type);
  EXPECT_EQ(types.size(), 50u);  // no duplicates reached the application
  EXPECT_EQ(a.channel().unacked(), 0u);
  EXPECT_GT(a.counters().get("retransmits"), 0u);
}

TEST(ReliableChannel, FabricDuplicationSuppressed) {
  NetworkConfig nc;
  nc.latency_jitter = Duration::zero();
  nc.duplicate_probability = 1.0;
  SimNetwork net(nc);
  ChannelNode a(NodeId(1));
  ChannelNode b(NodeId(2));
  net.attach(a);
  net.attach(b);

  for (std::uint8_t i = 0; i < 10; ++i) {
    a.channel().send(NodeId(2), 100 + i, {i}, net);
  }
  net.run_until_idle();

  EXPECT_EQ(b.delivered.size(), 10u);
  EXPECT_GT(b.counters().get("dup_suppressed"), 0u);
  EXPECT_EQ(a.channel().unacked(), 0u);
}

TEST(ReliableChannel, ResetRotatesEpochSoPeerAcceptsNewStream) {
  NetworkConfig nc;
  nc.latency_jitter = Duration::zero();
  SimNetwork net(nc);
  ChannelNode a(NodeId(1));
  ChannelNode b(NodeId(2));
  net.attach(a);
  net.attach(b);

  a.channel().send(NodeId(2), 100, {1}, net);
  a.channel().send(NodeId(2), 101, {2}, net);
  net.run_until_idle();
  ASSERT_EQ(b.delivered.size(), 2u);

  // Crash-restart of the sender: sequence numbers restart at 1. Without
  // the epoch, B's dedup watermark (contiguous=2) would silently eat the
  // first two post-restart frames.
  a.channel().reset();
  a.channel().send(NodeId(2), 102, {3}, net);
  a.channel().send(NodeId(2), 103, {4}, net);
  net.run_until_idle();
  ASSERT_EQ(b.delivered.size(), 4u);
  EXPECT_EQ(b.delivered[2].type, 102u);
  EXPECT_EQ(b.delivered[3].type, 103u);
}

TEST(ReliableChannel, GivesUpAfterMaxAttempts) {
  NetworkConfig nc;
  nc.latency_jitter = Duration::zero();
  SimNetwork net(nc);
  ReliableChannelConfig cc;
  cc.max_attempts = 3;
  ChannelNode a(NodeId(1), cc);
  ChannelNode b(NodeId(2), cc);
  net.attach(a);
  net.attach(b);

  net.partition({NodeId(1)}, {NodeId(2)});
  a.channel().send(NodeId(2), 100, {1}, net);
  net.run_until_idle();

  EXPECT_TRUE(b.delivered.empty());
  EXPECT_EQ(a.counters().get("retransmit_exhausted"), 1u);
  EXPECT_EQ(a.channel().unacked(), 0u);  // abandoned, not leaked
}

TEST(ReliableChannel, RidesOutTransientPartition) {
  NetworkConfig nc;
  nc.latency_jitter = Duration::zero();
  SimNetwork net(nc);
  ChannelNode a(NodeId(1));
  ChannelNode b(NodeId(2));
  net.attach(a);
  net.attach(b);

  net.partition({NodeId(1)}, {NodeId(2)});
  a.channel().send(NodeId(2), 100, {1}, net);
  // Let a few retransmissions burn against the partition, then heal.
  net.run_until(net.now() + Duration::millis(200));
  EXPECT_TRUE(b.delivered.empty());
  net.heal();
  net.run_until_idle();
  ASSERT_EQ(b.delivered.size(), 1u);
  EXPECT_EQ(a.channel().unacked(), 0u);
}

// ------------------------------------------------------------- e2e layer

struct E2eScenario {
  Trace trace;
  Rect world;

  E2eScenario() {
    TraceConfig c;
    c.roads.grid_cols = 6;
    c.roads.grid_rows = 6;
    c.cameras.camera_count = 20;
    c.mobility.object_count = 20;
    c.duration = Duration::minutes(2);
    c.seed = 777;
    trace = TraceGenerator::generate(c);
    world = trace.roads.bounds(120.0);
  }
};

std::set<std::uint64_t> ids_of(const QueryResult& r) {
  std::set<std::uint64_t> ids;
  for (const Detection& d : r.detections) ids.insert(d.id.value());
  return ids;
}

/// Pumps the network until every node's reliable channel is quiescent
/// (all frames acked or abandoned). Bounded by the retransmission ladder.
void quiesce(Cluster& cluster) {
  auto settled = [&] {
    if (cluster.coordinator().unacked_frames() != 0) return false;
    for (WorkerId w : cluster.worker_ids()) {
      if (cluster.worker(w).unacked_frames() != 0) return false;
    }
    return true;
  };
  while (!settled()) {
    if (!cluster.network().step()) break;
  }
}

TEST(ReliableChannelE2E, LossyFabricIngestMatchesOracle) {
  E2eScenario s;
  ClusterConfig config;
  config.worker_count = 4;
  config.network.drop_probability = 0.05;
  config.network.duplicate_probability = 0.02;
  config.network.seed = 5;
  Cluster cluster(
      s.world,
      std::make_unique<SpatialGridStrategy>(s.world, 3, 3, s.trace.cameras),
      config);
  cluster.ingest_all(s.trace.detections);
  quiesce(cluster);

  CentralizedIndex oracle(s.world);
  oracle.ingest_all(s.trace.detections);

  // Every detection arrived despite drops (reliable transport), none
  // arrived twice (dedup + idempotent ingest).
  Query range = Query::range(cluster.next_query_id(), s.world,
                             TimeInterval::all());
  EXPECT_EQ(ids_of(cluster.execute(range)), ids_of(oracle.execute(range)));

  Query count = Query::count(cluster.next_query_id(), s.world,
                             TimeInterval::all());
  EXPECT_EQ(cluster.execute(count).total_count(),
            oracle.execute(count).total_count());

  EXPECT_GT(cluster.coordinator().counters().get("retransmits"), 0u);
}

TEST(ReliableChannelE2E, HedgingMasksGrayFailure) {
  E2eScenario s;
  ClusterConfig config;
  config.worker_count = 4;
  config.network.seed = 6;
  Cluster cluster(
      s.world,
      std::make_unique<SpatialGridStrategy>(s.world, 3, 3, s.trace.cameras),
      config);
  cluster.ingest_all(s.trace.detections);
  quiesce(cluster);

  CentralizedIndex oracle(s.world);
  oracle.ingest_all(s.trace.detections);

  // Gray failure: worker 2 is alive (heartbeats flow, the failure detector
  // never trips) but 500x slower. Its query answers would blow way past
  // the 50ms query timeout; the hedge to its backups answers instead.
  cluster.network().set_slow(NodeId(2), 500.0);

  Query q = Query::range(cluster.next_query_id(), s.world,
                         TimeInterval::all());
  EXPECT_EQ(ids_of(cluster.execute(q)), ids_of(oracle.execute(q)));

  const CounterSet& cc = cluster.coordinator().counters();
  EXPECT_GT(cc.get("hedges_issued"), 0u);
  EXPECT_GT(cc.get("hedges_won"), 0u);
  EXPECT_EQ(cc.get("workers_suspected"), 0u);  // detector never fired
}

TEST(ReliableChannelE2E, HeartbeatsResumeAfterNetworkOnlyRestart) {
  // Regression: a crash used to silently discard the worker's pending
  // monitor-tick timer, so a restart that did not explicitly re-arm it left
  // the worker heartbeat-dead forever. Timers now park during the crash and
  // resume on restart.
  E2eScenario s;
  ClusterConfig config;
  config.worker_count = 4;
  config.monitor_tick = Duration::millis(100);
  config.coordinator.heartbeat_timeout = Duration::millis(500);
  config.coordinator.failure_sweep_period = Duration::millis(200);
  Cluster cluster(
      s.world,
      std::make_unique<SpatialGridStrategy>(s.world, 3, 3, s.trace.cameras),
      config);
  cluster.advance_time(Duration::seconds(1));  // heartbeats established

  // Crash at the network layer only — nobody calls restart_ticks.
  cluster.network().crash(NodeId(2));
  cluster.advance_time(Duration::seconds(2));
  EXPECT_TRUE(
      cluster.coordinator().suspected_workers().contains(WorkerId(2)));

  cluster.network().restart(NodeId(2));
  cluster.advance_time(Duration::seconds(2));
  EXPECT_FALSE(
      cluster.coordinator().suspected_workers().contains(WorkerId(2)));
}

}  // namespace
}  // namespace stcn
