#include "reid/path_reconstruction.h"

#include <gtest/gtest.h>

#include <set>

#include "baseline/centralized.h"
#include "trace/generator.h"

namespace stcn {
namespace {

struct PathWorld {
  Trace trace;
  CentralizedIndex index;
  TransitionGraph graph;

  explicit PathWorld(const TraceConfig& config)
      : trace(TraceGenerator::generate(config)),
        index(trace.roads.bounds(150.0)) {
    index.ingest_all(trace.detections);
    graph.learn(trace.detections);
  }
};

TraceConfig path_config(double appearance_noise = 0.08) {
  TraceConfig c;
  c.roads.grid_cols = 8;
  c.roads.grid_rows = 8;
  c.cameras.camera_count = 30;
  c.mobility.object_count = 30;
  c.duration = Duration::minutes(10);
  c.detection.appearance_noise = appearance_noise;
  c.seed = 99;
  return c;
}

ReidParams engine_params() {
  ReidParams p;
  p.cone.max_hops = 2;
  p.cone.min_edge_count = 2;
  p.min_similarity = 0.6;
  p.max_matches = 5;
  return p;
}

PathParams path_params() {
  PathParams p;
  p.beam_width = 4;
  p.max_path_length = 8;
  p.hop_horizon = Duration::minutes(2);
  return p;
}

/// Probe detections whose object is seen at ≥ 3 distinct cameras later.
std::vector<const Detection*> multi_hop_probes(const Trace& trace,
                                               std::size_t max_probes) {
  std::vector<const Detection*> out;
  std::unordered_map<ObjectId, std::vector<const Detection*>> by_object;
  for (const Detection& d : trace.detections) {
    by_object[d.object].push_back(&d);
  }
  for (const auto& [obj, dets] : by_object) {
    if (dets.size() < 4) continue;
    std::set<std::uint64_t> cameras;
    for (const Detection* d : dets) cameras.insert(d->camera.value());
    if (cameras.size() >= 3 && out.size() < max_probes) {
      out.push_back(dets.front());
    }
  }
  return out;
}

TEST(PathReconstructor, ProducesPathsStartingAtProbe) {
  PathWorld world(path_config());
  ReidEngine engine(world.graph, engine_params());
  PathReconstructor reconstructor(engine, path_params());
  LocalCandidateSource source(world.index, world.trace.cameras);

  auto probes = multi_hop_probes(world.trace, 10);
  ASSERT_FALSE(probes.empty());
  for (const Detection* probe : probes) {
    ReconstructedPath path = reconstructor.reconstruct(*probe, source);
    ASSERT_FALSE(path.hops.empty());
    EXPECT_EQ(path.hops.front().id, probe->id);
    // Hops strictly advance in time.
    for (std::size_t i = 1; i < path.hops.size(); ++i) {
      EXPECT_GT(path.hops[i].time, path.hops[i - 1].time);
    }
    // No duplicate detections.
    std::set<std::uint64_t> ids;
    for (const Detection& d : path.hops) {
      EXPECT_TRUE(ids.insert(d.id.value()).second);
    }
  }
}

TEST(PathReconstructor, MostHopsMatchGroundTruthAtLowNoise) {
  PathWorld world(path_config(0.05));
  ReidEngine engine(world.graph, engine_params());
  PathReconstructor reconstructor(engine, path_params());
  LocalCandidateSource source(world.index, world.trace.cameras);

  auto probes = multi_hop_probes(world.trace, 15);
  ASSERT_GT(probes.size(), 4u);
  double accuracy_sum = 0.0;
  std::size_t evaluated = 0;
  for (const Detection* probe : probes) {
    ReconstructedPath path = reconstructor.reconstruct(*probe, source);
    if (path.hops.size() <= 1) continue;
    accuracy_sum +=
        PathReconstructor::hop_accuracy(path, probe->object, true);
    ++evaluated;
  }
  ASSERT_GT(evaluated, 0u);
  EXPECT_GT(accuracy_sum / static_cast<double>(evaluated), 0.6);
}

TEST(PathReconstructor, AccuracyDegradesWithAppearanceNoise) {
  auto run = [](double noise) {
    PathWorld world(path_config(noise));
    ReidEngine engine(world.graph, engine_params());
    PathReconstructor reconstructor(engine, path_params());
    LocalCandidateSource source(world.index, world.trace.cameras);
    auto probes = multi_hop_probes(world.trace, 15);
    double acc = 0.0;
    std::size_t n = 0;
    for (const Detection* probe : probes) {
      ReconstructedPath path = reconstructor.reconstruct(*probe, source);
      if (path.hops.size() <= 1) continue;
      acc += PathReconstructor::hop_accuracy(path, probe->object, true);
      ++n;
    }
    return n ? acc / static_cast<double>(n) : 0.0;
  };
  double clean = run(0.03);
  double noisy = run(0.45);
  EXPECT_GT(clean, noisy) << "clean=" << clean << " noisy=" << noisy;
}

TEST(PathReconstructor, RespectsMaxPathLength) {
  PathWorld world(path_config());
  ReidEngine engine(world.graph, engine_params());
  PathParams short_params = path_params();
  short_params.max_path_length = 3;
  PathReconstructor reconstructor(engine, short_params);
  LocalCandidateSource source(world.index, world.trace.cameras);
  for (const Detection* probe : multi_hop_probes(world.trace, 10)) {
    ReconstructedPath path = reconstructor.reconstruct(*probe, source);
    EXPECT_LE(path.hops.size(), 3u);
  }
}

TEST(PathReconstructor, HopAccuracyEdgeCases) {
  ReconstructedPath empty;
  EXPECT_DOUBLE_EQ(
      PathReconstructor::hop_accuracy(empty, ObjectId(1), true), 0.0);
  EXPECT_DOUBLE_EQ(
      PathReconstructor::hop_accuracy(empty, ObjectId(1), false), 1.0);

  ReconstructedPath path;
  Detection probe;
  probe.object = ObjectId(1);
  Detection good;
  good.object = ObjectId(1);
  Detection bad;
  bad.object = ObjectId(2);
  path.hops = {probe, good, bad};
  EXPECT_DOUBLE_EQ(PathReconstructor::hop_accuracy(path, ObjectId(1), true),
                   0.5);
}

}  // namespace
}  // namespace stcn
