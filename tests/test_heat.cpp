// Partition heat observatory: worker-side HeatTracker accounting, the
// coordinator's HeatMapSnapshot skew rollups (windowed, restart-safe), the
// read-only PlacementAdvisor, and the end-to-end heartbeat piggyback path.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "core/framework.h"
#include "obs/heat.h"
#include "partition/strategies.h"
#include "trace/generator.h"

namespace stcn {
namespace {

TimePoint at(int seconds) {
  return TimePoint::origin() + Duration::seconds(seconds);
}

// ------------------------------------------------------------ heat tracker

TEST(HeatTracker, AccumulatesPerPartitionAndSnapshotsInOrder) {
  HeatTracker t;
  t.on_ingest(PartitionId(3), 40);
  t.on_ingest(PartitionId(1), 100);
  t.on_ingest(PartitionId(1), 20);
  t.on_scan(PartitionId(1), 120, 7, 4, 2);
  t.on_fragment(PartitionId(1), 512);
  t.on_fragment(PartitionId(1), 256);
  t.set_memory(PartitionId(3), 4096);

  auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].partition, PartitionId(1));
  EXPECT_EQ(snap[0].ingested_rows, 120u);
  EXPECT_EQ(snap[0].rows_evaluated, 120u);
  EXPECT_EQ(snap[0].rows_selected, 7u);
  EXPECT_EQ(snap[0].blocks_scanned, 4u);
  EXPECT_EQ(snap[0].blocks_skipped, 2u);
  EXPECT_EQ(snap[0].fragments_served, 2u);
  EXPECT_EQ(snap[0].wire_bytes_out, 768u);
  EXPECT_EQ(snap[1].partition, PartitionId(3));
  EXPECT_EQ(snap[1].ingested_rows, 40u);
  EXPECT_EQ(snap[1].store_memory_bytes, 4096u);

  EXPECT_EQ(t.partition_count(), 2u);
  t.clear();
  EXPECT_EQ(t.partition_count(), 0u);
  EXPECT_TRUE(t.snapshot().empty());
}

TEST(HeatTracker, EwmaConvergesOnSteadyIngestRate) {
  HeatTracker t;
  for (int i = 0; i < 12; ++i) {
    t.on_ingest(PartitionId(0), 100);  // exactly 100 rows/s
    t.sample(at(i));
  }
  auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_GT(snap[0].ewma_load_per_s, 90.0);
  EXPECT_LE(snap[0].ewma_load_per_s, 100.0 + 1e-9);
  const TimeSeries* series = t.series(PartitionId(0));
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->size(), 12u);
  EXPECT_EQ(t.series(PartitionId(9)), nullptr);
}

// -------------------------------------------------------- heat map snapshot

PartitionHeat totals(PartitionId p, std::uint64_t rows) {
  PartitionHeat h;
  h.partition = p;
  h.ingested_rows = rows;
  return h;
}

TEST(HeatMapSnapshot, WindowedLoadClampsAtZeroAcrossOwnerRestart) {
  HeatMapSnapshot heat;  // 10s window
  WorkerId w(1);
  heat.ingest(w, totals(PartitionId(0), 1000), at(0));
  heat.ingest(w, totals(PartitionId(0), 2000), at(5));
  EXPECT_DOUBLE_EQ(heat.windowed_load(PartitionId(0), at(5)), 1000.0);

  // The owner restarts: totals reset to zero. The windowed delta must clamp
  // at zero, never report the -2000 swing.
  heat.ingest(w, totals(PartitionId(0), 0), at(20));
  EXPECT_DOUBLE_EQ(heat.windowed_load(PartitionId(0), at(20)), 0.0);
  EXPECT_GE(heat.skew(at(20)).load_relative_stddev, 0.0);

  // Fresh post-restart ingest still clamps while the window's baseline is
  // a pre-restart total (the partition reads cold for up to one window)...
  heat.ingest(w, totals(PartitionId(0), 50), at(25));
  EXPECT_DOUBLE_EQ(heat.windowed_load(PartitionId(0), at(25)), 0.0);
  // ...and reads true again once the baseline is a post-restart sample.
  heat.ingest(w, totals(PartitionId(0), 170), at(32));
  EXPECT_DOUBLE_EQ(heat.windowed_load(PartitionId(0), at(32)), 170.0);
  EXPECT_DOUBLE_EQ(heat.windowed_load(PartitionId(9), at(32)), 0.0);
}

HeatMapSnapshot skewed_snapshot(const std::vector<double>& loads,
                                const std::vector<WorkerId>& owners) {
  HeatMapSnapshot heat;
  for (std::size_t p = 0; p < loads.size(); ++p) {
    heat.ingest(owners[p % owners.size()], totals(PartitionId(p), 0), at(0));
  }
  for (std::size_t p = 0; p < loads.size(); ++p) {
    heat.ingest(owners[p % owners.size()],
                totals(PartitionId(p), static_cast<std::uint64_t>(loads[p])),
                at(5));
  }
  return heat;
}

TEST(HeatMapSnapshot, SkewRollupsIdentifyTheHottestPartition) {
  PartitionMap map = PartitionMap::round_robin(4, {WorkerId(1), WorkerId(2)});
  HeatMapSnapshot heat =
      skewed_snapshot({1000.0, 10.0, 800.0, 10.0}, {WorkerId(1), WorkerId(2)});

  HeatMapSnapshot::Skew s = heat.skew(at(5), &map);
  EXPECT_EQ(s.hottest, PartitionId(0));
  EXPECT_DOUBLE_EQ(s.hottest_load, 1000.0);
  EXPECT_DOUBLE_EQ(s.coldest_load, 10.0);
  EXPECT_DOUBLE_EQ(s.hot_cold_ratio, 100.0);
  EXPECT_GT(s.load_relative_stddev, 0.5);
  EXPECT_GT(s.scan_gini, 0.0);
  EXPECT_LE(s.scan_gini, 1.0);
  // round_robin over two workers gives every partition a distinct backup.
  EXPECT_DOUBLE_EQ(s.replicate_factor, 2.0);

  // Per-worker rollup: w1 holds p0+p2, w2 holds p1+p3.
  auto worker_loads = heat.worker_loads(at(5));
  EXPECT_DOUBLE_EQ(worker_loads[WorkerId(1)], 1800.0);
  EXPECT_DOUBLE_EQ(worker_loads[WorkerId(2)], 20.0);
}

TEST(HeatMapSnapshot, IdleClusterReportsZeroRatioAndEmptySkew) {
  HeatMapSnapshot heat;
  HeatMapSnapshot::Skew s = heat.skew(at(0));
  EXPECT_DOUBLE_EQ(s.load_relative_stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.hot_cold_ratio, 0.0);

  // Entries exist but nothing moved inside the window: ratio stays zero so
  // the hot_partition rule cannot fire on an idle cluster.
  heat.ingest(WorkerId(1), totals(PartitionId(0), 500), at(0));
  heat.ingest(WorkerId(1), totals(PartitionId(0), 500), at(5));
  EXPECT_DOUBLE_EQ(heat.skew(at(5)).hot_cold_ratio, 0.0);
}

TEST(HeatMapSnapshot, RenderAndJsonCarryTheTable) {
  HeatMapSnapshot heat =
      skewed_snapshot({3000.0, 400.0}, {WorkerId(1), WorkerId(2)});
  std::string table = heat.render(at(5));
  EXPECT_NE(table.find("p0"), std::string::npos);
  EXPECT_NE(table.find("w1"), std::string::npos);

  obs::JsonValue root;
  ASSERT_TRUE(obs::JsonValue::parse(heat.to_json(at(5)), root));
  ASSERT_TRUE(root.has("partitions"));
  ASSERT_EQ(root.at("partitions").array().size(), 2u);
  EXPECT_DOUBLE_EQ(
      root.at("partitions").array()[0].at("windowed_load").number(), 3000.0);
  EXPECT_GT(root.at("load_relative_stddev").number(), 0.0);
}

TEST(HeatMapSnapshot, AlertableRollupsGateOnTheActivityFloor) {
  // Identical 21:1 skew at two volumes. Below the activity floor the
  // alertable rollups read zero (trickle traffic must not page anyone);
  // above it they report the skew.
  HeatMapSnapshot cold =
      skewed_snapshot({21.0, 1.0}, {WorkerId(1), WorkerId(2)});
  EXPECT_DOUBLE_EQ(cold.skew(at(5)).hot_cold_ratio, 0.0);
  EXPECT_DOUBLE_EQ(cold.skew(at(5)).load_relative_stddev, 0.0);
  EXPECT_DOUBLE_EQ(cold.skew(at(5)).hottest_load, 21.0);  // table stays true

  HeatMapSnapshot hot =
      skewed_snapshot({2100.0, 100.0}, {WorkerId(1), WorkerId(2)});
  EXPECT_DOUBLE_EQ(hot.skew(at(5)).hot_cold_ratio, 21.0);
  EXPECT_GT(hot.skew(at(5)).load_relative_stddev, 0.0);
}

// -------------------------------------------------------- placement advisor

TEST(PlacementAdvisor, SkewedLoadYieldsCompoundingMoves) {
  PartitionMap map = PartitionMap::round_robin(4, {WorkerId(1), WorkerId(2)});
  HeatMapSnapshot heat =
      skewed_snapshot({1000.0, 10.0, 800.0, 10.0}, {WorkerId(1), WorkerId(2)});

  auto recs = PlacementAdvisor::advise(heat, map, at(5));
  ASSERT_FALSE(recs.empty());
  // Top move: shift load off the overloaded worker onto the idle one, with
  // a projected stddev improvement well past the 25% acceptance bar.
  EXPECT_EQ(recs[0].from, WorkerId(1));
  EXPECT_EQ(recs[0].to, WorkerId(2));
  EXPECT_GE(recs[0].improvement(), 0.25);
  EXPECT_LT(recs[0].stddev_after, recs[0].stddev_before);
  // Moves compound: each rec starts from the previous projection.
  for (std::size_t i = 1; i < recs.size(); ++i) {
    EXPECT_DOUBLE_EQ(recs[i].stddev_before, recs[i - 1].stddev_after);
  }

  std::string rendered = PlacementAdvisor::render(recs);
  EXPECT_NE(rendered.find("#1"), std::string::npos);
  EXPECT_NE(rendered.find("w1->w2"), std::string::npos);

  obs::JsonValue root;
  ASSERT_TRUE(obs::JsonValue::parse(PlacementAdvisor::to_json(recs), root));
  ASSERT_FALSE(root.array().empty());
  EXPECT_EQ(root.array()[0].at("kind").string(), "migrate");
  EXPECT_GE(root.array()[0].at("improvement").number(), 0.25);
}

TEST(PlacementAdvisor, UniformLoadYieldsNoAdvice) {
  PartitionMap map = PartitionMap::round_robin(4, {WorkerId(1), WorkerId(2)});
  HeatMapSnapshot heat = skewed_snapshot({500.0, 500.0, 500.0, 500.0},
                                         {WorkerId(1), WorkerId(2)});
  auto recs = PlacementAdvisor::advise(heat, map, at(5));
  EXPECT_TRUE(recs.empty());
  EXPECT_NE(PlacementAdvisor::render(recs).find("no beneficial moves"),
            std::string::npos);
  EXPECT_EQ(PlacementAdvisor::to_json(recs), "[]");
}

TEST(PlacementAdvisor, IdleMapWorkerIsUsedAsHeadroom) {
  // Three workers in the map, all load on the first two (round_robin puts
  // p0 and p3 on w1, p1 on w2, p2 on the never-reporting w3): the advisor
  // must route a move toward the idle third worker.
  PartitionMap map = PartitionMap::round_robin(
      4, {WorkerId(1), WorkerId(2), WorkerId(3)});
  HeatMapSnapshot heat;
  heat.ingest(WorkerId(1), totals(PartitionId(0), 0), at(0));
  heat.ingest(WorkerId(2), totals(PartitionId(1), 0), at(0));
  heat.ingest(WorkerId(1), totals(PartitionId(3), 0), at(0));
  heat.ingest(WorkerId(1), totals(PartitionId(0), 600), at(5));
  heat.ingest(WorkerId(2), totals(PartitionId(1), 600), at(5));
  heat.ingest(WorkerId(1), totals(PartitionId(3), 300), at(5));

  auto recs = PlacementAdvisor::advise(heat, map, at(5));
  ASSERT_FALSE(recs.empty());
  EXPECT_EQ(recs[0].from, WorkerId(1));
  EXPECT_EQ(recs[0].to, WorkerId(3));
}

// ------------------------------------------- counter restart rate clamping

TEST(HealthMonitor, CounterRateClampsAtZeroOnSubjectRestart) {
  MetricsRegistry reg;
  Counter& events = reg.counter("events");
  HealthMonitor monitor;
  monitor.add_source("w", &reg);

  AlertRule rule;
  rule.name = "event_storm";
  rule.metric = "events";
  rule.kind = MetricKind::kCounterRate;
  rule.threshold = 1000.0;
  monitor.add_rule(rule);

  events.add(100);
  monitor.sample(at(0));
  events.add(100);
  monitor.sample(at(1));  // 100/s
  events.reset();         // subject restarted mid-window
  monitor.sample(at(2));  // raw delta is -200: must clamp, not go negative
  events.add(50);
  monitor.sample(at(3));  // post-restart rate resumes at 50/s

  const TimeSeries* series =
      monitor.series("w", "events", MetricKind::kCounterRate);
  ASSERT_NE(series, nullptr);
  ASSERT_GE(series->size(), 3u);
  for (std::size_t i = 0; i < series->size(); ++i) {
    EXPECT_GE(series->at(i), 0.0) << "sample " << i;
  }
  EXPECT_DOUBLE_EQ(series->back(), 50.0);
  EXPECT_FALSE(monitor.is_firing("event_storm"));
}

// ------------------------------------------------------- cluster end-to-end

struct HeatScenario {
  Trace trace;
  Rect world;

  HeatScenario() {
    TraceConfig c;
    c.roads.grid_cols = 6;
    c.roads.grid_rows = 6;
    c.cameras.camera_count = 20;
    c.mobility.object_count = 20;
    c.duration = Duration::minutes(2);
    c.seed = 909;
    trace = TraceGenerator::generate(c);
    world = trace.roads.bounds(120.0);
  }
};

std::unique_ptr<Cluster> make_heat_cluster(const HeatScenario& s) {
  ClusterConfig config;
  config.worker_count = 3;
  auto cluster = std::make_unique<Cluster>(
      s.world,
      std::make_unique<SpatialGridStrategy>(s.world, 2, 2, s.trace.cameras),
      config);
  return cluster;
}

TEST(HeatObservatory, HeartbeatsShipHeatToTheCoordinator) {
  HeatScenario s;
  auto cluster = make_heat_cluster(s);

  // Interleave ingest with virtual time so the coordinator's windowed rings
  // see the totals actually rising between heartbeats.
  std::size_t half = s.trace.detections.size() / 2;
  cluster->ingest_all(
      std::span<const Detection>(s.trace.detections.data(), half));
  cluster->advance_time(Duration::seconds(2));
  cluster->ingest_all(std::span<const Detection>(
      s.trace.detections.data() + half, s.trace.detections.size() - half));
  cluster->advance_time(Duration::seconds(3));

  const HeatMapSnapshot& heat = cluster->coordinator().heat();
  ASSERT_FALSE(heat.empty());

  // Every worker-side tracker made it across: summed ingest totals account
  // for every routed detection exactly once per partition.
  std::uint64_t total = 0;
  for (const auto& [p, e] : heat.entries()) total += e.heat.ingested_rows;
  EXPECT_EQ(total, s.trace.detections.size());

  // The second half of the trace landed inside the rollup window, so skew
  // is computed over live load and the hottest partition is the windowed
  // argmax of the table.
  HeatMapSnapshot::Skew skew =
      heat.skew(cluster->now(), &cluster->coordinator().partition_map());
  EXPECT_GT(skew.hottest_load, 0.0);
  double max_windowed = 0.0;
  PartitionId argmax;
  for (const auto& [p, e] : heat.entries()) {
    double load = heat.windowed_load(p, cluster->now());
    if (load > max_windowed) {
      max_windowed = load;
      argmax = p;
    }
  }
  EXPECT_EQ(skew.hottest, argmax);
  EXPECT_DOUBLE_EQ(skew.hottest_load, max_windowed);
  EXPECT_GT(skew.replicate_factor, 1.0);  // 3 workers: distinct backups

  // Skew rollups are exported as coordinator gauges.
  MetricsRegistry snapshot = cluster->metrics_snapshot();
  EXPECT_GT(snapshot.gauge("coordinator.partition.tracked").value(), 0.0);
  EXPECT_GE(
      snapshot.gauge("coordinator.partition.load_relative_stddev").value(),
      0.0);
  EXPECT_GT(snapshot.gauge("coordinator.partition.replicate_factor").value(),
            1.0);
  EXPECT_GT(snapshot.gauge("coordinator.partition.hottest_load").value(),
            0.0);
  // The hottest-load gauge carries its partition id as an exemplar label.
  auto labels = snapshot.labels("coordinator.partition.hottest_load");
  ASSERT_TRUE(labels.count("partition"));
  EXPECT_EQ(labels.at("partition"),
            "p" + std::to_string(skew.hottest.value()));

  // Worker side: the tracker gauge reflects resident partitions.
  EXPECT_GT(snapshot.gauge("worker.heat.partitions_tracked").value(), 0.0);
}

TEST(HeatObservatory, RestartClampsCoordinatorLoadsNonNegative) {
  HeatScenario s;
  auto cluster = make_heat_cluster(s);
  cluster->ingest_all(s.trace.detections);
  cluster->advance_time(Duration::seconds(3));
  ASSERT_FALSE(cluster->coordinator().heat().empty());

  // Crash + restart: the victim's totals reset to zero mid-stream. Every
  // windowed load and every exported gauge must clamp at zero.
  cluster->crash_worker(WorkerId(1));
  cluster->restart_worker(WorkerId(1));
  cluster->advance_time(Duration::seconds(5));

  const HeatMapSnapshot& heat = cluster->coordinator().heat();
  for (const auto& [p, e] : heat.entries()) {
    EXPECT_GE(heat.windowed_load(p, cluster->now()), 0.0)
        << "partition " << p.value();
  }
  HeatMapSnapshot::Skew skew = heat.skew(cluster->now());
  EXPECT_GE(skew.load_relative_stddev, 0.0);
  EXPECT_GE(skew.hot_cold_ratio, 0.0);

  MetricsRegistry snapshot = cluster->metrics_snapshot();
  EXPECT_GE(
      snapshot.gauge("coordinator.partition.load_relative_stddev").value(),
      0.0);
  EXPECT_GE(snapshot.gauge("coordinator.partition.hot_cold_ratio").value(),
            0.0);
}

TEST(HeatObservatory, HotPartitionAlertFiresUnderSkewAndResolves) {
  HeatScenario s;
  auto cluster = make_heat_cluster(s);

  // Hammer one camera (= one spatial partition) with synthetic detections
  // while the rest of the cluster idles: hot/cold skew far past both the
  // activity floor and the 8x ratio threshold.
  const Camera& hot_cam = s.trace.cameras.cameras().front();
  const Camera& cold_cam = s.trace.cameras.cameras().back();
  std::uint64_t next_id = 1;
  auto burst = [&](const Camera& cam, std::size_t rows) {
    std::vector<Detection> batch(rows);
    for (std::size_t i = 0; i < rows; ++i) {
      Detection& d = batch[i];
      d.id = DetectionId(next_id++);
      d.camera = cam.id;
      d.object = ObjectId(1);
      d.time = cluster->now();
      d.position = cam.fov.apex;
    }
    cluster->ingest_all(batch);
  };

  HealthMonitor& monitor = cluster->health_monitor();
  bool fired = false;
  for (int round = 0; round < 6 && !fired; ++round) {
    burst(hot_cam, 2000);
    burst(cold_cam, 20);
    cluster->advance_time(Duration::seconds(1));
    cluster->sample_health();
    fired = monitor.is_firing("hot_partition");
  }
  EXPECT_TRUE(fired) << "hot_partition must fire under sustained 100x skew";
  EXPECT_TRUE(monitor.is_firing("hot_partition", "coordinator"));

  // Healing: the hot stream stops, heartbeats keep flowing, and the
  // windowed loads decay to zero — the alert must resolve on its own.
  for (int round = 0; round < 20 && monitor.is_firing("hot_partition");
       ++round) {
    cluster->advance_time(Duration::seconds(2));
    cluster->sample_health();
  }
  EXPECT_FALSE(monitor.is_firing("hot_partition"))
      << "hot_partition must resolve once the skew heals";
  EXPECT_GE(monitor.events().count("resolved", "hot_partition"), 1u);
}

TEST(HeatObservatory, PostmortemBundleCarriesHeatTableAndAdvice) {
  HeatScenario s;
  auto cluster = make_heat_cluster(s);
  std::size_t half = s.trace.detections.size() / 2;
  cluster->ingest_all(
      std::span<const Detection>(s.trace.detections.data(), half));
  cluster->advance_time(Duration::seconds(2));
  cluster->ingest_all(std::span<const Detection>(
      s.trace.detections.data() + half, s.trace.detections.size() - half));
  cluster->advance_time(Duration::seconds(2));
  cluster->sample_health();

  FlightTrigger trigger;
  trigger.kind = "alert";
  trigger.rule = "hot_partition";
  const PostmortemBundle& bundle = cluster->freeze_postmortem(trigger);
  ASSERT_FALSE(bundle.heat_json.empty());

  obs::JsonValue heat;
  ASSERT_TRUE(obs::JsonValue::parse(bundle.heat_json, heat));
  ASSERT_TRUE(heat.has("table"));
  EXPECT_FALSE(heat.at("table").at("partitions").array().empty());
  ASSERT_TRUE(heat.has("advisor"));

  // The heat section must not break bundle round-trip byte-stability.
  std::string json = bundle.to_json();
  PostmortemBundle parsed;
  ASSERT_TRUE(parse_bundle(json, parsed));
  EXPECT_EQ(parsed.to_json(), json);
  EXPECT_EQ(parsed.heat_json, bundle.heat_json);
}

}  // namespace
}  // namespace stcn
