// Continuous health monitoring: ring-buffer series, rule evaluation with
// hysteresis, wildcard fan-out with subject attribution, and the
// end-to-end chaos contract — a gray-slow worker must drive a `suspect`
// alert within a bounded number of samples, and healing must resolve it.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include "core/framework.h"
#include "partition/strategies.h"
#include "trace/generator.h"

namespace stcn {
namespace {

TimePoint at(int seconds) {
  return TimePoint::origin() + Duration::seconds(seconds);
}

// ----------------------------------------------------------- time series

TEST(TimeSeries, RingKeepsNewestSamples) {
  TimeSeries ts(4);
  EXPECT_EQ(ts.capacity(), 4u);
  for (int i = 0; i < 6; ++i) {
    ts.push(at(i), static_cast<double>(i));
  }
  ASSERT_EQ(ts.size(), 4u);
  EXPECT_DOUBLE_EQ(ts.at(0), 2.0);  // oldest retained
  EXPECT_DOUBLE_EQ(ts.at(3), 5.0);
  EXPECT_DOUBLE_EQ(ts.back(), 5.0);
  EXPECT_EQ(ts.time_at(0), at(2));
  EXPECT_EQ(ts.time_at(3), at(5));
}

TEST(TimeSeries, ZeroCapacityIsInert) {
  TimeSeries ts(0);
  ts.push(at(0), 1.0);
  EXPECT_EQ(ts.size(), 0u);
}

TEST(TimeSeries, RepeatedWraparoundPreservesOrderAndTimes) {
  TimeSeries ts(5);
  // Wrap the ring many times over, stopping at an offset that is not a
  // multiple of the capacity so the head lands mid-buffer.
  const int total = 5 * 7 + 3;
  for (int i = 0; i < total; ++i) {
    ts.push(at(i), static_cast<double>(i * 10));
  }
  ASSERT_EQ(ts.size(), 5u);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    int logical = total - 5 + static_cast<int>(i);
    EXPECT_DOUBLE_EQ(ts.at(i), logical * 10.0) << "index " << i;
    EXPECT_EQ(ts.time_at(i), at(logical)) << "index " << i;
  }
  EXPECT_DOUBLE_EQ(ts.back(), (total - 1) * 10.0);
  // Exactly one more push evicts exactly the oldest.
  ts.push(at(total), static_cast<double>(total * 10));
  EXPECT_DOUBLE_EQ(ts.at(0), (total - 4) * 10.0);
}

TEST(TimeSeries, WindowedRateIsExactAcrossWraparoundSeam) {
  // A cumulative counter growing exactly 10/s, sampled once per second
  // into a capacity-4 ring. After the ring wraps, a window wider than the
  // ring reaches past the seam: the baseline clamps to the oldest retained
  // sample, and the divisor must be the span the ring actually covers —
  // dividing by the nominal window would undercount the first window
  // after the wrap (here 30/5 = 6/s instead of the true 10/s).
  TimeSeries ts(4);
  for (int i = 0; i < 10; ++i) ts.push(at(i), 10.0 * i);
  // Ring holds t=6..9 (values 60..90). A 5s window wants a t=4 baseline.
  EXPECT_DOUBLE_EQ(ts.rate_over(at(9), Duration::seconds(5)), 10.0);
  // Windows that fit inside the ring are exact too.
  EXPECT_DOUBLE_EQ(ts.rate_over(at(9), Duration::seconds(2)), 10.0);
  EXPECT_DOUBLE_EQ(ts.delta_over(at(9), Duration::seconds(2)), 20.0);
  // delta_over past the seam is the covered delta, never an extrapolation.
  EXPECT_DOUBLE_EQ(ts.delta_over(at(9), Duration::seconds(5)), 30.0);

  // A counter reset (subject restarted) clamps at zero, never negative.
  ts.push(at(10), 0.0);
  EXPECT_DOUBLE_EQ(ts.rate_over(at(10), Duration::seconds(3)), 0.0);
  EXPECT_DOUBLE_EQ(ts.delta_over(at(10), Duration::seconds(3)), 0.0);

  // Degenerate cases: empty / single-sample series report zero.
  TimeSeries fresh(4);
  EXPECT_DOUBLE_EQ(fresh.rate_over(at(1), Duration::seconds(1)), 0.0);
  fresh.push(at(0), 5.0);
  EXPECT_DOUBLE_EQ(fresh.rate_over(at(1), Duration::seconds(1)), 0.0);
}

// ------------------------------------------------------- rule evaluation

AlertRule rate_rule(std::string name, std::string metric, double threshold) {
  AlertRule r;
  r.name = std::move(name);
  r.metric = std::move(metric);
  r.kind = MetricKind::kCounterRate;
  r.threshold = threshold;
  r.for_samples = 2;
  r.resolve_samples = 2;
  return r;
}

TEST(HealthMonitor, CounterRateRuleFiresWithHysteresisAndResolves) {
  MetricsRegistry reg;
  Counter& retransmits = reg.counter("retransmits");
  HealthMonitor monitor;
  monitor.add_source("net", &reg);
  monitor.add_rule(rate_rule("storm", "retransmits", 10.0));

  monitor.sample(at(0));  // first sample: no dt, rates not ready
  EXPECT_FALSE(monitor.is_firing("storm"));

  retransmits.add(100);
  monitor.sample(at(1));  // rate 100/s: breach 1 of 2
  EXPECT_FALSE(monitor.is_firing("storm"));

  retransmits.add(100);
  monitor.sample(at(2));  // breach 2 of 2: fires
  EXPECT_TRUE(monitor.is_firing("storm"));
  EXPECT_TRUE(monitor.is_firing("storm", "net"));  // subject = source name
  EXPECT_EQ(monitor.events().count("firing", "storm"), 1u);
  EXPECT_EQ(monitor.health().status("net"), HealthStatus::kDegraded);

  monitor.sample(at(3));  // rate 0: clear 1 of 2, still firing
  EXPECT_TRUE(monitor.is_firing("storm"));
  monitor.sample(at(4));  // clear 2 of 2: resolves
  EXPECT_FALSE(monitor.is_firing("storm"));
  EXPECT_EQ(monitor.events().count("resolved", "storm"), 1u);
  EXPECT_EQ(monitor.health().status("net"), HealthStatus::kHealthy);

  const TimeSeries* series =
      monitor.series("net", "retransmits", MetricKind::kCounterRate);
  ASSERT_NE(series, nullptr);
  EXPECT_GT(series->size(), 0u);
}

TEST(HealthMonitor, WildcardRuleIndictsCapturedSubject) {
  MetricsRegistry coord;
  Counter& wins3 = coord.counter("peer.3.hedge_wins");
  coord.counter("peer.5.hedge_wins");
  MetricsRegistry w3;
  MetricsRegistry w5;

  HealthMonitor monitor;
  monitor.add_source("coordinator", &coord);
  monitor.add_source("worker.3", &w3);
  monitor.add_source("worker.5", &w5);
  AlertRule rule = rate_rule("hedge_spike", "peer.*.hedge_wins", 0.5);
  rule.severity = AlertSeverity::kSuspect;
  rule.source_filter = "coordinator";
  rule.subject_prefix = "worker.";
  monitor.add_rule(rule);

  monitor.sample(at(0));
  wins3.add(10);
  monitor.sample(at(1));
  wins3.add(10);
  monitor.sample(at(2));

  // The coordinator-side observation indicts worker 3, not the coordinator.
  EXPECT_TRUE(monitor.is_firing("hedge_spike", "worker.3"));
  EXPECT_FALSE(monitor.is_firing("hedge_spike", "worker.5"));
  ClusterHealth health = monitor.health();
  EXPECT_EQ(health.status("worker.3"), HealthStatus::kSuspect);
  EXPECT_EQ(health.status("worker.5"), HealthStatus::kHealthy);
  EXPECT_EQ(health.status("coordinator"), HealthStatus::kHealthy);
  EXPECT_EQ(health.overall(), HealthStatus::kSuspect);
  EXPECT_NE(health.render().find("worker.3: suspect"), std::string::npos);
}

TEST(HealthMonitor, BreachIsStrictExactlyAtThreshold) {
  // The hysteresis contract at the boundary: a sample exactly AT the
  // threshold is a clear sample, not a breach (kAbove means strictly
  // above). This keeps a gauge parked at its limit from flapping.
  MetricsRegistry reg;
  Gauge& queue = reg.gauge("unacked_frames");
  HealthMonitor monitor;
  monitor.add_source("worker.1", &reg);
  AlertRule rule;
  rule.name = "queue_buildup";
  rule.metric = "unacked_frames";
  rule.kind = MetricKind::kGaugeLevel;
  rule.threshold = 64.0;
  rule.for_samples = 2;
  rule.resolve_samples = 2;
  monitor.add_rule(rule);

  queue.set(64.0);  // == threshold: never a breach
  for (int i = 0; i < 6; ++i) monitor.sample(at(i));
  EXPECT_FALSE(monitor.is_firing("queue_buildup"));

  queue.set(64.0 + 1e-9);  // the smallest excursion above is a breach
  monitor.sample(at(6));
  EXPECT_FALSE(monitor.is_firing("queue_buildup"));  // breach 1 of 2
  monitor.sample(at(7));
  EXPECT_TRUE(monitor.is_firing("queue_buildup"));  // breach 2 of 2

  // Dropping back to exactly the threshold counts toward resolution.
  queue.set(64.0);
  monitor.sample(at(8));
  EXPECT_TRUE(monitor.is_firing("queue_buildup"));  // clear 1 of 2
  monitor.sample(at(9));
  EXPECT_FALSE(monitor.is_firing("queue_buildup"));  // resolved
  EXPECT_EQ(monitor.events().count("firing", "queue_buildup"), 1u);
  EXPECT_EQ(monitor.events().count("resolved", "queue_buildup"), 1u);
}

TEST(HealthMonitor, BelowRuleArmsOnlyAfterTrafficSeen) {
  MetricsRegistry reg;
  Counter& ingested = reg.counter("ingested");
  HealthMonitor monitor;
  monitor.add_source("coordinator", &reg);
  AlertRule rule = rate_rule("ingest_stall", "ingested", 1.0);
  rule.compare = AlertComparison::kBelow;
  monitor.add_rule(rule);

  // An idle cluster that never ingested must not page.
  for (int i = 0; i < 5; ++i) monitor.sample(at(i));
  EXPECT_FALSE(monitor.is_firing("ingest_stall"));

  ingested.add(100);
  monitor.sample(at(5));  // rate 100/s: armed, no breach
  EXPECT_FALSE(monitor.is_firing("ingest_stall"));
  monitor.sample(at(6));  // stalled: breach 1
  monitor.sample(at(7));  // stalled: breach 2, fires
  EXPECT_TRUE(monitor.is_firing("ingest_stall"));
}

TEST(HealthMonitor, GaugeLevelAndHistogramMeanRules) {
  MetricsRegistry reg;
  Gauge& queue = reg.gauge("unacked_frames");
  LatencyHistogram& lat = reg.histogram("fragment_latency_us");

  HealthMonitor monitor;
  monitor.add_source("worker.1", &reg);
  AlertRule gauge_rule;
  gauge_rule.name = "queue_buildup";
  gauge_rule.metric = "unacked_frames";
  gauge_rule.kind = MetricKind::kGaugeLevel;
  gauge_rule.threshold = 64.0;
  gauge_rule.for_samples = 2;
  gauge_rule.resolve_samples = 2;
  monitor.add_rule(gauge_rule);
  AlertRule mean_rule;
  mean_rule.name = "latency_burn";
  mean_rule.metric = "fragment_latency_us";
  mean_rule.kind = MetricKind::kHistogramMean;
  mean_rule.threshold = 5'000.0;
  mean_rule.for_samples = 2;
  mean_rule.resolve_samples = 2;
  mean_rule.severity = AlertSeverity::kSuspect;
  monitor.add_rule(mean_rule);

  queue.set(100.0);
  lat.observe(20'000.0);
  monitor.sample(at(0));  // gauge breach 1; histogram window not ready
  lat.observe(20'000.0);
  monitor.sample(at(1));  // gauge fires; histogram mean 20ms breach 1
  EXPECT_TRUE(monitor.is_firing("queue_buildup"));
  lat.observe(20'000.0);
  monitor.sample(at(2));  // histogram breach 2: fires
  EXPECT_TRUE(monitor.is_firing("latency_burn"));
  // Both alerts target the same node; the worse severity wins the rollup.
  EXPECT_EQ(monitor.health().status("worker.1"), HealthStatus::kSuspect);

  // No new observations: the windowed mean has no data, which freezes the
  // streaks instead of resolving a possibly-still-sick node.
  monitor.sample(at(3));
  monitor.sample(at(4));
  EXPECT_TRUE(monitor.is_firing("latency_burn"));

  // Healthy traffic resumes: fast samples resolve the burn, and the gauge
  // dropping resolves the buildup.
  queue.set(0.0);
  lat.observe(100.0);
  monitor.sample(at(5));
  lat.observe(100.0);
  monitor.sample(at(6));
  EXPECT_FALSE(monitor.is_firing("latency_burn"));
  EXPECT_FALSE(monitor.is_firing("queue_buildup"));
  EXPECT_EQ(monitor.health().status("worker.1"), HealthStatus::kHealthy);

  obs::JsonValue v;
  std::string error;
  ASSERT_TRUE(obs::JsonValue::parse(monitor.to_json(), v, &error)) << error;
  EXPECT_GE(v.at("events").array().size(), 4u);  // 2 firing + 2 resolved
}

// --------------------------------------------------------- cluster wiring

struct Scenario {
  Trace trace;
  Rect world;

  Scenario()
      : trace(TraceGenerator::generate([] {
          TraceConfig c;
          c.roads.grid_cols = 6;
          c.roads.grid_rows = 6;
          c.cameras.camera_count = 20;
          c.mobility.object_count = 20;
          c.duration = Duration::minutes(3);
          c.seed = 777;
          return c;
        }())),
        world(trace.roads.bounds(120.0)) {}
};

Scenario& scenario() {
  static Scenario s;
  return s;
}

std::unique_ptr<Cluster> make_cluster(ClusterConfig config = {}) {
  Scenario& s = scenario();
  config.worker_count = 4;
  auto cluster = std::make_unique<Cluster>(
      s.world,
      std::make_unique<SpatialGridStrategy>(s.world, 2, 2, s.trace.cameras),
      config);
  cluster->ingest_all(s.trace.detections);
  return cluster;
}

TEST(ClusterHealthWiring, SourcesRulesAndSnapshotNamespacing) {
  auto cluster = make_cluster();
  HealthMonitor& monitor = cluster->health_monitor();
  EXPECT_GE(monitor.rules().size(), 5u);  // the default rule set

  cluster->sample_health();
  cluster->advance_time(Duration::millis(500));
  cluster->sample_health();
  EXPECT_EQ(monitor.samples_taken(), 2u);

  // Every node appears in the rollup, healthy on an unperturbed cluster.
  ClusterHealth health = cluster->health();
  EXPECT_EQ(health.status("net"), HealthStatus::kHealthy);
  EXPECT_EQ(health.status("coordinator"), HealthStatus::kHealthy);
  for (WorkerId w : cluster->worker_ids()) {
    EXPECT_EQ(health.status("worker." + std::to_string(w.value())),
              HealthStatus::kHealthy);
  }
  EXPECT_EQ(health.overall(), HealthStatus::kHealthy);

  // metrics_snapshot namespaces every node's registry without collisions:
  // per-node counters survive under their prefix and workers sum.
  MetricsRegistry snapshot = cluster->metrics_snapshot();
  EXPECT_GT(snapshot.counter("net.messages_sent").value(), 0u);
  EXPECT_EQ(snapshot.counter("coordinator.ingested").value(),
            scenario().trace.detections.size());
  EXPECT_EQ(snapshot.counter("worker.ingested_primary").value(),
            scenario().trace.detections.size());
}

TEST(ClusterHealthWiring, TickerSamplesOnSimClock) {
  ClusterConfig config;
  config.health.enabled = true;
  config.health.sample_period = Duration::millis(250);
  auto cluster = make_cluster(config);

  std::uint64_t before = cluster->health_monitor().samples_taken();
  cluster->advance_time(Duration::seconds(2));
  EXPECT_GT(cluster->health_monitor().samples_taken(), before + 3);
}

// ------------------------------------------------------------ chaos: gray

TEST(ChaosHealth, GraySlowWorkerFiresSuspectAndHealingResolves) {
  ClusterConfig config;
  config.health.enabled = true;
  config.health.sample_period = Duration::millis(250);
  auto cluster = make_cluster(config);
  Scenario& s = scenario();

  WorkerId victim = cluster->worker_ids()[1];
  std::string subject = "worker." + std::to_string(victim.value());
  cluster->network().set_slow(NodeId(victim.value()), 40.0);

  auto run_queries = [&](int n) {
    Rng rng(91);
    for (int i = 0; i < n; ++i) {
      Rect region = Rect::centered(
          {rng.uniform(s.world.min.x, s.world.max.x),
           rng.uniform(s.world.min.y, s.world.max.y)},
          rng.uniform(200.0, 600.0));
      cluster->execute(Query::range(cluster->next_query_id(), region,
                                    TimeInterval::all()));
      cluster->advance_time(Duration::millis(100));
    }
  };

  // The coordinator's per-peer stats (hedge wins raced against the slow
  // primary, fragment latency) must indict the victim within a bounded
  // number of samples.
  bool fired = false;
  std::uint64_t sample_budget =
      cluster->health_monitor().samples_taken() + 200;
  while (!fired && cluster->health_monitor().samples_taken() < sample_budget) {
    run_queries(5);
    fired = cluster->health_monitor().is_firing("hedge_win_spike", subject) ||
            cluster->health_monitor().is_firing("latency_burn", subject);
  }
  ASSERT_TRUE(fired) << "gray-slow worker never flagged;\n"
                     << cluster->health_monitor().events().render();
  EXPECT_EQ(cluster->health().status(subject), HealthStatus::kSuspect);
  EXPECT_GE(cluster->health_monitor().events().count("firing"), 1u);

  // Healing: the slowdown clears, traffic continues, the alert resolves and
  // the node returns to healthy.
  cluster->network().clear_slow(NodeId(victim.value()));
  bool resolved = false;
  sample_budget = cluster->health_monitor().samples_taken() + 200;
  while (!resolved &&
         cluster->health_monitor().samples_taken() < sample_budget) {
    run_queries(5);
    resolved =
        !cluster->health_monitor().is_firing("hedge_win_spike", subject) &&
        !cluster->health_monitor().is_firing("latency_burn", subject);
  }
  ASSERT_TRUE(resolved) << cluster->health_monitor().events().render();
  EXPECT_EQ(cluster->health().status(subject), HealthStatus::kHealthy);
  EXPECT_GE(cluster->health_monitor().events().count("resolved"), 1u);

  // The whole episode is visible in the machine-readable snapshot.
  obs::JsonValue v;
  std::string error;
  ASSERT_TRUE(
      obs::JsonValue::parse(cluster->health_monitor().to_json(), v, &error))
      << error;
  EXPECT_GE(v.at("events").array().size(), 2u);
}

// ----------------------------------------------- chaos: flight recorder

TEST(ChaosHealth, SlowWorkerFreezesPostmortemBundle) {
  ClusterConfig config;
  // Tight SLO so the injected slowdown burns error budget fast, and short
  // windows so the burn-rate series reacts within the test's horizon.
  // Sampling is manual (no ticker): a ticker would sample through the
  // bursty trace replay in make_cluster and freeze an ingest_stall bundle
  // before the first query ever runs.
  config.health.slo_latency_threshold_us = 5'000.0;
  config.health.slo_short_window = Duration::seconds(2);
  config.health.slo_long_window = Duration::seconds(10);
  auto cluster = make_cluster(config);
  Scenario& s = scenario();

  WorkerId victim = cluster->worker_ids()[1];
  cluster->network().set_slow(NodeId(victim.value()), 40.0);

  Rng rng(92);
  std::size_t drip = 0;
  auto run_queries = [&](int n) {
    for (int i = 0; i < n; ++i) {
      // Full-region scans over a random bounded time slice: the time
      // predicate drives the per-row filter kernels (nonzero rows
      // evaluated), and full coverage guarantees a fragment span on the
      // slow partition in every trace.
      double span_us = static_cast<double>(Duration::minutes(3).count_micros());
      auto start = Duration::micros(
          static_cast<std::int64_t>(rng.uniform(0.0, 0.4) * span_us));
      auto len = Duration::micros(
          static_cast<std::int64_t>(rng.uniform(0.3, 0.6) * span_us));
      TimeInterval slice{TimePoint::origin() + start,
                         TimePoint::origin() + start + len};
      cluster->execute(Query::range(cluster->next_query_id(), s.world, slice)
                           .with_tenant(1 + (i % 3)));
      // Keep ingest flowing so the stall rule stays quiet and the bundle's
      // trigger names the actual slow-worker signal.
      for (int d = 0; d < 4; ++d) {
        cluster->ingest(
            s.trace.detections[drip++ % s.trace.detections.size()]);
      }
      cluster->flush_ingest();
      cluster->advance_time(Duration::millis(100));
      cluster->sample_health();
    }
  };

  // Drive traffic until something pages and the recorder freezes a bundle.
  int rounds = 0;
  while (cluster->flight_recorder().total_frozen() == 0 && rounds < 40) {
    run_queries(5);
    ++rounds;
  }
  ASSERT_GT(cluster->flight_recorder().total_frozen(), 0u)
      << cluster->health_monitor().events().render();

  const PostmortemBundle* bundle = cluster->flight_recorder().latest();
  ASSERT_NE(bundle, nullptr);

  // 1. The trigger names the firing rule.
  EXPECT_FALSE(bundle->trigger.rule.empty());
  EXPECT_TRUE(bundle->trigger.kind == "alert" || bundle->trigger.kind == "slo")
      << bundle->trigger.kind;

  // 2. The SLO section carries the burn-rate series.
  obs::JsonValue slo;
  std::string error;
  ASSERT_TRUE(obs::JsonValue::parse(bundle->slo_json, slo, &error)) << error;
  ASSERT_TRUE(slo.is_array());
  ASSERT_FALSE(slo.array().empty());
  bool has_series = false;
  for (const auto& entry : slo.array()) {
    if (entry.has("burn_series") && !entry.at("burn_series").array().empty()) {
      has_series = true;
    }
  }
  EXPECT_TRUE(has_series) << bundle->slo_json;

  // 3. At least one exemplar trace's span tree reaches the slow partition:
  // a fragment span tagged with the victim's node id.
  ASSERT_FALSE(bundle->exemplars_json.empty());
  obs::JsonValue exemplars;
  ASSERT_TRUE(obs::JsonValue::parse(bundle->exemplars_json, exemplars, &error))
      << error;
  ASSERT_FALSE(exemplars.array().empty());
  std::string victim_id = std::to_string(victim.value());
  bool victim_in_span_tree = false;
  for (const auto& ex : exemplars.array()) {
    if (!ex.has("spans")) continue;
    for (const auto& span : ex.at("spans").array()) {
      if (span.has("worker") && span.at("worker").string() == victim_id) {
        victim_in_span_tree = true;
      }
    }
  }
  EXPECT_TRUE(victim_in_span_tree) << bundle->exemplars_json;

  // 4. The cost section's top-K rows name the dominant source: every query
  // was a tenant-tagged range scan, so by_kind leads with "range" and the
  // tenant table is populated.
  obs::JsonValue cost;
  ASSERT_TRUE(obs::JsonValue::parse(bundle->cost_json, cost, &error)) << error;
  ASSERT_TRUE(cost.at("by_kind").is_array());
  ASSERT_FALSE(cost.at("by_kind").array().empty());
  EXPECT_EQ(cost.at("by_kind").array().front().at("key").string(), "range");
  EXPECT_GT(cost.at("by_kind").array().front().at("cost").at("rows_evaluated")
                .number(),
            0.0);
  EXPECT_FALSE(cost.at("by_tenant").array().empty());

  // 5. The bundle round-trips: parse + re-serialize is byte-stable.
  std::string json = bundle->to_json();
  PostmortemBundle parsed;
  ASSERT_TRUE(parse_bundle(json, parsed));
  EXPECT_EQ(parsed.to_json(), json);
  EXPECT_EQ(parsed.trigger.rule, bundle->trigger.rule);
  EXPECT_EQ(parsed.sequence, bundle->sequence);

  // Chaos runs dump the bundle for offline inspection (ci.sh sets this).
  if (const char* path = std::getenv("STCN_BUNDLE_OUT")) {
    std::ofstream out(path);
    out << json << "\n";
  }
}

}  // namespace
}  // namespace stcn
