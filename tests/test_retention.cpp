#include <gtest/gtest.h>

#include <memory>

#include "core/framework.h"
#include "partition/strategies.h"
#include "query/executor.h"
#include "trace/generator.h"

namespace stcn {
namespace {

Detection make_detection(std::uint64_t id, Point pos, std::int64_t t_seconds,
                         std::uint64_t object = 1) {
  Detection d;
  d.id = DetectionId(id);
  d.camera = CameraId(1);
  d.object = ObjectId(object);
  d.time = TimePoint(t_seconds * 1'000'000);
  d.position = pos;
  return d;
}

TEST(Compaction, EvictsOldKeepsRecent) {
  WorkerIndexes indexes(GridIndexConfig{{{0, 0}, {100, 100}}, 10.0});
  indexes.ingest(make_detection(1, {10, 10}, 10));
  indexes.ingest(make_detection(2, {20, 20}, 20));
  indexes.ingest(make_detection(3, {30, 30}, 30));

  std::size_t evicted = indexes.compact(TimePoint(25'000'000));
  EXPECT_EQ(evicted, 2u);
  EXPECT_EQ(indexes.size(), 1u);

  // Every index agrees after the rebuild.
  auto range = indexes.grid.query_range(indexes.store, {{0, 0}, {100, 100}},
                                        TimeInterval::all());
  ASSERT_EQ(range.size(), 1u);
  EXPECT_EQ(indexes.store.get(range[0]).id, DetectionId(3));
  EXPECT_EQ(
      indexes.trajectories.query(ObjectId(1), TimeInterval::all()).size(),
      1u);
  EXPECT_EQ(
      indexes.temporal.query_camera(CameraId(1), TimeInterval::all()).size(),
      1u);
}

TEST(Compaction, NoOpWhenNothingOld) {
  WorkerIndexes indexes(GridIndexConfig{{{0, 0}, {100, 100}}, 10.0});
  indexes.ingest(make_detection(1, {10, 10}, 100));
  EXPECT_EQ(indexes.compact(TimePoint(0)), 0u);
  EXPECT_EQ(indexes.size(), 1u);
}

TEST(Compaction, EvictEverything) {
  WorkerIndexes indexes(GridIndexConfig{{{0, 0}, {100, 100}}, 10.0});
  for (std::uint64_t i = 1; i <= 10; ++i) {
    indexes.ingest(make_detection(i, {10, 10}, static_cast<std::int64_t>(i)));
  }
  EXPECT_EQ(indexes.compact(TimePoint::max()), 10u);
  EXPECT_EQ(indexes.size(), 0u);
  EXPECT_TRUE(indexes.grid
                  .query_range(indexes.store, {{0, 0}, {100, 100}},
                               TimeInterval::all())
                  .empty());
}

TEST(Compaction, IngestAfterCompactionWorks) {
  WorkerIndexes indexes(GridIndexConfig{{{0, 0}, {100, 100}}, 10.0});
  indexes.ingest(make_detection(1, {10, 10}, 10));
  indexes.compact(TimePoint::max());
  indexes.ingest(make_detection(2, {20, 20}, 20));
  auto range = indexes.grid.query_range(indexes.store, {{0, 0}, {100, 100}},
                                        TimeInterval::all());
  ASSERT_EQ(range.size(), 1u);
  EXPECT_EQ(indexes.store.get(range[0]).id, DetectionId(2));
}

TEST(Retention, ClusterEvictsBeyondWindow) {
  TraceConfig tc;
  tc.roads.grid_cols = 6;
  tc.roads.grid_rows = 6;
  tc.cameras.camera_count = 20;
  tc.mobility.object_count = 15;
  tc.duration = Duration::minutes(4);
  Trace trace = TraceGenerator::generate(tc);
  Rect world = trace.roads.bounds(120.0);

  ClusterConfig config;
  config.worker_count = 3;
  config.retention = Duration::minutes(1);
  Cluster cluster(
      world,
      std::make_unique<SpatialGridStrategy>(world, 2, 2, trace.cameras),
      config);
  cluster.ingest_all(trace.detections);
  // Let the compaction ticks run past the end of the trace.
  cluster.advance_time(Duration::minutes(2));

  // Everything older than (now - 1 min) must be gone; the freshest slice
  // must survive. Query the full timeline and inspect what remains.
  QueryResult remaining = cluster.execute(
      Query::range(cluster.next_query_id(), world, TimeInterval::all()));
  TimePoint now = cluster.now();
  for (const Detection& d : remaining.detections) {
    EXPECT_GE(d.time, now - Duration::minutes(1) - Duration::seconds(31))
        << "stale detection survived retention";
  }
  EXPECT_LT(remaining.detections.size(), trace.detections.size());

  std::uint64_t evicted = 0;
  for (WorkerId w : cluster.worker_ids()) {
    evicted += cluster.worker(w).counters().get("detections_evicted");
  }
  EXPECT_GT(evicted, 0u);
}

TEST(Retention, DisabledByDefault) {
  TraceConfig tc;
  tc.roads.grid_cols = 6;
  tc.roads.grid_rows = 6;
  tc.cameras.camera_count = 15;
  tc.mobility.object_count = 10;
  tc.duration = Duration::minutes(3);
  Trace trace = TraceGenerator::generate(tc);
  Rect world = trace.roads.bounds(120.0);

  ClusterConfig config;
  config.worker_count = 2;
  Cluster cluster(
      world,
      std::make_unique<SpatialGridStrategy>(world, 2, 2, trace.cameras),
      config);
  cluster.ingest_all(trace.detections);
  cluster.advance_time(Duration::minutes(10));
  QueryResult all = cluster.execute(
      Query::range(cluster.next_query_id(), world, TimeInterval::all()));
  EXPECT_EQ(all.detections.size(), trace.detections.size());
}

}  // namespace
}  // namespace stcn
