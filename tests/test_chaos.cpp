// Chaos testing: randomized interleavings of ingest, queries, crashes,
// restarts, and time advances. Invariants checked at every step:
//   * the cluster never returns a detection the oracle doesn't have;
//   * whenever every worker is up and resynced, answers are complete;
//   * during failures, answers remain complete while each partition keeps
//     at least one live replica;
//   * the system never deadlocks (every operation terminates).
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "baseline/centralized.h"
#include "core/framework.h"
#include "partition/strategies.h"
#include "trace/generator.h"

namespace stcn {
namespace {

class ChaosTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosTest, InvariantsHoldUnderRandomOperations) {
  TraceConfig tc;
  tc.roads.grid_cols = 6;
  tc.roads.grid_rows = 6;
  tc.cameras.camera_count = 18;
  tc.mobility.object_count = 15;
  tc.duration = Duration::minutes(5);
  tc.seed = GetParam();
  Trace trace = TraceGenerator::generate(tc);
  Rect world = trace.roads.bounds(120.0);

  ClusterConfig config;
  config.worker_count = 5;
  config.coordinator.query_timeout = Duration::millis(20);
  Cluster cluster(
      world,
      std::make_unique<SpatialGridStrategy>(world, 3, 3, trace.cameras),
      config);
  CentralizedIndex oracle(world);

  Rng rng(GetParam() * 7919);
  std::set<WorkerId> down;
  std::size_t cursor = 0;
  std::set<std::uint64_t> ingested_ids;

  auto everything_replicated = [&] {
    // With one worker down and replication 2, some partition may have its
    // only live copy on the dead worker ONLY if both replicas are down.
    if (down.size() >= 2) return false;
    if (down.empty()) return true;
    const PartitionMap& map = cluster.coordinator().partition_map();
    for (std::size_t p = 0; p < map.partition_count(); ++p) {
      bool primary_down = down.contains(map.primary(PartitionId(p)));
      bool backup_down = down.contains(map.backup(PartitionId(p)));
      if (primary_down && backup_down) return false;
    }
    return true;
  };

  for (int step = 0; step < 60; ++step) {
    switch (rng.uniform_index(6)) {
      case 0:
      case 1: {  // ingest a batch
        std::size_t n = std::min<std::size_t>(
            30 + rng.uniform_index(60), trace.detections.size() - cursor);
        if (n == 0) break;
        cluster.ingest_all(std::span<const Detection>(
            trace.detections.data() + cursor, n));
        for (std::size_t i = 0; i < n; ++i) {
          oracle.ingest(trace.detections[cursor + i]);
          ingested_ids.insert(trace.detections[cursor + i].id.value());
        }
        cursor += n;
        break;
      }
      case 2: {  // random range query
        Rect region = Rect::centered(
            {rng.uniform(world.min.x, world.max.x),
             rng.uniform(world.min.y, world.max.y)},
            rng.uniform(50.0, 800.0));
        Query q = Query::range(cluster.next_query_id(), region,
                               TimeInterval::all());
        QueryResult got = cluster.execute(q);
        std::set<std::uint64_t> got_ids;
        for (const Detection& d : got.detections) {
          got_ids.insert(d.id.value());
          // Soundness: never invent detections.
          ASSERT_TRUE(ingested_ids.contains(d.id.value()))
              << "phantom detection at step " << step;
        }
        if (everything_replicated()) {
          QueryResult want = oracle.execute(q);
          std::set<std::uint64_t> want_ids;
          for (const Detection& d : want.detections) {
            want_ids.insert(d.id.value());
          }
          ASSERT_EQ(got_ids, want_ids) << "incomplete at step " << step
                                       << " with " << down.size()
                                       << " workers down";
        }
        break;
      }
      case 3: {  // crash a random up worker (keep at most one down)
        if (!down.empty()) break;
        WorkerId victim(1 + rng.uniform_index(config.worker_count));
        cluster.crash_worker(victim);
        down.insert(victim);
        break;
      }
      case 4: {  // restart a down worker
        if (down.empty()) break;
        WorkerId w = *down.begin();
        cluster.restart_worker(w);
        down.erase(w);
        break;
      }
      case 5: {  // let time pass (ticks, summaries, failure sweeps)
        cluster.advance_time(
            Duration::seconds(1 + static_cast<std::int64_t>(
                                      rng.uniform_index(8))));
        break;
      }
    }
  }

  // Final: restore everything, verify full consistency.
  for (WorkerId w : down) cluster.restart_worker(w);
  Query final_q = Query::range(cluster.next_query_id(), world,
                               TimeInterval::all());
  QueryResult got = cluster.execute(final_q);
  QueryResult want = oracle.execute(final_q);
  std::set<std::uint64_t> got_ids;
  std::set<std::uint64_t> want_ids;
  for (const Detection& d : got.detections) got_ids.insert(d.id.value());
  for (const Detection& d : want.detections) want_ids.insert(d.id.value());
  EXPECT_EQ(got_ids, want_ids) << "final state diverged";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace stcn
