// Chaos testing: randomized interleavings of ingest, queries, crashes,
// restarts, and time advances. Invariants checked at every step:
//   * the cluster never returns a detection the oracle doesn't have;
//   * whenever every worker is up and resynced, answers are complete;
//   * during failures, answers remain complete while each partition keeps
//     at least one live replica;
//   * the system never deadlocks (every operation terminates).
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>

#include "baseline/centralized.h"
#include "core/framework.h"
#include "partition/strategies.h"
#include "trace/generator.h"

namespace stcn {
namespace {

class ChaosTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosTest, InvariantsHoldUnderRandomOperations) {
  TraceConfig tc;
  tc.roads.grid_cols = 6;
  tc.roads.grid_rows = 6;
  tc.cameras.camera_count = 18;
  tc.mobility.object_count = 15;
  tc.duration = Duration::minutes(5);
  tc.seed = GetParam();
  Trace trace = TraceGenerator::generate(tc);
  Rect world = trace.roads.bounds(120.0);

  ClusterConfig config;
  config.worker_count = 5;
  config.coordinator.query_timeout = Duration::millis(20);
  Cluster cluster(
      world,
      std::make_unique<SpatialGridStrategy>(world, 3, 3, trace.cameras),
      config);
  CentralizedIndex oracle(world);

  Rng rng(GetParam() * 7919);
  std::set<WorkerId> down;
  std::size_t cursor = 0;
  std::set<std::uint64_t> ingested_ids;

  auto everything_replicated = [&] {
    // With one worker down and replication 2, some partition may have its
    // only live copy on the dead worker ONLY if both replicas are down.
    if (down.size() >= 2) return false;
    if (down.empty()) return true;
    const PartitionMap& map = cluster.coordinator().partition_map();
    for (std::size_t p = 0; p < map.partition_count(); ++p) {
      bool primary_down = down.contains(map.primary(PartitionId(p)));
      bool backup_down = down.contains(map.backup(PartitionId(p)));
      if (primary_down && backup_down) return false;
    }
    return true;
  };

  for (int step = 0; step < 60; ++step) {
    switch (rng.uniform_index(6)) {
      case 0:
      case 1: {  // ingest a batch
        std::size_t n = std::min<std::size_t>(
            30 + rng.uniform_index(60), trace.detections.size() - cursor);
        if (n == 0) break;
        cluster.ingest_all(std::span<const Detection>(
            trace.detections.data() + cursor, n));
        for (std::size_t i = 0; i < n; ++i) {
          oracle.ingest(trace.detections[cursor + i]);
          ingested_ids.insert(trace.detections[cursor + i].id.value());
        }
        cursor += n;
        break;
      }
      case 2: {  // random range query
        Rect region = Rect::centered(
            {rng.uniform(world.min.x, world.max.x),
             rng.uniform(world.min.y, world.max.y)},
            rng.uniform(50.0, 800.0));
        Query q = Query::range(cluster.next_query_id(), region,
                               TimeInterval::all());
        QueryResult got = cluster.execute(q);
        std::set<std::uint64_t> got_ids;
        for (const Detection& d : got.detections) {
          got_ids.insert(d.id.value());
          // Soundness: never invent detections.
          ASSERT_TRUE(ingested_ids.contains(d.id.value()))
              << "phantom detection at step " << step;
        }
        if (everything_replicated()) {
          QueryResult want = oracle.execute(q);
          std::set<std::uint64_t> want_ids;
          for (const Detection& d : want.detections) {
            want_ids.insert(d.id.value());
          }
          ASSERT_EQ(got_ids, want_ids) << "incomplete at step " << step
                                       << " with " << down.size()
                                       << " workers down";
        }
        break;
      }
      case 3: {  // crash a random up worker (keep at most one down)
        if (!down.empty()) break;
        WorkerId victim(1 + rng.uniform_index(config.worker_count));
        cluster.crash_worker(victim);
        down.insert(victim);
        break;
      }
      case 4: {  // restart a down worker
        if (down.empty()) break;
        WorkerId w = *down.begin();
        cluster.restart_worker(w);
        down.erase(w);
        break;
      }
      case 5: {  // let time pass (ticks, summaries, failure sweeps)
        cluster.advance_time(
            Duration::seconds(1 + static_cast<std::int64_t>(
                                      rng.uniform_index(8))));
        break;
      }
    }
  }

  // Final: restore everything, verify full consistency.
  for (WorkerId w : down) cluster.restart_worker(w);
  Query final_q = Query::range(cluster.next_query_id(), world,
                               TimeInterval::all());
  QueryResult got = cluster.execute(final_q);
  QueryResult want = oracle.execute(final_q);
  std::set<std::uint64_t> got_ids;
  std::set<std::uint64_t> want_ids;
  for (const Detection& d : got.detections) got_ids.insert(d.id.value());
  for (const Detection& d : want.detections) want_ids.insert(d.id.value());
  EXPECT_EQ(got_ids, want_ids) << "final state diverged";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// Fabric-fault chaos: drops, duplication, partitions, and gray failures (no
// crashes — the suite above owns those). Core invariant: *no acked detection
// is ever absent from a healthy-cluster answer* — once the reliable channels
// are quiescent (every frame acked, none abandoned) and no partition is
// active, answers must match the oracle exactly.

class FabricChaosTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FabricChaosTest, NoAckedDetectionLostOnFaultyFabric) {
  TraceConfig tc;
  tc.roads.grid_cols = 6;
  tc.roads.grid_rows = 6;
  tc.cameras.camera_count = 18;
  tc.mobility.object_count = 15;
  tc.duration = Duration::minutes(4);
  tc.seed = GetParam() * 31 + 7;
  Trace trace = TraceGenerator::generate(tc);
  Rect world = trace.roads.bounds(120.0);

  ClusterConfig config;
  config.worker_count = 5;
  // Generous relative to the retransmit RTO (10ms): a transiently dropped
  // query frame should be healed by the channel, not escalate into
  // failover (which permanently degrades the partition map).
  config.coordinator.query_timeout = Duration::millis(200);
  config.network.drop_probability = 0.05;
  config.network.duplicate_probability = 0.02;
  config.network.seed = GetParam() * 13 + 1;
  // Ingest advances virtual time to detection timestamps, so a partition
  // can stay up for tens of virtual seconds; the retransmission ladder must
  // outlive it or the invariant degrades into exhaustion.
  config.reliable.max_attempts = 200;
  Cluster cluster(
      world,
      std::make_unique<SpatialGridStrategy>(world, 3, 3, trace.cameras),
      config);
  CentralizedIndex oracle(world);

  Rng rng(GetParam() * 104729);
  std::size_t cursor = 0;
  std::set<std::uint64_t> ingested_ids;
  bool partition_active = false;
  int partition_age = 0;
  std::optional<NodeId> slow_node;

  auto quiesce = [&] {
    auto settled = [&] {
      if (cluster.coordinator().unacked_frames() != 0) return false;
      for (WorkerId w : cluster.worker_ids()) {
        if (cluster.worker(w).unacked_frames() != 0) return false;
      }
      return true;
    };
    while (!settled()) {
      if (!cluster.network().step()) break;
    }
  };

  auto exhausted_frames = [&] {
    std::uint64_t n =
        cluster.coordinator().counters().get("retransmit_exhausted");
    for (WorkerId w : cluster.worker_ids()) {
      n += cluster.worker(w).counters().get("retransmit_exhausted");
    }
    return n;
  };

  auto cut_off = [&](WorkerId victim) {
    // Partition the victim from the coordinator and every other worker.
    std::vector<NodeId> rest{NodeId(1'000'000)};
    for (WorkerId w : cluster.worker_ids()) {
      if (w != victim) rest.push_back(NodeId(w.value()));
    }
    cluster.network().partition({NodeId(victim.value())}, rest);
  };

  for (int step = 0; step < 60; ++step) {
    // Bound how long a partition lives: the retransmission ladder spans
    // ~13 virtual seconds, and the invariant is about *acked* data — an
    // everlasting partition would just exhaust every frame.
    if (partition_active && ++partition_age >= 3) {
      cluster.network().heal();
      partition_active = false;
      cluster.advance_time(Duration::seconds(2));
    }
    switch (rng.uniform_index(8)) {
      case 0:
      case 1: {  // ingest a batch
        std::size_t n = std::min<std::size_t>(
            30 + rng.uniform_index(60), trace.detections.size() - cursor);
        if (n == 0) break;
        cluster.ingest_all(std::span<const Detection>(
            trace.detections.data() + cursor, n));
        for (std::size_t i = 0; i < n; ++i) {
          oracle.ingest(trace.detections[cursor + i]);
          ingested_ids.insert(trace.detections[cursor + i].id.value());
        }
        cursor += n;
        break;
      }
      case 2:
      case 3: {  // random range query
        Rect region = Rect::centered(
            {rng.uniform(world.min.x, world.max.x),
             rng.uniform(world.min.y, world.max.y)},
            rng.uniform(50.0, 800.0));
        Query q = Query::range(cluster.next_query_id(), region,
                               TimeInterval::all());
        if (!partition_active) quiesce();
        QueryResult got = cluster.execute(q);
        std::set<std::uint64_t> got_ids;
        for (const Detection& d : got.detections) {
          got_ids.insert(d.id.value());
          ASSERT_TRUE(ingested_ids.contains(d.id.value()))
              << "phantom detection at step " << step;
        }
        if (!partition_active && exhausted_frames() == 0) {
          QueryResult want = oracle.execute(q);
          std::set<std::uint64_t> want_ids;
          for (const Detection& d : want.detections) {
            want_ids.insert(d.id.value());
          }
          ASSERT_EQ(got_ids, want_ids)
              << "acked detection missing at step " << step;
        }
        break;
      }
      case 4: {  // partition a worker away
        if (partition_active) break;
        WorkerId victim(1 + rng.uniform_index(config.worker_count));
        cut_off(victim);
        partition_active = true;
        partition_age = 0;
        break;
      }
      case 5: {  // heal
        if (!partition_active) break;
        cluster.network().heal();
        partition_active = false;
        cluster.advance_time(Duration::seconds(2));
        break;
      }
      case 6: {  // toggle a gray failure
        if (slow_node) {
          cluster.network().clear_slow(*slow_node);
          slow_node.reset();
        } else {
          NodeId n(1 + rng.uniform_index(config.worker_count));
          cluster.network().set_slow(n, 50.0);
          slow_node = n;
        }
        break;
      }
      case 7: {  // let time pass (ticks, sweeps, retransmissions)
        cluster.advance_time(Duration::seconds(
            1 + static_cast<std::int64_t>(rng.uniform_index(4))));
        break;
      }
    }
  }

  // Partition-then-heal convergence: cut a worker off, ingest THROUGH the
  // partition (frames to the cut worker keep retransmitting), heal, drain.
  if (!partition_active) {
    cut_off(WorkerId(2));
    partition_active = true;
  }
  std::size_t tail = std::min<std::size_t>(
      80, trace.detections.size() - cursor);
  if (tail > 0) {
    cluster.ingest_all(std::span<const Detection>(
        trace.detections.data() + cursor, tail));
    for (std::size_t i = 0; i < tail; ++i) {
      oracle.ingest(trace.detections[cursor + i]);
      ingested_ids.insert(trace.detections[cursor + i].id.value());
    }
    cursor += tail;
  }
  cluster.network().heal();
  if (slow_node) cluster.network().clear_slow(*slow_node);
  quiesce();
  cluster.advance_time(Duration::seconds(5));

  EXPECT_EQ(exhausted_frames(), 0u)
      << "retransmission ladder should outlive every injected partition";
  Query final_q = Query::range(cluster.next_query_id(), world,
                               TimeInterval::all());
  QueryResult got = cluster.execute(final_q);
  QueryResult want = oracle.execute(final_q);
  std::set<std::uint64_t> got_ids;
  std::set<std::uint64_t> want_ids;
  for (const Detection& d : got.detections) got_ids.insert(d.id.value());
  for (const Detection& d : want.detections) want_ids.insert(d.id.value());
  EXPECT_EQ(got_ids, want_ids) << "state diverged after partition healed";
}

INSTANTIATE_TEST_SUITE_P(Seeds, FabricChaosTest,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

}  // namespace
}  // namespace stcn
