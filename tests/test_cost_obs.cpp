// Cost ledger, exemplar-linked histograms, SLO burn-rate engine, and the
// flight recorder: unit coverage for the sketch's conservation invariant,
// the exemplar export formats, burn-rate math against hand-computed
// windows, and bundle freezing/round-tripping — plus cluster-level
// integration (tenant attribution, EXPLAIN cost stage, slow-log cost
// lines, Prometheus HELP output).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/framework.h"
#include "obs/cost.h"
#include "obs/flight_recorder.h"
#include "obs/slo.h"
#include "partition/strategies.h"
#include "trace/generator.h"

namespace stcn {
namespace {

TimePoint at(int seconds) {
  return TimePoint::origin() + Duration::seconds(seconds);
}

// ------------------------------------------------------------ cost vector

TEST(CostVector, AddAccumulatesEveryAxis) {
  CostVector a;
  a.rows_evaluated = 10;
  a.bytes_in = 100;
  a.hedges = 1;
  CostVector b;
  b.rows_evaluated = 5;
  b.bytes_in = 50;
  b.retransmits = 2;
  a.add(b);
  EXPECT_EQ(a.rows_evaluated, 15u);
  EXPECT_EQ(a.bytes_in, 150u);
  EXPECT_EQ(a.hedges, 1u);
  EXPECT_EQ(a.retransmits, 2u);
}

TEST(CostVector, SummaryMentionsHedgesOnlyWhenPresent) {
  CostVector c;
  c.rows_evaluated = 812;
  c.bytes_out = 40;
  c.bytes_in = 9211;
  std::string quiet = c.summary();
  EXPECT_NE(quiet.find("rows_eval=812"), std::string::npos);
  EXPECT_NE(quiet.find("bytes=40/9211"), std::string::npos);
  EXPECT_EQ(quiet.find("hedges="), std::string::npos);
  c.hedges = 3;
  c.retransmits = 1;
  std::string noisy = c.summary();
  EXPECT_NE(noisy.find("hedges=3"), std::string::npos);
  EXPECT_NE(noisy.find("rtx=1"), std::string::npos);
}

// ---------------------------------------------------------- top-K sketch

TEST(TopKSketch, TracksHeavyHitterExactlyUnderCapacity) {
  TopKSketch sketch(4);
  CostVector unit;
  unit.rows_evaluated = 10;
  for (int i = 0; i < 7; ++i) sketch.update("whale", unit);
  sketch.update("minnow", unit);
  auto rows = sketch.top();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].key, "whale");
  EXPECT_EQ(rows[0].count, 7u);
  EXPECT_EQ(rows[0].error, 0u);
  EXPECT_EQ(rows[0].cost.rows_evaluated, 70u);
  EXPECT_EQ(rows[1].key, "minnow");
}

TEST(TopKSketch, EvictionConservesCountAndCost) {
  // Feed 3x more distinct keys than capacity. Space-saving eviction folds
  // the victim's tally into the newcomer, so the sketch's rows must still
  // sum to everything ever inserted — the invariant ci.sh checks on bench
  // output.
  TopKSketch sketch(4);
  std::uint64_t fed_rows = 0;
  for (int i = 0; i < 12; ++i) {
    CostVector c;
    c.rows_evaluated = static_cast<std::uint64_t>(100 + i);
    fed_rows += c.rows_evaluated;
    sketch.update("key" + std::to_string(i), c);
  }
  auto rows = sketch.top();
  ASSERT_EQ(rows.size(), 4u);
  std::uint64_t total_count = 0;
  std::uint64_t total_rows = 0;
  bool saw_inherited = false;
  for (const auto& r : rows) {
    total_count += r.count;
    total_rows += r.cost.rows_evaluated;
    if (r.error > 0) saw_inherited = true;
    EXPECT_LE(r.error, r.count);
  }
  EXPECT_EQ(total_count, 12u);
  EXPECT_EQ(total_rows, fed_rows);
  EXPECT_TRUE(saw_inherited);  // evictions definitely happened
}

TEST(ResourceLedger, DimensionsSumToTotalsEvenPastCapacity) {
  ResourceLedgerConfig config;
  config.top_k = 3;
  config.recent_rows = 4;
  ResourceLedger ledger(config);
  // 10 tenants through a 3-row sketch; rows must still conserve.
  for (int i = 0; i < 20; ++i) {
    CostRecord rec;
    rec.request_id = static_cast<std::uint64_t>(i);
    rec.kind = (i % 2 == 0) ? "range" : "knn";
    rec.tenant = static_cast<std::uint32_t>(i % 10);
    rec.cost.rows_evaluated = static_cast<std::uint64_t>(50 + i);
    rec.cost.bytes_in = 10;
    ledger.record(rec);
  }
  EXPECT_EQ(ledger.queries(), 20u);
  auto conserve = [&](const TopKSketch& dim) {
    std::uint64_t rows = 0;
    std::uint64_t count = 0;
    for (const auto& r : dim.top()) {
      rows += r.cost.rows_evaluated;
      count += r.count;
    }
    EXPECT_EQ(rows, ledger.totals().rows_evaluated);
    EXPECT_EQ(count, ledger.queries());
  };
  conserve(ledger.by_kind());
  conserve(ledger.by_tenant());
  EXPECT_EQ(ledger.recent().size(), 4u);  // ring kept the newest only

  // Totals mirror into the registry for the Prometheus path.
  auto it = ledger.metrics().counters().find("rows_evaluated");
  ASSERT_NE(it, ledger.metrics().counters().end());
  EXPECT_EQ(it->second->value(), ledger.totals().rows_evaluated);

  // JSON export parses and carries all three dimensions.
  obs::JsonValue v;
  std::string error;
  ASSERT_TRUE(obs::JsonValue::parse(ledger.to_json(), v, &error)) << error;
  EXPECT_EQ(v.at("queries").number(), 20.0);
  EXPECT_EQ(v.at("by_kind").array().size(), 2u);
  EXPECT_LE(v.at("by_tenant").array().size(), 3u);
  EXPECT_EQ(v.at("recent").array().size(), 4u);
}

TEST(ResourceLedger, CountQueriesCarryNoCameraAttribution) {
  ResourceLedger ledger;
  CostRecord rec;
  rec.kind = "count";
  rec.cost.rows_evaluated = 5;
  ledger.record(rec);  // hottest_camera defaults to kNoCamera
  EXPECT_EQ(ledger.by_camera().size(), 0u);
  EXPECT_EQ(ledger.by_kind().size(), 1u);
}

// -------------------------------------------------------------- exemplars

TEST(Exemplars, BucketKeepsMostRecentTraceAndExportsBothFormats) {
  MetricsRegistry reg;
  LatencyHistogram& h =
      reg.histogram("query_latency_us", "End-to-end query latency");
  h.observe(700.0);
  h.set_exemplar(700.0, 41, "rows_eval=1");
  h.observe(900.0);
  h.set_exemplar(900.0, 42, "rows_eval=812 bytes=40/9211");

  // 700 and 900 land in the same log2 bucket; the newer pin wins.
  const Exemplar* e = h.exemplar(h.bucket_index(900.0));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->trace_id, 42u);
  EXPECT_DOUBLE_EQ(e->value, 900.0);
  EXPECT_EQ(e->summary, "rows_eval=812 bytes=40/9211");
  EXPECT_EQ(h.exemplar_count(), 1u);

  // Prometheus: HELP line plus OpenMetrics exemplar annotation.
  std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("# HELP stcn_query_latency_us End-to-end query latency"),
            std::string::npos);
  EXPECT_NE(prom.find("# {trace_id=\"42\"} 900"), std::string::npos);

  // JSON: exemplars round-trip through metrics_registry_from_json.
  MetricsRegistry back;
  ASSERT_TRUE(metrics_registry_from_json(reg.to_json(), back));
  auto it = back.histograms().find("query_latency_us");
  ASSERT_NE(it, back.histograms().end());
  const Exemplar* rt = it->second->exemplar(it->second->bucket_index(900.0));
  ASSERT_NE(rt, nullptr);
  EXPECT_EQ(rt->trace_id, 42u);
  EXPECT_EQ(rt->summary, "rows_eval=812 bytes=40/9211");
}

TEST(Exemplars, CountAtOrBelowInterpolatesWithinBuckets) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.observe(1000.0);  // bucket [512, 1024)
  EXPECT_DOUBLE_EQ(h.count_at_or_below(2048.0), 100.0);
  EXPECT_DOUBLE_EQ(h.count_at_or_below(100.0), 0.0);
  // Inside the bucket: linear interpolation, monotone in the threshold.
  double lo = h.count_at_or_below(600.0);
  double hi = h.count_at_or_below(900.0);
  EXPECT_GT(lo, 0.0);
  EXPECT_LT(hi, 100.0);
  EXPECT_LT(lo, hi);
}

// ------------------------------------------------------------- SLO engine

struct SloHarness {
  MetricsRegistry reg;
  Counter& total;
  Counter& bad;
  HealthMonitor monitor;
  SloEngine engine;

  SloHarness()
      : total(reg.counter("queries_submitted")),
        bad(reg.counter("queries_partial")),
        monitor(),
        engine(monitor, 64) {
    engine.add_source("coordinator", &reg);
    SloSpec spec;
    spec.kind = SloSpec::Kind::kAvailability;
    spec.name = "avail";
    spec.total_metric = "queries_submitted";
    spec.bad_metric = "queries_partial";
    spec.objective = 0.99;  // 1% error budget
    spec.short_window = Duration::seconds(5);
    spec.long_window = Duration::seconds(20);
    spec.burn_threshold = 1.0;
    spec.for_samples = 2;
    spec.resolve_samples = 2;
    engine.add_slo(spec);
  }
};

TEST(SloEngine, BurnRateMatchesHandComputedWindow) {
  SloHarness x;
  // 100 queries/second, all good: burn 0.
  for (int t = 0; t <= 10; ++t) {
    x.total.add(100);
    x.engine.sample(at(t));
  }
  auto status = x.engine.status();
  ASSERT_EQ(status.size(), 1u);
  EXPECT_DOUBLE_EQ(status[0].short_burn, 0.0);
  EXPECT_FALSE(status[0].firing);

  // 10% of traffic goes bad: error rate 0.1 against a 1% budget is a
  // burn rate of 10 in the short window.
  for (int t = 11; t <= 16; ++t) {
    x.total.add(100);
    x.bad.add(10);
    x.engine.sample(at(t));
  }
  status = x.engine.status();
  EXPECT_NEAR(status[0].short_burn, 10.0, 1.0);
  EXPECT_GT(status[0].long_burn, 1.0);
  // min(short, long) crossed 1.0 for >= 2 samples: the rule fires through
  // the shared monitor with its hysteresis.
  EXPECT_TRUE(status[0].firing);
  EXPECT_TRUE(x.monitor.is_firing("slo:avail"));

  // Traffic heals; the short window clears first, and once the long
  // window drains the alert resolves.
  for (int t = 17; t <= 45; ++t) {
    x.total.add(100);
    x.engine.sample(at(t));
  }
  status = x.engine.status();
  EXPECT_DOUBLE_EQ(status[0].short_burn, 0.0);
  EXPECT_FALSE(status[0].firing);
  EXPECT_GE(x.monitor.events().count("resolved", "slo:avail"), 1u);

  // The burn series ring retained the episode for the flight recorder.
  const TimeSeries* burn = x.engine.burn_series("avail", true);
  ASSERT_NE(burn, nullptr);
  double peak = 0.0;
  for (std::size_t i = 0; i < burn->size(); ++i) {
    peak = std::max(peak, burn->at(i));
  }
  EXPECT_GT(peak, 5.0);
}

TEST(SloEngine, LatencySloCountsSlowFractionAgainstObjective) {
  MetricsRegistry reg;
  LatencyHistogram& lat = reg.histogram("query_latency_us");
  HealthMonitor monitor;
  SloEngine engine(monitor, 64);
  engine.add_source("coordinator", &reg);
  SloSpec spec;
  spec.kind = SloSpec::Kind::kLatency;
  spec.name = "latency";
  spec.latency_metric = "query_latency_us";
  spec.latency_threshold_us = 4096.0;  // a bucket boundary: no interpolation
  spec.objective = 0.90;               // 10% may be slow
  spec.short_window = Duration::seconds(5);
  spec.long_window = Duration::seconds(20);
  engine.add_slo(spec);

  // All fast: no burn.
  for (int t = 0; t <= 6; ++t) {
    for (int i = 0; i < 50; ++i) lat.observe(1000.0);
    engine.sample(at(t));
  }
  EXPECT_DOUBLE_EQ(engine.status()[0].short_burn, 0.0);

  // Half the traffic goes slow: error rate 0.5 against a 0.1 budget → 5.
  for (int t = 7; t <= 12; ++t) {
    for (int i = 0; i < 25; ++i) lat.observe(1000.0);
    for (int i = 0; i < 25; ++i) lat.observe(100'000.0);
    engine.sample(at(t));
  }
  EXPECT_NEAR(engine.status()[0].short_burn, 5.0, 0.5);
  EXPECT_TRUE(monitor.is_firing("slo:latency"));
}

TEST(SloEngine, MissingSourceReportsNothingAndNeverFires) {
  HealthMonitor monitor;
  SloEngine engine(monitor, 8);
  SloSpec spec;
  spec.name = "ghost";
  spec.total_metric = "nope";
  spec.bad_metric = "nada";
  engine.add_slo(spec);
  for (int t = 0; t < 5; ++t) engine.sample(at(t));
  ASSERT_EQ(engine.status().size(), 1u);
  EXPECT_FALSE(engine.status()[0].firing);
  EXPECT_EQ(engine.status()[0].total, 0u);
}

// -------------------------------------------------------- flight recorder

TEST(FlightRecorder, FrameRingEvictsOldestAndBundleCapHolds) {
  FlightRecorderConfig config;
  config.frame_capacity = 3;
  config.max_bundles = 2;
  FlightRecorder rec(config);
  for (int i = 0; i < 5; ++i) {
    rec.record_frame(at(i), "{\"i\":" + std::to_string(i) + "}");
  }
  ASSERT_EQ(rec.frames().size(), 3u);
  EXPECT_EQ(rec.frames().front().data_json, "{\"i\":2}");
  EXPECT_EQ(rec.frames().back().data_json, "{\"i\":4}");

  for (int i = 0; i < 4; ++i) {
    FlightTrigger t;
    t.kind = "alert";
    t.rule = "rule" + std::to_string(i);
    rec.freeze(at(10 + i), t, {});
  }
  EXPECT_EQ(rec.total_frozen(), 4u);
  ASSERT_EQ(rec.bundles().size(), 2u);  // capped, oldest dropped
  EXPECT_EQ(rec.bundles().front().trigger.rule, "rule2");
  ASSERT_NE(rec.latest(), nullptr);
  EXPECT_EQ(rec.latest()->trigger.rule, "rule3");
  // Sequence numbers keep counting even as old bundles fall off.
  EXPECT_EQ(rec.latest()->sequence, 4u);
}

TEST(FlightRecorder, BundleJsonRoundTripsByteStable) {
  FlightRecorder rec;
  rec.record_frame(at(1), "{\"queries\":10,\"firing\":0}");
  FlightTrigger t;
  t.kind = "slo";
  t.rule = "slo:query_latency";
  t.subject = "coordinator";
  t.severity = "degraded";
  t.value = 14.5;
  t.threshold = 1.0;
  FlightRecorder::Sections s;
  s.slo_json = "{\"slos\":[{\"name\":\"query_latency\",\"burn\":14.5}]}";
  s.cost_json = "{\"queries\":10,\"by_tenant\":[]}";
  s.exemplars_json = "[{\"trace_id\":42,\"bucket\":11}]";
  s.events_json = "[{\"kind\":\"firing\",\"rule\":\"slo:query_latency\"}]";
  s.config_json = "{\"worker_count\":4}";
  const PostmortemBundle& bundle = rec.freeze(at(2), t, std::move(s));

  std::string json = bundle.to_json();
  PostmortemBundle parsed;
  ASSERT_TRUE(parse_bundle(json, parsed));
  EXPECT_EQ(parsed.trigger.kind, "slo");
  EXPECT_EQ(parsed.trigger.rule, "slo:query_latency");
  EXPECT_DOUBLE_EQ(parsed.trigger.value, 14.5);
  EXPECT_EQ(parsed.frozen_at, at(2));
  EXPECT_EQ(parsed.to_json(), json);  // byte-stable round trip

  PostmortemBundle garbage;
  EXPECT_FALSE(parse_bundle("not json", garbage));
  EXPECT_FALSE(parse_bundle("{\"sequence\":1}", garbage));
}

// -------------------------------------------------- cluster integration

struct Scenario {
  Trace trace;
  Rect world;

  Scenario()
      : trace(TraceGenerator::generate([] {
          TraceConfig c;
          c.roads.grid_cols = 4;
          c.roads.grid_rows = 4;
          c.cameras.camera_count = 12;
          c.mobility.object_count = 12;
          c.duration = Duration::minutes(2);
          c.seed = 4242;
          return c;
        }())),
        world(trace.roads.bounds(120.0)) {}
};

Scenario& scenario() {
  static Scenario s;
  return s;
}

// A bounded time window over the full region forces the scan through the
// per-row filter kernels (an unbounded window over full bounds takes the
// zone fast path and evaluates zero rows), so the ledger sees real work.
TimeInterval kernel_window() {
  return {TimePoint::origin(), TimePoint::origin() + Duration::seconds(70)};
}

std::unique_ptr<Cluster> make_cluster(ClusterConfig config = {}) {
  Scenario& s = scenario();
  config.worker_count = 3;
  auto cluster = std::make_unique<Cluster>(
      s.world,
      std::make_unique<SpatialGridStrategy>(s.world, 2, 2, s.trace.cameras),
      config);
  cluster->ingest_all(s.trace.detections);
  return cluster;
}

TEST(CostLedgerCluster, AttributesTenantsAndConservesAcrossDimensions) {
  auto cluster = make_cluster();
  Scenario& s = scenario();
  TimeInterval window = kernel_window();
  for (int i = 0; i < 9; ++i) {
    cluster->execute(
        Query::range(cluster->next_query_id(), s.world, window)
            .with_tenant(static_cast<std::uint32_t>(1 + i % 3)));
  }
  const ResourceLedger& ledger = cluster->cost_ledger();
  EXPECT_EQ(ledger.queries(), 9u);
  EXPECT_GT(ledger.totals().rows_evaluated, 0u);
  EXPECT_GT(ledger.totals().bytes_in, 0u);
  EXPECT_GT(ledger.totals().fragments, 0u);

  // Every tenant got billed, and the per-tenant rows sum to the totals.
  ASSERT_EQ(ledger.by_tenant().size(), 3u);
  std::uint64_t tenant_rows = 0;
  for (const auto& row : ledger.by_tenant().top()) {
    tenant_rows += row.cost.rows_evaluated;
    EXPECT_EQ(row.count, 3u);
  }
  EXPECT_EQ(tenant_rows, ledger.totals().rows_evaluated);

  // Range answers carry camera detail, so the camera dimension populated.
  EXPECT_GT(ledger.by_camera().size(), 0u);

  // The ledger rides the metrics snapshot under "cost." with helps intact.
  MetricsRegistry snapshot = cluster->metrics_snapshot();
  auto it = snapshot.counters().find("cost.rows_evaluated");
  ASSERT_NE(it, snapshot.counters().end());
  EXPECT_EQ(it->second->value(), ledger.totals().rows_evaluated);
  std::string prom = snapshot.to_prometheus();
  EXPECT_NE(prom.find("# HELP stcn_cost_rows_evaluated"), std::string::npos);
}

TEST(CostLedgerCluster, ExemplarsLinkLatencyBucketsToTraces) {
  auto cluster = make_cluster();
  Scenario& s = scenario();
  for (int i = 0; i < 5; ++i) {
    cluster->execute(
        Query::range(cluster->next_query_id(), s.world, kernel_window()));
  }
  const auto& hists = cluster->coordinator().metrics().histograms();
  auto it = hists.find("query_latency_us");
  ASSERT_NE(it, hists.end());
  ASSERT_GT(it->second->exemplar_count(), 0u);
  // Every pinned exemplar names a retained trace and carries a cost line.
  for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
    const Exemplar* e = it->second->exemplar(b);
    if (e == nullptr) continue;
    EXPECT_TRUE(cluster->tracer().has_trace(e->trace_id));
    EXPECT_NE(e->summary.find("rows_eval="), std::string::npos);
  }
}

TEST(CostLedgerCluster, ExplainCarriesCostStageAndSlowLogCarriesCostLine) {
  ClusterConfig config;
  config.coordinator.slow_query_threshold = Duration::micros(1);  // log all
  auto cluster = make_cluster(config);
  Scenario& s = scenario();
  auto explained = cluster->explain(
      Query::range(cluster->next_query_id(), s.world, kernel_window())
          .with_tenant(7));
  auto stages = explained.profile.stages_named("query.cost");
  ASSERT_EQ(stages.size(), 1u);
  bool has_summary = false;
  bool has_tenant = false;
  for (const auto& [k, v] : stages[0]->notes) {
    if (k == "summary") has_summary = v.find("rows_eval=") != std::string::npos;
    if (k == "tenant") has_tenant = (v == "7");
  }
  EXPECT_TRUE(has_summary);
  EXPECT_TRUE(has_tenant);

  const SlowQueryLog& log = cluster->coordinator().slow_query_log();
  ASSERT_GT(log.entries().size(), 0u);
  EXPECT_NE(log.entries().back().cost.find("rows_eval="), std::string::npos);
  EXPECT_NE(log.render().find("cost: rows_eval="), std::string::npos);
  EXPECT_NE(log.to_json().find("\"cost\""), std::string::npos);
}

TEST(CostLedgerCluster, HealthSamplingRecordsFramesAndSlosStayQuiet) {
  // Manual sampling (no ticker): the generated trace replay has natural
  // multi-second gaps that would legitimately trip the ingest_stall rule
  // mid-replay, and this test wants a genuinely healthy steady state.
  auto cluster = make_cluster();
  Scenario& s = scenario();
  // Keep the ingest stream flowing between samples so the stall rule sees
  // steady traffic once armed.
  std::size_t drip = 0;
  for (int i = 0; i < 4; ++i) {
    cluster->execute(
        Query::range(cluster->next_query_id(), s.world, kernel_window()));
    for (int d = 0; d < 8; ++d) {
      cluster->ingest(s.trace.detections[drip++ % s.trace.detections.size()]);
    }
    cluster->flush_ingest();
    cluster->advance_time(Duration::millis(300));
    cluster->sample_health();
  }
  // Default SLOs installed and evaluated on the sim clock.
  EXPECT_EQ(cluster->slo_engine().slo_count(), 2u);
  auto status = cluster->slo_engine().status();
  ASSERT_EQ(status.size(), 2u);
  for (const auto& st : status) {
    EXPECT_FALSE(st.firing) << st.name << " burning on a healthy cluster";
  }
  // The recorder is buffering frames but froze nothing.
  EXPECT_GT(cluster->flight_recorder().frames().size(), 0u);
  EXPECT_EQ(cluster->flight_recorder().total_frozen(), 0u);
  // Frames parse and carry the rollup fields the postmortem relies on.
  obs::JsonValue frame;
  std::string error;
  ASSERT_TRUE(obs::JsonValue::parse(
      cluster->flight_recorder().frames().back().data_json, frame, &error))
      << error;
  EXPECT_TRUE(frame.has("health"));
  EXPECT_TRUE(frame.has("slo_burn"));
  EXPECT_EQ(frame.at("queries").number(), 4.0);
}

}  // namespace
}  // namespace stcn
