// Diurnal activity cycles: mobility-side generation and analytics-side
// period detection.
#include <gtest/gtest.h>

#include "baseline/centralized.h"
#include "query/analytics.h"
#include "trace/generator.h"

namespace stcn {
namespace {

std::vector<SeriesPoint> synthetic_series(
    const std::vector<std::uint64_t>& counts, Duration bucket) {
  std::vector<SeriesPoint> series;
  TimePoint t = TimePoint::origin();
  for (std::uint64_t c : counts) {
    series.push_back({{t, t + bucket}, c});
    t = t + bucket;
  }
  return series;
}

TEST(PeriodEstimate, DetectsSquareWave) {
  // Period 8 buckets: 4 high, 4 low, repeated 6 times.
  std::vector<std::uint64_t> counts;
  for (int rep = 0; rep < 6; ++rep) {
    for (int i = 0; i < 4; ++i) counts.push_back(100);
    for (int i = 0; i < 4; ++i) counts.push_back(5);
  }
  auto est = estimate_period(synthetic_series(counts, Duration::seconds(30)));
  ASSERT_TRUE(est.has_value());
  EXPECT_EQ(est->period, Duration::seconds(30) * 8);
  EXPECT_GT(est->confidence, 0.5);
}

TEST(PeriodEstimate, FlatSeriesHasNoPeriod) {
  std::vector<std::uint64_t> counts(40, 50);
  EXPECT_FALSE(
      estimate_period(synthetic_series(counts, Duration::seconds(30)))
          .has_value());
}

TEST(PeriodEstimate, NoiseWithoutStructureRejected) {
  Rng rng(5);
  std::vector<std::uint64_t> counts;
  for (int i = 0; i < 48; ++i) {
    counts.push_back(static_cast<std::uint64_t>(50 + rng.uniform_int(-4, 4)));
  }
  auto est = estimate_period(synthetic_series(counts, Duration::seconds(30)));
  if (est.has_value()) {
    // White noise can fluke a weak correlation, but never a strong one.
    EXPECT_LT(est->confidence, 0.55);
  }
}

TEST(PeriodEstimate, TooShortSeriesRejected) {
  std::vector<std::uint64_t> counts{1, 9, 1, 9, 1};
  EXPECT_FALSE(
      estimate_period(synthetic_series(counts, Duration::seconds(30)))
          .has_value());
}

TEST(PeriodEstimate, HarmonicReducedToFundamental) {
  // Strong period of 4 buckets; lag 8 correlates equally (harmonic).
  std::vector<std::uint64_t> counts;
  for (int rep = 0; rep < 12; ++rep) {
    counts.push_back(100);
    counts.push_back(60);
    counts.push_back(5);
    counts.push_back(60);
  }
  auto est = estimate_period(synthetic_series(counts, Duration::seconds(60)));
  ASSERT_TRUE(est.has_value());
  EXPECT_EQ(est->period, Duration::seconds(60) * 4);
}

TEST(DiurnalMobility, QuietPhaseReducesDetections) {
  TraceConfig tc;
  tc.roads.grid_cols = 7;
  tc.roads.grid_rows = 7;
  tc.cameras.camera_count = 30;
  tc.mobility.object_count = 30;
  tc.mobility.activity_period = Duration::minutes(4);
  tc.mobility.quiet_dwell_factor = 30.0;
  tc.duration = Duration::minutes(12);  // three full cycles
  Trace trace = TraceGenerator::generate(tc);
  ASSERT_GT(trace.detections.size(), 100u);

  // Count detections in active vs quiet halves.
  std::uint64_t active = 0;
  std::uint64_t quiet = 0;
  std::int64_t period = tc.mobility.activity_period.count_micros();
  for (const Detection& d : trace.detections) {
    std::int64_t phase = d.time.micros_since_origin() % period;
    (phase * 2 < period ? active : quiet) += 1;
  }
  EXPECT_GT(active, quiet * 3 / 2)
      << "active halves must see clearly more traffic (active=" << active
      << " quiet=" << quiet << ")";
}

TEST(DiurnalMobility, EndToEndPeriodRecoveredFromQueries) {
  TraceConfig tc;
  tc.roads.grid_cols = 7;
  tc.roads.grid_rows = 7;
  tc.cameras.camera_count = 30;
  tc.mobility.object_count = 30;
  tc.mobility.activity_period = Duration::minutes(3);
  tc.mobility.quiet_dwell_factor = 30.0;
  tc.duration = Duration::minutes(12);  // four full cycles
  Trace trace = TraceGenerator::generate(tc);
  Rect world = trace.roads.bounds(120.0);
  CentralizedIndex index(world);
  index.ingest_all(trace.detections);

  QueryExecutorRef exec(index);
  auto series = activity_series(
      exec, world, {TimePoint::origin(), TimePoint::origin() + tc.duration},
      Duration::seconds(15));
  auto est = estimate_period(series);
  ASSERT_TRUE(est.has_value()) << "periodic traffic must be detectable";
  // Within one bucket of the true 3-minute cycle (or a near-harmonic).
  double ratio = est->period.to_seconds() / 180.0;
  EXPECT_NEAR(ratio, std::round(ratio), 0.12)
      << "detected " << est->period.to_seconds() << "s";
  EXPECT_GE(est->period, Duration::seconds(150));
}

}  // namespace
}  // namespace stcn
