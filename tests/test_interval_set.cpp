#include "index/interval_set.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace stcn {
namespace {

TimeInterval iv(std::int64_t a, std::int64_t b) {
  return {TimePoint(a), TimePoint(b)};
}

TEST(IntervalSet, EmptySet) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.contains(TimePoint(0)));
  EXPECT_FALSE(s.covers(iv(0, 10)));
  EXPECT_TRUE(s.covers(iv(5, 5)));  // empty interval trivially covered
  auto gaps = s.gaps(iv(0, 10));
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0], iv(0, 10));
}

TEST(IntervalSet, AddAndContains) {
  IntervalSet s;
  s.add(iv(10, 20));
  EXPECT_TRUE(s.contains(TimePoint(10)));
  EXPECT_TRUE(s.contains(TimePoint(19)));
  EXPECT_FALSE(s.contains(TimePoint(20)));  // half-open
  EXPECT_FALSE(s.contains(TimePoint(9)));
}

TEST(IntervalSet, AddEmptyIsNoOp) {
  IntervalSet s;
  s.add(iv(5, 5));
  s.add(iv(7, 3));
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, MergesOverlapping) {
  IntervalSet s;
  s.add(iv(0, 10));
  s.add(iv(5, 15));
  ASSERT_EQ(s.intervals().size(), 1u);
  EXPECT_EQ(s.intervals()[0], iv(0, 15));
}

TEST(IntervalSet, MergesTouching) {
  IntervalSet s;
  s.add(iv(0, 10));
  s.add(iv(10, 20));
  ASSERT_EQ(s.intervals().size(), 1u);
  EXPECT_EQ(s.intervals()[0], iv(0, 20));
}

TEST(IntervalSet, KeepsDisjointSeparate) {
  IntervalSet s;
  s.add(iv(0, 10));
  s.add(iv(20, 30));
  ASSERT_EQ(s.intervals().size(), 2u);
  EXPECT_EQ(s.total_length(), Duration::micros(20));
}

TEST(IntervalSet, BridgingIntervalMergesAll) {
  IntervalSet s;
  s.add(iv(0, 10));
  s.add(iv(20, 30));
  s.add(iv(40, 50));
  s.add(iv(5, 45));  // bridges all three
  ASSERT_EQ(s.intervals().size(), 1u);
  EXPECT_EQ(s.intervals()[0], iv(0, 50));
}

TEST(IntervalSet, Covers) {
  IntervalSet s;
  s.add(iv(0, 10));
  s.add(iv(20, 30));
  EXPECT_TRUE(s.covers(iv(2, 8)));
  EXPECT_TRUE(s.covers(iv(0, 10)));
  EXPECT_FALSE(s.covers(iv(5, 25)));  // hole in the middle
  EXPECT_FALSE(s.covers(iv(9, 11)));
}

TEST(IntervalSet, GapsInsideQueryWindow) {
  IntervalSet s;
  s.add(iv(10, 20));
  s.add(iv(30, 40));
  auto gaps = s.gaps(iv(0, 50));
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_EQ(gaps[0], iv(0, 10));
  EXPECT_EQ(gaps[1], iv(20, 30));
  EXPECT_EQ(gaps[2], iv(40, 50));
}

TEST(IntervalSet, GapsWhenFullyCovered) {
  IntervalSet s;
  s.add(iv(0, 100));
  EXPECT_TRUE(s.gaps(iv(10, 90)).empty());
}

TEST(IntervalSet, GapsClippedToQuery) {
  IntervalSet s;
  s.add(iv(20, 30));
  auto gaps = s.gaps(iv(25, 40));
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0], iv(30, 40));
}

// Property: after arbitrary adds, (covered ∪ gaps) == query window and they
// are disjoint.
class IntervalSetProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalSetProperty, GapsPartitionQueryWindow) {
  Rng rng(GetParam());
  IntervalSet s;
  for (int i = 0; i < 40; ++i) {
    std::int64_t a = rng.uniform_int(0, 1000);
    std::int64_t b = a + rng.uniform_int(0, 100);
    s.add(iv(a, b));
  }
  // Invariants of the internal representation: sorted, disjoint,
  // non-touching.
  const auto& ivs = s.intervals();
  for (std::size_t i = 1; i < ivs.size(); ++i) {
    ASSERT_LT(ivs[i - 1].end, ivs[i].begin);
  }
  TimeInterval window = iv(100, 900);
  auto gaps = s.gaps(window);
  // Each gap lies inside the window and is NOT covered.
  Duration gap_total = Duration::zero();
  for (const TimeInterval& g : gaps) {
    ASSERT_FALSE(g.empty());
    ASSERT_GE(g.begin, window.begin);
    ASSERT_LE(g.end, window.end);
    ASSERT_FALSE(s.contains(g.begin));
    gap_total = gap_total + g.length();
  }
  // Covered length within the window + gap length == window length.
  Duration covered = Duration::zero();
  for (const TimeInterval& have : ivs) {
    TimeInterval clipped = have.intersection(window);
    if (!clipped.empty()) covered = covered + clipped.length();
  }
  EXPECT_EQ(covered + gap_total, window.length());
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace stcn
