// Differential tests for the vectorized morsel-driven scan layer.
//
// The scalar row-at-a-time scans (scan_*_scalar) define the expected
// answer; the vectorized selection-vector path, the TaskPool-backed
// MorselScanner, and the executor's selection-vector aggregation must all
// agree exactly — on randomized data, on block-edge time ranges (queries
// starting/ending exactly on a 4096-row morsel boundary), on
// empty-selection morsels (zone overlaps, zero survivors), and on
// positions clamped to region borders. Morsel accounting (zone fast path,
// rows evaluated vs selected) is pinned on deterministic layouts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.h"
#include "core/parallel.h"
#include "index/detection_store.h"
#include "query/executor.h"

namespace stcn {
namespace {

constexpr double kWorld = 1000.0;

Detection random_detection(Rng& rng, std::uint64_t id) {
  Detection d;
  d.id = DetectionId(id);
  d.camera = CameraId(1 + rng.uniform_index(40));
  d.object = ObjectId(1 + rng.uniform_index(200));
  d.time = TimePoint(rng.uniform_int(0, 1'000'000));
  d.position = {rng.uniform(0, kWorld), rng.uniform(0, kWorld)};
  if (rng.uniform_index(10) == 0) {
    d.position.x = rng.uniform_index(2) == 0 ? 0.0 : kWorld;
  }
  if (rng.uniform_index(10) == 0) {
    d.position.y = rng.uniform_index(2) == 0 ? 0.0 : kWorld;
  }
  d.confidence = rng.uniform(0, 1);
  return d;
}

class VectorizedDifferential : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    Rng rng(GetParam());
    for (std::uint64_t i = 1; i <= 12'000; ++i) {
      (void)store_.append(random_detection(rng, i));
    }
  }

  DetectionStore store_;
};

TEST_P(VectorizedDifferential, RangeMatchesScalar) {
  Rng rng(GetParam() + 101);
  MorselScanner scanner(2);
  for (int trial = 0; trial < 40; ++trial) {
    Rect region =
        Rect::spanning({rng.uniform(0, kWorld), rng.uniform(0, kWorld)},
                       {rng.uniform(0, kWorld), rng.uniform(0, kWorld)});
    if (trial % 7 == 0) region = Rect{{0, 0}, {kWorld, kWorld}};
    TimeInterval interval{TimePoint(rng.uniform_int(0, 900'000)),
                          TimePoint(rng.uniform_int(100'000, 1'000'000))};
    auto expected = store_.scan_range_scalar(region, interval);
    MorselStats ms;
    auto vectorized = store_.scan_range(region, interval, &ms);
    EXPECT_TRUE(vectorized == expected) << "trial " << trial;
    EXPECT_EQ(ms.rows_selected, expected.size()) << "trial " << trial;
    auto parallel = scanner.scan_range(store_, region, interval);
    EXPECT_TRUE(parallel == expected) << "parallel, trial " << trial;
  }
}

TEST_P(VectorizedDifferential, CircleMatchesScalar) {
  Rng rng(GetParam() + 211);
  MorselScanner scanner(2);
  for (int trial = 0; trial < 40; ++trial) {
    Circle circle{{rng.uniform(-100, kWorld + 100),
                   rng.uniform(-100, kWorld + 100)},
                  rng.uniform(5, 800)};
    TimeInterval interval{TimePoint(rng.uniform_int(0, 900'000)),
                          TimePoint(rng.uniform_int(100'000, 1'000'000))};
    auto expected = store_.scan_circle_scalar(circle, interval);
    auto vectorized = store_.scan_circle(circle, interval);
    EXPECT_TRUE(vectorized == expected) << "trial " << trial;
    auto parallel = scanner.scan_circle(store_, circle, interval);
    EXPECT_TRUE(parallel == expected) << "parallel, trial " << trial;
  }
}

TEST_P(VectorizedDifferential, CameraMatchesScalar) {
  Rng rng(GetParam() + 307);
  MorselScanner scanner(2);
  for (int trial = 0; trial < 40; ++trial) {
    CameraId camera(1 + rng.uniform_index(40));
    TimeInterval interval{TimePoint(rng.uniform_int(0, 900'000)),
                          TimePoint(rng.uniform_int(100'000, 1'000'000))};
    auto expected = store_.scan_camera_scalar(camera, interval);
    auto vectorized = store_.scan_camera(camera, interval);
    EXPECT_TRUE(vectorized == expected) << "trial " << trial;
    auto parallel = scanner.scan_camera(store_, camera, interval);
    EXPECT_TRUE(parallel == expected) << "parallel, trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorizedDifferential,
                         ::testing::Values(3, 41, 20260807));

// Deterministic layout for morsel-boundary accounting: row i has time i,
// x = i mod 100, one camera per block. Three full blocks.
class MorselBoundary : public ::testing::Test {
 protected:
  void SetUp() override {
    for (std::uint64_t i = 0; i < 3 * kDetectionBlockRows; ++i) {
      Detection d;
      d.id = DetectionId(i + 1);
      d.camera = CameraId(1 + i / kDetectionBlockRows);
      d.object = ObjectId(1);
      d.time = TimePoint(static_cast<std::int64_t>(i));
      d.position = {static_cast<double>(i % 100), 50.0};
      (void)store_.append(d);
    }
  }

  static TimeInterval window(std::int64_t t0, std::int64_t t1) {
    return {TimePoint(t0), TimePoint(t1)};
  }

  DetectionStore store_;
  Rect all_{{0, 0}, {100, 100}};
};

TEST_F(MorselBoundary, IntervalExactlyOnBlockEdgesUsesFastPathOnly) {
  constexpr auto kB = static_cast<std::int64_t>(kDetectionBlockRows);
  MorselStats ms;
  auto refs = store_.scan_range(all_, window(kB, 2 * kB), &ms);
  ASSERT_EQ(refs.size(), kDetectionBlockRows);
  EXPECT_EQ(to_index(refs.front()), kDetectionBlockRows);
  EXPECT_EQ(to_index(refs.back()), 2 * kDetectionBlockRows - 1);
  // Block 1 is provably fully inside both predicates: emitted wholesale
  // with zero per-row evaluations; blocks 0 and 2 are provably outside.
  EXPECT_EQ(ms.zone_fast_path, 1u);
  EXPECT_EQ(ms.blocks_scanned, 1u);
  EXPECT_EQ(ms.blocks_skipped, 2u);
  EXPECT_EQ(ms.rows_evaluated, 0u);
  EXPECT_EQ(ms.rows_selected, kDetectionBlockRows);

  EXPECT_TRUE(store_.scan_range_scalar(all_, window(kB, 2 * kB)) == refs);
}

TEST_F(MorselBoundary, IntervalEndingJustPastBlockEdgeEvaluatesNextBlock) {
  constexpr auto kB = static_cast<std::int64_t>(kDetectionBlockRows);
  MorselStats ms;
  auto refs = store_.scan_range(all_, window(0, kB + 1), &ms);
  EXPECT_EQ(refs.size(), kDetectionBlockRows + 1);
  EXPECT_EQ(ms.zone_fast_path, 1u);   // block 0 wholesale
  EXPECT_EQ(ms.blocks_scanned, 2u);   // block 1 filtered
  EXPECT_EQ(ms.blocks_skipped, 1u);
  EXPECT_EQ(ms.rows_evaluated, kDetectionBlockRows);  // one filtered morsel
  EXPECT_TRUE(store_.scan_range_scalar(all_, window(0, kB + 1)) == refs);
}

TEST_F(MorselBoundary, EmptySelectionMorselEvaluatesButSelectsNothing) {
  // x values are integers 0..99; a region strip between them lies inside
  // every zone bbox (so no block can be skipped) yet selects no rows.
  Rect strip{{50.25, 0}, {50.75, 100}};
  MorselStats ms;
  auto refs = store_.scan_range(strip, TimeInterval::all(), &ms);
  EXPECT_TRUE(refs.empty());
  EXPECT_EQ(ms.blocks_scanned, 3u);
  EXPECT_EQ(ms.blocks_skipped, 0u);
  EXPECT_EQ(ms.zone_fast_path, 0u);
  EXPECT_GT(ms.rows_evaluated, 0u);
  EXPECT_EQ(ms.rows_selected, 0u);
  EXPECT_TRUE(store_.scan_range_scalar(strip, TimeInterval::all()).empty());
}

TEST_F(MorselBoundary, CameraFastPathFiresOnSingleCameraBlocks) {
  constexpr auto kB = static_cast<std::int64_t>(kDetectionBlockRows);
  MorselStats ms;
  auto refs = store_.scan_camera(CameraId(2), window(0, 3 * kB), &ms);
  ASSERT_EQ(refs.size(), kDetectionBlockRows);
  EXPECT_EQ(to_index(refs.front()), kDetectionBlockRows);
  // Block 1 holds camera 2 exclusively and the window covers it entirely:
  // wholesale emission. Blocks 0/2 cannot contain camera 2.
  EXPECT_EQ(ms.zone_fast_path, 1u);
  EXPECT_EQ(ms.rows_evaluated, 0u);
  EXPECT_TRUE(store_.scan_camera_scalar(CameraId(2), window(0, 3 * kB)) ==
              refs);
}

// Executor aggregation from selection vectors vs brute force over the raw
// detections — count, group-by-camera, heatmap — through both access paths
// (broad region ⇒ columnar morsel scan, small region ⇒ grid walk).
class VectorizedExecutor : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    Rng rng(GetParam());
    for (std::uint64_t i = 1; i <= 10'000; ++i) {
      Detection d = random_detection(rng, i);
      reference_.push_back(d);
      (void)indexes_.ingest(d);
    }
  }

  WorkerIndexes indexes_{{Rect{{0, 0}, {kWorld, kWorld}}, 25.0}};
  std::vector<Detection> reference_;
};

TEST_P(VectorizedExecutor, CountMatchesBruteForceOnBothAccessPaths) {
  Rng rng(GetParam() + 401);
  for (int trial = 0; trial < 20; ++trial) {
    // Alternate broad (columnar path) and small (grid path) regions.
    Rect region;
    if (trial % 2 == 0) {
      region = Rect{{0, 0}, {rng.uniform(kWorld * 0.8, kWorld), kWorld}};
    } else {
      Point c{rng.uniform(100, kWorld - 100), rng.uniform(100, kWorld - 100)};
      region = Rect::centered(c, rng.uniform(20, 80));
    }
    TimeInterval interval{TimePoint(rng.uniform_int(0, 500'000)),
                          TimePoint(rng.uniform_int(500'000, 1'000'000))};
    std::uint64_t expected = 0;
    std::map<std::uint64_t, std::uint64_t> expected_by_camera;
    for (const Detection& d : reference_) {
      if (region.contains(d.position) && interval.contains(d.time)) {
        ++expected;
        ++expected_by_camera[d.camera.value()];
      }
    }

    ScanStats stats;
    QueryResult plain = LocalExecutor::execute(
        indexes_, Query::count(QueryId(1), region, interval), &stats);
    ASSERT_EQ(plain.counts.size(), 1u) << "trial " << trial;
    EXPECT_EQ(plain.counts.at(0), expected) << "trial " << trial;
    if (trial % 2 == 0) {
      EXPECT_GT(stats.vectorized_morsels, 0u) << "trial " << trial;
      EXPECT_GE(stats.rows_evaluated, stats.rows_selected);
      EXPECT_EQ(stats.rows_selected, expected);
    }

    QueryResult grouped = LocalExecutor::execute(
        indexes_,
        Query::count(QueryId(2), region, interval, GroupBy::kCamera));
    EXPECT_TRUE(grouped.counts == expected_by_camera) << "trial " << trial;
  }
}

TEST_P(VectorizedExecutor, HeatmapMatchesBruteForceOnBothAccessPaths) {
  Rng rng(GetParam() + 503);
  for (int trial = 0; trial < 20; ++trial) {
    Rect region = trial % 2 == 0
                      ? Rect{{0, 0}, {kWorld, kWorld}}
                      : Rect::centered({rng.uniform(200, kWorld - 200),
                                        rng.uniform(200, kWorld - 200)},
                                       rng.uniform(30, 120));
    double cell = rng.uniform(10, 100);
    TimeInterval interval{TimePoint(rng.uniform_int(0, 500'000)),
                          TimePoint(rng.uniform_int(500'000, 1'000'000))};
    Query query = Query::heatmap(QueryId(3), region, cell, interval);
    std::map<std::uint64_t, std::uint64_t> expected;
    for (const Detection& d : reference_) {
      if (region.contains(d.position) && interval.contains(d.time)) {
        ++expected[query.heatmap_cell(d.position)];
      }
    }
    ScanStats stats;
    QueryResult result = LocalExecutor::execute(indexes_, query, &stats);
    EXPECT_TRUE(result.counts == expected) << "trial " << trial;
    if (trial % 2 == 0) {
      EXPECT_GT(stats.vectorized_morsels, 0u) << "trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorizedExecutor,
                         ::testing::Values(11, 20260807));

}  // namespace
}  // namespace stcn
