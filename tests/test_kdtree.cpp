#include "index/kdtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"

namespace stcn {
namespace {

TEST(KdTree, EmptyTree) {
  KdTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.knn({0, 0}, 3).empty());
  EXPECT_TRUE(tree.range({{0, 0}, {10, 10}}).empty());
}

TEST(KdTree, SingleItem) {
  KdTree tree({{{5, 5}, 42}});
  auto nn = tree.knn({0, 0}, 1);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0].first.payload, 42u);
  EXPECT_NEAR(nn[0].second, distance({0, 0}, {5, 5}), 1e-12);
}

TEST(KdTree, KnnOrderedByDistance) {
  KdTree tree({{{0, 0}, 1}, {{10, 0}, 2}, {{3, 4}, 3}, {{1, 1}, 4}});
  auto nn = tree.knn({0, 0}, 4);
  ASSERT_EQ(nn.size(), 4u);
  EXPECT_EQ(nn[0].first.payload, 1u);
  EXPECT_EQ(nn[1].first.payload, 4u);
  EXPECT_EQ(nn[2].first.payload, 3u);
  EXPECT_EQ(nn[3].first.payload, 2u);
  for (std::size_t i = 1; i < nn.size(); ++i) {
    EXPECT_LE(nn[i - 1].second, nn[i].second);
  }
}

TEST(KdTree, KLargerThanSize) {
  KdTree tree({{{0, 0}, 1}, {{1, 1}, 2}});
  EXPECT_EQ(tree.knn({0, 0}, 100).size(), 2u);
}

TEST(KdTree, RangeHalfOpenSemantics) {
  KdTree tree({{{0, 0}, 1}, {{10, 10}, 2}, {{5, 5}, 3}});
  auto in = tree.range({{0, 0}, {10, 10}});
  std::set<std::uint64_t> payloads;
  for (const auto& item : in) payloads.insert(item.payload);
  // (10,10) is on the max corner → excluded by half-open contains.
  EXPECT_EQ(payloads, (std::set<std::uint64_t>{1, 3}));
}

TEST(KdTree, DuplicatePositionsAllReturned) {
  KdTree tree({{{5, 5}, 1}, {{5, 5}, 2}, {{5, 5}, 3}});
  auto nn = tree.knn({5, 5}, 3);
  std::set<std::uint64_t> payloads;
  for (const auto& [item, dist] : nn) {
    payloads.insert(item.payload);
    EXPECT_DOUBLE_EQ(dist, 0.0);
  }
  EXPECT_EQ(payloads, (std::set<std::uint64_t>{1, 2, 3}));
}

class KdTreeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KdTreeProperty, KnnMatchesBruteForce) {
  Rng rng(GetParam());
  std::vector<KdTree::Item> items;
  for (std::uint64_t i = 0; i < 500; ++i) {
    items.push_back({{rng.uniform(0, 1000), rng.uniform(0, 1000)}, i});
  }
  KdTree tree(items);
  for (int trial = 0; trial < 30; ++trial) {
    Point center{rng.uniform(-100, 1100), rng.uniform(-100, 1100)};
    std::size_t k = 1 + rng.uniform_index(20);
    auto result = tree.knn(center, k);
    std::vector<double> brute;
    for (const auto& item : items) {
      brute.push_back(distance(item.position, center));
    }
    std::sort(brute.begin(), brute.end());
    ASSERT_EQ(result.size(), std::min(k, items.size()));
    for (std::size_t i = 0; i < result.size(); ++i) {
      ASSERT_NEAR(result[i].second, brute[i], 1e-9);
    }
  }
}

TEST_P(KdTreeProperty, RangeMatchesBruteForce) {
  Rng rng(GetParam() + 777);
  std::vector<KdTree::Item> items;
  for (std::uint64_t i = 0; i < 500; ++i) {
    items.push_back({{rng.uniform(0, 1000), rng.uniform(0, 1000)}, i});
  }
  KdTree tree(items);
  for (int trial = 0; trial < 30; ++trial) {
    Rect region = Rect::spanning(
        {rng.uniform(0, 1000), rng.uniform(0, 1000)},
        {rng.uniform(0, 1000), rng.uniform(0, 1000)});
    std::set<std::uint64_t> expected;
    for (const auto& item : items) {
      if (region.contains(item.position)) expected.insert(item.payload);
    }
    std::set<std::uint64_t> actual;
    for (const auto& item : tree.range(region)) actual.insert(item.payload);
    ASSERT_EQ(actual, expected);
  }
}

TEST_P(KdTreeProperty, KnnPrunesVsLinearScan) {
  Rng rng(GetParam() + 999);
  std::vector<KdTree::Item> items;
  for (std::uint64_t i = 0; i < 4096; ++i) {
    items.push_back({{rng.uniform(0, 1000), rng.uniform(0, 1000)}, i});
  }
  KdTree tree(items);
  (void)tree.knn({500, 500}, 5);
  // A balanced kd-tree should visit far fewer nodes than the full set.
  EXPECT_LT(tree.last_nodes_visited(), items.size() / 4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KdTreeProperty,
                         ::testing::Values(1, 2, 3, 10, 99));

}  // namespace
}  // namespace stcn
