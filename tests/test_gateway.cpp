#include "core/gateway.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "baseline/centralized.h"
#include "core/framework.h"
#include "partition/strategies.h"
#include "trace/generator.h"

namespace stcn {
namespace {

struct GatewayScenario {
  Trace trace;
  Rect world;

  GatewayScenario() {
    TraceConfig tc;
    tc.roads.grid_cols = 6;
    tc.roads.grid_rows = 6;
    tc.cameras.camera_count = 20;
    tc.mobility.object_count = 15;
    tc.duration = Duration::minutes(3);
    tc.seed = 77;
    trace = TraceGenerator::generate(tc);
    world = trace.roads.bounds(120.0);
  }

  std::unique_ptr<Cluster> make_cluster() {
    ClusterConfig config;
    config.worker_count = 4;
    config.network.latency_jitter = Duration::zero();
    return std::make_unique<Cluster>(
        world,
        std::make_unique<SpatialGridStrategy>(world, 3, 3, trace.cameras),
        config);
  }
};

std::set<std::uint64_t> all_ids(Cluster& cluster, const Rect& world) {
  QueryResult r = cluster.execute(
      Query::range(cluster.next_query_id(), world, TimeInterval::all()));
  std::set<std::uint64_t> ids;
  for (const Detection& d : r.detections) ids.insert(d.id.value());
  return ids;
}

std::set<std::uint64_t> expected_ids(const Trace& trace) {
  std::set<std::uint64_t> ids;
  for (const Detection& d : trace.detections) ids.insert(d.id.value());
  return ids;
}

TEST(Gateway, DirectIngestDeliversEverything) {
  GatewayScenario s;
  auto cluster = s.make_cluster();
  GatewayFleet fleet = cluster->make_gateway_fleet(4);
  for (const Detection& d : s.trace.detections) {
    cluster->network().advance_clock_to(d.time);
    fleet.ingest(d, cluster->network());
  }
  fleet.flush(cluster->network());
  cluster->pump();
  EXPECT_EQ(all_ids(*cluster, s.world), expected_ids(s.trace));
}

TEST(Gateway, RelayModeDeliversEverything) {
  GatewayScenario s;
  auto cluster = s.make_cluster();
  GatewayConfig config;
  config.relay_through_coordinator = true;
  GatewayFleet fleet = cluster->make_gateway_fleet(4, config);
  for (const Detection& d : s.trace.detections) {
    cluster->network().advance_clock_to(d.time);
    fleet.ingest(d, cluster->network());
  }
  fleet.flush(cluster->network());
  cluster->pump();
  EXPECT_EQ(all_ids(*cluster, s.world), expected_ids(s.trace));
  EXPECT_GT(cluster->coordinator().counters().get("ingest_forwards"), 0u);
}

TEST(Gateway, DirectModeMovesFewerBytesThanRelay) {
  GatewayScenario s;

  auto run = [&](bool relay) {
    auto cluster = s.make_cluster();
    GatewayConfig config;
    config.relay_through_coordinator = relay;
    GatewayFleet fleet = cluster->make_gateway_fleet(4, config);
    for (const Detection& d : s.trace.detections) {
      fleet.ingest(d, cluster->network());
    }
    fleet.flush(cluster->network());
    cluster->pump();
    return cluster->network().counters().get("bytes_sent");
  };

  std::uint64_t direct_bytes = run(false);
  std::uint64_t relay_bytes = run(true);
  // Relay pays the extra gateway→coordinator hop for every detection.
  EXPECT_GT(relay_bytes, direct_bytes * 5 / 4);
}

TEST(Gateway, CamerasStickToOneGateway) {
  GatewayScenario s;
  auto cluster = s.make_cluster();
  GatewayFleet fleet = cluster->make_gateway_fleet(3);
  for (std::uint64_t cam = 1; cam <= 20; ++cam) {
    GatewayNode& first = fleet.gateway_for(CameraId(cam));
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(&fleet.gateway_for(CameraId(cam)), &first);
    }
  }
}

TEST(Gateway, StaleMapHealsAfterRefresh) {
  GatewayScenario s;
  auto cluster = s.make_cluster();
  GatewayFleet fleet = cluster->make_gateway_fleet(2);

  // Ingest half the trace, then crash a worker and fail over.
  std::size_t half = s.trace.detections.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    fleet.ingest(s.trace.detections[i], cluster->network());
  }
  fleet.flush(cluster->network());
  cluster->pump();

  cluster->crash_worker(WorkerId(1));
  cluster->coordinator().promote_backups_of(WorkerId(1));
  // Gateways still hold the stale map; refresh gives them the new one so
  // the remaining stream routes to the promoted primaries.
  fleet.refresh_maps(cluster->coordinator().partition_map());
  for (std::size_t i = half; i < s.trace.detections.size(); ++i) {
    fleet.ingest(s.trace.detections[i], cluster->network());
  }
  fleet.flush(cluster->network());
  cluster->pump();

  // All second-half detections must be queryable despite the dead worker
  // (first-half data owned by worker 1 is served by its backups).
  EXPECT_EQ(all_ids(*cluster, s.world), expected_ids(s.trace));
}

}  // namespace
}  // namespace stcn
