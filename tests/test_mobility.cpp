#include "trace/mobility.h"

#include <gtest/gtest.h>

namespace stcn {
namespace {

RoadNetwork make_roads(std::uint64_t seed = 1) {
  RoadNetworkConfig c;
  c.grid_cols = 8;
  c.grid_rows = 8;
  c.block_size_m = 100.0;
  c.removal_fraction = 0.1;
  c.seed = seed;
  return RoadNetwork::build(c);
}

MobilityConfig mobility_config(std::size_t n) {
  MobilityConfig c;
  c.object_count = n;
  c.seed = 17;
  return c;
}

TEST(MobilityModel, ObjectCountAndIds) {
  RoadNetwork roads = make_roads();
  MobilityModel model(roads, mobility_config(10));
  EXPECT_EQ(model.object_count(), 10u);
  EXPECT_EQ(model.object_id(0), ObjectId(1));
  EXPECT_EQ(model.object_id(9), ObjectId(10));
}

TEST(MobilityModel, ObjectsStartOnRoadNodes) {
  RoadNetwork roads = make_roads();
  MobilityModel model(roads, mobility_config(20));
  for (std::size_t i = 0; i < model.object_count(); ++i) {
    Point p = model.position(i);
    bool on_node = false;
    for (std::size_t n = 0; n < roads.node_count(); ++n) {
      if (distance(p, roads.node_position(static_cast<RoadNodeIndex>(n))) <
          1e-9) {
        on_node = true;
        break;
      }
    }
    EXPECT_TRUE(on_node) << "object " << i << " at " << p;
  }
}

TEST(MobilityModel, AdvanceIsMonotonicNoOpBackwards) {
  RoadNetwork roads = make_roads();
  MobilityModel model(roads, mobility_config(5));
  model.advance_to(TimePoint(10'000'000));
  Point p = model.position(0);
  model.advance_to(TimePoint(5'000'000));  // going back: no-op
  EXPECT_EQ(model.position(0), p);
  EXPECT_EQ(model.now(), TimePoint(10'000'000));
}

TEST(MobilityModel, ObjectsMoveOverTime) {
  RoadNetwork roads = make_roads();
  MobilityModel model(roads, mobility_config(30));
  std::vector<Point> start;
  for (std::size_t i = 0; i < model.object_count(); ++i) {
    start.push_back(model.position(i));
  }
  model.advance_to(TimePoint::origin() + Duration::minutes(5));
  int moved = 0;
  for (std::size_t i = 0; i < model.object_count(); ++i) {
    if (distance(model.position(i), start[i]) > 10.0) ++moved;
  }
  // After five minutes nearly everyone should have gone somewhere.
  EXPECT_GT(moved, 20);
}

TEST(MobilityModel, PositionsStayWithinWorldBounds) {
  RoadNetwork roads = make_roads();
  Rect world = roads.bounds(1.0);
  MobilityModel model(roads, mobility_config(25));
  for (int step = 1; step <= 60; ++step) {
    model.advance_to(TimePoint::origin() + Duration::seconds(step * 10));
    for (std::size_t i = 0; i < model.object_count(); ++i) {
      EXPECT_TRUE(world.contains(model.position(i)))
          << "object " << i << " escaped to " << model.position(i);
    }
  }
}

TEST(MobilityModel, SpeedBoundsRespected) {
  RoadNetwork roads = make_roads();
  MobilityConfig config = mobility_config(20);
  MobilityModel model(roads, config);
  // Sample positions at 1 s ticks; displacement per tick must not exceed a
  // generous physical limit (lognormal(2.2, 0.5) rarely exceeds ~50 m/s).
  std::vector<Point> prev;
  for (std::size_t i = 0; i < model.object_count(); ++i) {
    prev.push_back(model.position(i));
  }
  for (int step = 1; step <= 120; ++step) {
    model.advance_to(TimePoint::origin() + Duration::seconds(step));
    for (std::size_t i = 0; i < model.object_count(); ++i) {
      Point cur = model.position(i);
      EXPECT_LE(distance(cur, prev[i]), 120.0)
          << "object " << i << " teleported at step " << step;
      prev[i] = cur;
    }
  }
}

TEST(MobilityModel, DeterministicForSeed) {
  RoadNetwork roads = make_roads();
  MobilityModel a(roads, mobility_config(10));
  MobilityModel b(roads, mobility_config(10));
  a.advance_to(TimePoint::origin() + Duration::minutes(2));
  b.advance_to(TimePoint::origin() + Duration::minutes(2));
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(a.position(i), b.position(i));
  }
}

TEST(MobilityModel, SteppedAdvanceMatchesCoarseAdvanceApproximately) {
  // Advancing in many small steps vs one big step must land each object in
  // the same place: the kinematics are deterministic and step-independent.
  RoadNetwork roads = make_roads();
  MobilityModel fine(roads, mobility_config(10));
  MobilityModel coarse(roads, mobility_config(10));
  for (int s = 1; s <= 600; ++s) {
    fine.advance_to(TimePoint::origin() + Duration::millis(s * 100));
  }
  coarse.advance_to(TimePoint::origin() + Duration::seconds(60));
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_LT(distance(fine.position(i), coarse.position(i)), 1e-6)
        << "object " << i;
  }
}

}  // namespace
}  // namespace stcn
