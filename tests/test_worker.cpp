#include "core/worker.h"

#include <gtest/gtest.h>

#include <set>

#include "core/protocol.h"

namespace stcn {
namespace {

constexpr NodeId kCoord{999};

Detection make_detection(std::uint64_t id, Point pos, std::int64_t t,
                         std::uint64_t camera = 1, std::uint64_t object = 1) {
  Detection d;
  d.id = DetectionId(id);
  d.camera = CameraId(camera);
  d.object = ObjectId(object);
  d.time = TimePoint(t);
  d.position = pos;
  return d;
}

WorkerConfig worker_config() {
  WorkerConfig c;
  c.grid = {Rect{{0, 0}, {1000, 1000}}, 50.0};
  c.world = {{0, 0}, {1000, 1000}};
  return c;
}

/// Coordinator stub capturing responses and deltas. Workers send deltas
/// (and replies to reliable requests) through the reliable channel, so the
/// stub unwraps DATA frames — and acks them, else the worker retransmits
/// forever.
class CoordStub final : public NetworkNode {
 public:
  CoordStub() : channel_(kCoord, counters_) {}
  [[nodiscard]] NodeId node_id() const override { return kCoord; }
  void handle_message(const Message& message, SimNetwork& network) override {
    Message inner = message;
    switch (static_cast<MsgType>(message.type)) {
      case MsgType::kReliableData: {
        auto unwrapped = channel_.on_data(message, network);
        if (!unwrapped) return;
        inner = std::move(*unwrapped);
        break;
      }
      case MsgType::kReliableAck:
        channel_.on_ack(message);
        return;
      default:
        break;
    }
    BinaryReader reader(inner.payload);
    switch (static_cast<MsgType>(inner.type)) {
      case MsgType::kQueryResponse:
        responses.push_back(decode_query_response(reader));
        break;
      case MsgType::kDeltaBatch: {
        DeltaBatch batch = decode_delta_batch(reader);
        deltas.insert(deltas.end(), batch.deltas.begin(), batch.deltas.end());
        break;
      }
      default:
        break;
    }
  }
  std::vector<QueryResponse> responses;
  std::vector<WireDelta> deltas;

 private:
  CounterSet counters_;
  ReliableChannel channel_;
};

class WorkerFixture : public ::testing::Test {
 protected:
  WorkerFixture() : worker_(WorkerId(1), kCoord, worker_config()) {
    NetworkConfig nc;
    nc.latency_jitter = Duration::zero();
    network_ = std::make_unique<SimNetwork>(nc);
    network_->attach(worker_);
    network_->attach(coord_);
  }

  void send_ingest(PartitionId p, std::vector<Detection> dets,
                   bool replica = false) {
    IngestBatch batch{p, replica, std::move(dets)};
    network_->send({kCoord, worker_.node_id(),
                    static_cast<std::uint32_t>(MsgType::kIngestBatch),
                    encode(batch), network_->now()});
    network_->run_until_idle();
  }

  QueryResult run_query(const Query& q, std::vector<PartitionId> parts) {
    QueryRequest req{next_request_++, 0, q, std::move(parts)};
    network_->send({kCoord, worker_.node_id(),
                    static_cast<std::uint32_t>(MsgType::kQueryRequest),
                    encode(req), network_->now()});
    network_->run_until_idle();
    EXPECT_FALSE(coord_.responses.empty());
    QueryResult r = coord_.responses.back().result;
    return r;
  }

  WorkerNode worker_;
  CoordStub coord_;
  std::unique_ptr<SimNetwork> network_;
  std::uint64_t next_request_ = 1;
};

TEST_F(WorkerFixture, IngestsAndServesRangeQuery) {
  send_ingest(PartitionId(0), {make_detection(1, {10, 10}, 100),
                               make_detection(2, {500, 500}, 200)});
  EXPECT_EQ(worker_.stored_detections(), 2u);
  EXPECT_EQ(worker_.partition_count(), 1u);

  Query q = Query::range(QueryId(1), {{0, 0}, {100, 100}},
                         TimeInterval::all());
  QueryResult r = run_query(q, {PartitionId(0)});
  ASSERT_EQ(r.detections.size(), 1u);
  EXPECT_EQ(r.detections[0].id, DetectionId(1));
}

TEST_F(WorkerFixture, QueryOnlyServesNamedPartitions) {
  send_ingest(PartitionId(0), {make_detection(1, {10, 10}, 100)});
  send_ingest(PartitionId(1), {make_detection(2, {20, 20}, 100)});

  Query q = Query::range(QueryId(1), {{0, 0}, {100, 100}},
                         TimeInterval::all());
  QueryResult r = run_query(q, {PartitionId(1)});
  ASSERT_EQ(r.detections.size(), 1u);
  EXPECT_EQ(r.detections[0].id, DetectionId(2));
}

TEST_F(WorkerFixture, UnknownPartitionServedAsEmpty) {
  Query q = Query::range(QueryId(1), {{0, 0}, {100, 100}},
                         TimeInterval::all());
  QueryResult r = run_query(q, {PartitionId(7)});
  EXPECT_TRUE(r.detections.empty());
}

TEST_F(WorkerFixture, MultiplePartitionsMergedInOneResponse) {
  send_ingest(PartitionId(0), {make_detection(1, {10, 10}, 100)});
  send_ingest(PartitionId(1), {make_detection(2, {20, 20}, 200)});
  Query q = Query::range(QueryId(1), {{0, 0}, {100, 100}},
                         TimeInterval::all());
  QueryResult r = run_query(q, {PartitionId(0), PartitionId(1)});
  EXPECT_EQ(r.detections.size(), 2u);
}

TEST_F(WorkerFixture, MonitorEmitsPositiveDeltaOnPrimaryIngest) {
  MonitorInstall install{QueryId(5), {{0, 0}, {100, 100}},
                         Duration::minutes(1)};
  network_->send({kCoord, worker_.node_id(),
                  static_cast<std::uint32_t>(MsgType::kInstallMonitor),
                  encode(install), network_->now()});
  network_->run_until_idle();

  send_ingest(PartitionId(0), {make_detection(1, {50, 50}, 100)});
  // Deltas flush on the monitor tick; drive the worker's timer.
  worker_.start(*network_);
  network_->run_until(network_->now() + Duration::seconds(3));
  ASSERT_FALSE(coord_.deltas.empty());
  EXPECT_EQ(coord_.deltas[0].query, QueryId(5));
  EXPECT_TRUE(coord_.deltas[0].positive);
}

TEST_F(WorkerFixture, ReplicaIngestDoesNotDriveMonitors) {
  MonitorInstall install{QueryId(5), {{0, 0}, {100, 100}},
                         Duration::minutes(1)};
  network_->send({kCoord, worker_.node_id(),
                  static_cast<std::uint32_t>(MsgType::kInstallMonitor),
                  encode(install), network_->now()});
  network_->run_until_idle();

  send_ingest(PartitionId(0), {make_detection(1, {50, 50}, 100)},
              /*replica=*/true);
  worker_.start(*network_);
  network_->run_until(network_->now() + Duration::seconds(3));
  EXPECT_TRUE(coord_.deltas.empty());
  // But the data is stored and queryable (replica serving).
  EXPECT_EQ(worker_.stored_detections(), 1u);
}

TEST_F(WorkerFixture, SyncRequestReturnsPartitionContents) {
  send_ingest(PartitionId(2), {make_detection(1, {10, 10}, 100),
                               make_detection(2, {20, 20}, 200)});
  // A second worker asks for partition 2.
  WorkerNode other(WorkerId(2), kCoord, worker_config());
  network_->attach(other);
  other.start_resync({{PartitionId(2), worker_.node_id()}}, *network_);
  EXPECT_FALSE(other.resync_complete());
  network_->run_until_idle();
  EXPECT_TRUE(other.resync_complete());
  EXPECT_EQ(other.stored_detections(), 2u);
}

TEST_F(WorkerFixture, LoseStateClearsEverything) {
  send_ingest(PartitionId(0), {make_detection(1, {10, 10}, 100)});
  EXPECT_EQ(worker_.stored_detections(), 1u);
  worker_.lose_state();
  EXPECT_EQ(worker_.stored_detections(), 0u);
  EXPECT_EQ(worker_.partition_count(), 0u);
}

TEST_F(WorkerFixture, CountersTrackIngestKinds) {
  send_ingest(PartitionId(0), {make_detection(1, {10, 10}, 100)});
  send_ingest(PartitionId(0), {make_detection(2, {10, 10}, 200)},
              /*replica=*/true);
  EXPECT_EQ(worker_.counters().get("ingested_primary"), 1u);
  EXPECT_EQ(worker_.counters().get("ingested_replica"), 1u);
}

}  // namespace
}  // namespace stcn
