#include "query/selectivity.h"

#include <gtest/gtest.h>

namespace stcn {
namespace {

SelectivityConfig config() {
  SelectivityConfig c;
  c.world = {{0, 0}, {1600, 1600}};
  c.grid_cols = 16;
  c.grid_rows = 16;
  c.time_bucket = Duration::minutes(1);
  c.time_buckets = 8;
  return c;
}

TimeInterval first_minute() {
  return {TimePoint(0), TimePoint(60'000'000)};
}

TEST(SelectivityEstimator, StartsDark) {
  SelectivityEstimator est(config());
  EXPECT_DOUBLE_EQ(est.coverage(), 0.0);
  EXPECT_DOUBLE_EQ(est.estimate({{0, 0}, {100, 100}}, first_minute()), 0.0);
}

TEST(SelectivityEstimator, LearnsFromFeedback) {
  SelectivityEstimator est(config());
  Rect region{{0, 0}, {100, 100}};  // exactly one grid cell
  est.observe(region, first_minute(), 50);
  EXPECT_GT(est.coverage(), 0.0);
  EXPECT_NEAR(est.estimate(region, first_minute()), 50.0, 1.0);
}

TEST(SelectivityEstimator, EstimateScalesWithRegionFraction) {
  SelectivityEstimator est(config());
  Rect cell{{0, 0}, {100, 100}};
  est.observe(cell, first_minute(), 100);
  // Half the cell → roughly half the estimate.
  Rect half{{0, 0}, {50, 100}};
  EXPECT_NEAR(est.estimate(half, first_minute()), 50.0, 5.0);
}

TEST(SelectivityEstimator, UnlitRegionsUseLitPrior) {
  SelectivityEstimator est(config());
  est.observe({{0, 0}, {100, 100}}, first_minute(), 80);
  // A never-observed cell gets the mean of lit cells as prior.
  double unlit = est.estimate({{800, 800}, {900, 900}}, first_minute());
  EXPECT_NEAR(unlit, 80.0, 8.0);
}

TEST(SelectivityEstimator, RepeatedFeedbackConverges) {
  SelectivityEstimator est(config());
  Rect region{{200, 200}, {300, 300}};
  est.observe(region, first_minute(), 10);  // early noisy observation
  for (int i = 0; i < 30; ++i) {
    est.observe(region, first_minute(), 100);
  }
  EXPECT_NEAR(est.estimate(region, first_minute()), 100.0, 5.0);
}

TEST(SelectivityEstimator, MultiCellQueryDistributesDensity) {
  SelectivityEstimator est(config());
  Rect four_cells{{0, 0}, {200, 200}};
  est.observe(four_cells, first_minute(), 400);
  // Each covered cell learned ~100; a one-cell query estimates ~100.
  EXPECT_NEAR(est.estimate({{0, 0}, {100, 100}}, first_minute()), 100.0,
              10.0);
  EXPECT_NEAR(est.estimate(four_cells, first_minute()), 400.0, 20.0);
}

TEST(SelectivityEstimator, TimeBucketsAreIndependent) {
  SelectivityEstimator est(config());
  TimeInterval minute0{TimePoint(0), TimePoint(60'000'000)};
  TimeInterval minute1{TimePoint(60'000'000), TimePoint(120'000'000)};
  Rect region{{0, 0}, {100, 100}};
  est.observe(region, minute0, 200);
  est.observe(region, minute1, 10);
  EXPECT_GT(est.estimate(region, minute0), est.estimate(region, minute1));
}

TEST(SelectivityEstimator, RegionOutsideWorldIsZero) {
  SelectivityEstimator est(config());
  est.observe({{0, 0}, {100, 100}}, first_minute(), 50);
  EXPECT_DOUBLE_EQ(
      est.estimate({{5000, 5000}, {6000, 6000}}, first_minute()), 0.0);
}

}  // namespace
}  // namespace stcn
