#include "query/analytics.h"

#include <gtest/gtest.h>

#include <memory>

#include "baseline/centralized.h"
#include "core/framework.h"
#include "partition/strategies.h"
#include "trace/generator.h"

namespace stcn {
namespace {

struct AnalyticsScenario {
  Trace trace;
  Rect world;
  CentralizedIndex oracle;
  std::unique_ptr<Cluster> cluster;

  AnalyticsScenario()
      : trace(TraceGenerator::generate([] {
          TraceConfig c;
          c.roads.grid_cols = 6;
          c.roads.grid_rows = 6;
          c.cameras.camera_count = 20;
          c.mobility.object_count = 15;
          c.duration = Duration::minutes(4);
          return c;
        }())),
        world(trace.roads.bounds(120.0)),
        oracle(world) {
    oracle.ingest_all(trace.detections);
    ClusterConfig config;
    config.worker_count = 4;
    cluster = std::make_unique<Cluster>(
        world,
        std::make_unique<SpatialGridStrategy>(world, 3, 3, trace.cameras),
        config);
    cluster->ingest_all(trace.detections);
  }
};

AnalyticsScenario& scenario() {
  static AnalyticsScenario s;
  return s;
}

TEST(ActivitySeries, BucketsPartitionWindowAndSumToTotal) {
  AnalyticsScenario& s = scenario();
  QueryExecutorRef exec(*s.cluster);
  TimeInterval window{TimePoint::origin(),
                      TimePoint::origin() + Duration::minutes(4)};
  auto series = activity_series(exec, s.world, window, Duration::minutes(1));
  ASSERT_EQ(series.size(), 4u);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_EQ(series[i].bucket.length(), Duration::minutes(1));
    if (i > 0) {
      EXPECT_EQ(series[i].bucket.begin, series[i - 1].bucket.end);
    }
    total += series[i].count;
  }
  EXPECT_EQ(total, s.trace.detections.size());
}

TEST(ActivitySeries, PartialFinalBucketClamped) {
  AnalyticsScenario& s = scenario();
  QueryExecutorRef exec(*s.cluster);
  TimeInterval window{TimePoint::origin(),
                      TimePoint::origin() + Duration::seconds(150)};
  auto series = activity_series(exec, s.world, window, Duration::minutes(1));
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series[2].bucket.length(), Duration::seconds(30));
}

TEST(ActivitySeries, DistributedMatchesCentralized) {
  AnalyticsScenario& s = scenario();
  QueryExecutorRef dist(*s.cluster);
  QueryExecutorRef central(s.oracle);
  TimeInterval window{TimePoint::origin(),
                      TimePoint::origin() + Duration::minutes(4)};
  Rect region = Rect::centered(s.world.center(), 400.0);
  auto a = activity_series(dist, region, window, Duration::seconds(30));
  auto b = activity_series(central, region, window, Duration::seconds(30));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].count, b[i].count) << "bucket " << i;
  }
}

TEST(ActivitySeries, DegenerateInputs) {
  AnalyticsScenario& s = scenario();
  QueryExecutorRef exec(s.oracle);
  EXPECT_TRUE(activity_series(exec, s.world,
                              {TimePoint(5), TimePoint(5)},
                              Duration::minutes(1))
                  .empty());
  EXPECT_TRUE(activity_series(exec, s.world,
                              {TimePoint(0), TimePoint(10)}, Duration::zero())
                  .empty());
}

TEST(CameraProfiles, TotalsMatchPerCameraCounts) {
  AnalyticsScenario& s = scenario();
  QueryExecutorRef exec(*s.cluster);
  TimeInterval window{TimePoint::origin(),
                      TimePoint::origin() + Duration::minutes(4)};
  auto profiles = camera_profiles(exec, s.world, window, Duration::minutes(1));
  ASSERT_FALSE(profiles.empty());
  // Sorted busiest-first.
  for (std::size_t i = 1; i < profiles.size(); ++i) {
    EXPECT_GE(profiles[i - 1].total, profiles[i].total);
  }
  // Totals must match a direct per-camera count.
  std::map<std::uint64_t, std::uint64_t> expected;
  for (const Detection& d : s.trace.detections) {
    ++expected[d.camera.value()];
  }
  std::uint64_t sum = 0;
  for (const CameraProfile& p : profiles) {
    EXPECT_EQ(p.total, expected.at(p.camera.value())) << p.camera;
    EXPECT_GE(p.peak_count, 1u);
    EXPECT_LE(p.peak_count, p.total);
    sum += p.total;
  }
  EXPECT_EQ(sum, s.trace.detections.size());
}

TEST(BusiestRegions, TopCellsOrderedAndBounded) {
  AnalyticsScenario& s = scenario();
  QueryExecutorRef exec(*s.cluster);
  TimeInterval window{TimePoint::origin(),
                      TimePoint::origin() + Duration::minutes(4)};
  auto hot = busiest_regions(exec, s.world, window, 300.0, 5);
  ASSERT_FALSE(hot.empty());
  EXPECT_LE(hot.size(), 5u);
  for (std::size_t i = 1; i < hot.size(); ++i) {
    EXPECT_GE(hot[i - 1].count, hot[i].count);
  }
  // The top cell's count must equal a direct count query over its bounds.
  QueryResult direct = s.cluster->execute(Query::count(
      s.cluster->next_query_id(), hot[0].bounds.intersection(s.world),
      window));
  EXPECT_EQ(hot[0].count, direct.total_count());
}

}  // namespace
}  // namespace stcn
