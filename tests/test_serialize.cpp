#include "common/serialize.h"

#include <gtest/gtest.h>

#include "query/query.h"
#include "query/result.h"
#include "trace/detection.h"

namespace stcn {
namespace {

TEST(BinaryRoundTrip, Primitives) {
  BinaryWriter w;
  w.write_u8(0xAB);
  w.write_u32(0xDEADBEEF);
  w.write_u64(0x0123456789ABCDEFULL);
  w.write_i64(-42);
  w.write_double(3.14159);
  w.write_bool(true);
  w.write_bool(false);
  w.write_string("hello, camera network");

  BinaryReader r(w.bytes());
  EXPECT_EQ(r.read_u8(), 0xAB);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.read_i64(), -42);
  EXPECT_DOUBLE_EQ(r.read_double(), 3.14159);
  EXPECT_TRUE(r.read_bool());
  EXPECT_FALSE(r.read_bool());
  EXPECT_EQ(r.read_string(), "hello, camera network");
  EXPECT_TRUE(r.at_end());
  EXPECT_FALSE(r.failed());
}

TEST(BinaryRoundTrip, IdsAndTime) {
  BinaryWriter w;
  w.write_id(CameraId(7));
  w.write_id(ObjectId(1234567890123ULL));
  w.write_time(TimePoint(999));
  w.write_duration(Duration::seconds(3));

  BinaryReader r(w.bytes());
  EXPECT_EQ(r.read_id<CameraIdTag>(), CameraId(7));
  EXPECT_EQ(r.read_id<ObjectIdTag>(), ObjectId(1234567890123ULL));
  EXPECT_EQ(r.read_time(), TimePoint(999));
  EXPECT_EQ(r.read_duration(), Duration::seconds(3));
  EXPECT_TRUE(r.at_end());
}

TEST(BinaryRoundTrip, Vectors) {
  BinaryWriter w;
  std::vector<std::uint64_t> values{1, 2, 3, 100};
  w.write_vector(values, [](BinaryWriter& bw, std::uint64_t v) {
    bw.write_u64(v);
  });
  BinaryReader r(w.bytes());
  auto back = r.read_vector<std::uint64_t>(
      [](BinaryReader& br) { return br.read_u64(); });
  EXPECT_EQ(back, values);
}

TEST(BinaryReader, TruncatedReadFails) {
  BinaryWriter w;
  w.write_u32(7);
  BinaryReader r(w.bytes());
  r.read_u64();  // asks for more than available
  EXPECT_TRUE(r.failed());
  EXPECT_FALSE(r.status().is_ok());
  // Subsequent reads return zeros, no UB.
  EXPECT_EQ(r.read_u32(), 0u);
}

TEST(BinaryReader, CorruptStringLengthFails) {
  BinaryWriter w;
  w.write_u32(1000);  // claims 1000 bytes follow; none do
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.read_string(), "");
  EXPECT_TRUE(r.failed());
}

TEST(BinaryReader, CorruptVectorLengthFails) {
  BinaryWriter w;
  w.write_u32(0xFFFFFFFF);  // absurd element count
  BinaryReader r(w.bytes());
  auto v = r.read_vector<std::uint64_t>(
      [](BinaryReader& br) { return br.read_u64(); });
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(r.failed());
}

Detection make_detection() {
  Detection d;
  d.id = DetectionId(11);
  d.camera = CameraId(22);
  d.object = ObjectId(33);
  d.time = TimePoint(444555);
  d.position = {12.5, -7.25};
  d.appearance.values = {0.5f, -0.5f, 0.5f, -0.5f};
  d.confidence = 0.87;
  return d;
}

TEST(DetectionSerialization, RoundTrip) {
  Detection d = make_detection();
  BinaryWriter w;
  serialize(w, d);
  BinaryReader r(w.bytes());
  Detection back = deserialize_detection(r);
  EXPECT_FALSE(r.failed());
  EXPECT_EQ(back, d);
}

TEST(QuerySerialization, RoundTripAllKinds) {
  std::vector<Query> queries = {
      Query::range(QueryId(1), {{0, 0}, {10, 10}},
                   {TimePoint(0), TimePoint(100)}),
      Query::circle_query(QueryId(2), {{5, 5}, 3.0},
                          {TimePoint(10), TimePoint(20)}),
      Query::knn(QueryId(3), {1, 2}, 7, TimeInterval::all()),
      Query::trajectory(QueryId(4), ObjectId(42),
                        {TimePoint(0), TimePoint(50)}),
      Query::count(QueryId(5), {{0, 0}, {1, 1}},
                   {TimePoint(0), TimePoint(1)}, GroupBy::kCamera),
      Query::camera_window(QueryId(6), CameraId(9),
                           {TimePoint(3), TimePoint(9)}),
  };
  for (const Query& q : queries) {
    BinaryWriter w;
    serialize(w, q);
    BinaryReader r(w.bytes());
    Query back = deserialize_query(r);
    EXPECT_FALSE(r.failed());
    EXPECT_EQ(back.id, q.id);
    EXPECT_EQ(back.kind, q.kind);
    EXPECT_EQ(back.interval, q.interval);
    EXPECT_EQ(back.region, q.region);
    EXPECT_EQ(back.center, q.center);
    EXPECT_EQ(back.k, q.k);
    EXPECT_EQ(back.object, q.object);
    EXPECT_EQ(back.camera, q.camera);
    EXPECT_EQ(back.group_by, q.group_by);
  }
}

TEST(QueryResultSerialization, RoundTrip) {
  QueryResult result;
  result.query = QueryId(77);
  result.detections = {make_detection()};
  result.counts[0] = 5;
  result.counts[22] = 3;

  BinaryWriter w;
  serialize(w, result);
  BinaryReader r(w.bytes());
  QueryResult back = deserialize_query_result(r);
  EXPECT_FALSE(r.failed());
  EXPECT_EQ(back.query, result.query);
  ASSERT_EQ(back.detections.size(), 1u);
  EXPECT_EQ(back.detections[0], result.detections[0]);
  EXPECT_EQ(back.counts, result.counts);
  EXPECT_EQ(back.total_count(), 8u);
}

TEST(AppearanceFeature, SimilarityAndNormalize) {
  AppearanceFeature a;
  a.values = {3.0f, 4.0f};
  a.normalize();
  EXPECT_NEAR(a.values[0], 0.6f, 1e-6);
  EXPECT_NEAR(a.values[1], 0.8f, 1e-6);

  AppearanceFeature b;
  b.values = {0.6f, 0.8f};
  EXPECT_NEAR(a.similarity(b), 1.0, 1e-6);

  AppearanceFeature orthogonal;
  orthogonal.values = {-0.8f, 0.6f};
  EXPECT_NEAR(a.similarity(orthogonal), 0.0, 1e-6);

  AppearanceFeature zero;
  zero.values = {0.0f, 0.0f};
  zero.normalize();  // must not divide by zero
  EXPECT_EQ(zero.values[0], 0.0f);
}

}  // namespace
}  // namespace stcn
