// EXPLAIN/ANALYZE: query profiles must show, per planning/execution stage,
// what the planner estimated, what actually came back, and what each
// pruning step ruled out — for distributed queries (partition selection,
// per-worker scans), planner-assisted k-NN (radius guesses, rounds), and
// multi-hop path reconstruction (transition-cone pruning per hop).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/framework.h"
#include "partition/strategies.h"
#include "trace/generator.h"

namespace stcn {
namespace {

struct Scenario {
  Trace trace;
  Rect world;

  Scenario()
      : trace(TraceGenerator::generate([] {
          TraceConfig c;
          c.roads.grid_cols = 8;
          c.roads.grid_rows = 8;
          c.cameras.camera_count = 30;
          c.mobility.object_count = 25;
          c.duration = Duration::minutes(5);
          c.seed = 4242;
          return c;
        }())),
        world(trace.roads.bounds(120.0)) {}
};

Scenario& scenario() {
  static Scenario s;
  return s;
}

std::unique_ptr<Cluster> make_cluster(ClusterConfig config = {}) {
  Scenario& s = scenario();
  config.worker_count = 4;
  config.network.latency_jitter = Duration::zero();
  auto cluster = std::make_unique<Cluster>(
      s.world,
      std::make_unique<SpatialGridStrategy>(s.world, 3, 3, s.trace.cameras),
      config);
  cluster->ingest_all(s.trace.detections);
  return cluster;
}

/// Feeds the selectivity estimator with observed query results so later
/// plans carry meaningful estimates.
void warm_estimator(Cluster& cluster) {
  Scenario& s = scenario();
  Rng rng(7);
  for (int i = 0; i < 8; ++i) {
    Rect region = Rect::centered(
        {rng.uniform(s.world.min.x, s.world.max.x),
         rng.uniform(s.world.min.y, s.world.max.y)},
        rng.uniform(100.0, 500.0));
    cluster.execute(
        Query::range(cluster.next_query_id(), region, TimeInterval::all()));
  }
}

/// A region guaranteed to contain detections: centered on one of them.
Rect populated_region(double half_extent = 150.0) {
  const Detection& d =
      scenario().trace.detections[scenario().trace.detections.size() / 2];
  return Rect::centered(d.position, half_extent);
}

// ------------------------------------------------------------- unit level

TEST(QError, RatioIsSymmetricAndSmoothed) {
  EXPECT_DOUBLE_EQ(q_error(0.0, 0.0), 1.0);  // perfect (with +1 smoothing)
  EXPECT_DOUBLE_EQ(q_error(9.0, 4.0), 2.0);
  EXPECT_DOUBLE_EQ(q_error(4.0, 9.0), 2.0);  // symmetric
  EXPECT_GT(q_error(0.0, 99.0), 10.0);       // zero estimate stays finite
}

TEST(QError, ClampedAndDefinedOnDegenerateInputs) {
  // Nonzero estimate against an actual of 0: finite, defined, clamped.
  EXPECT_DOUBLE_EQ(q_error(99.0, 0.0), 100.0);
  EXPECT_DOUBLE_EQ(q_error(1e12, 0.0), kMaxQError);
  EXPECT_DOUBLE_EQ(q_error(0.0, 1e12), kMaxQError);
  // The -1 "not recorded" sentinel must not drive a denominator to 0
  // (est=-1 ⇒ e=0 ⇒ a/e = inf before the clamp).
  EXPECT_DOUBLE_EQ(q_error(-1.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(q_error(-1.0, 9.0), 10.0);
  EXPECT_DOUBLE_EQ(q_error(9.0, -1.0), 10.0);
  // Hostile floats stay inside [1, kMaxQError].
  double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(q_error(inf, 10.0), kMaxQError);
  EXPECT_DOUBLE_EQ(q_error(std::nan(""), 10.0), kMaxQError);
  EXPECT_GE(q_error(123.0, 456.0), 1.0);
  EXPECT_LE(q_error(123.0, 456.0), kMaxQError);
}

TEST(QueryProfiler, InactiveProfilerSwallowsWrites) {
  QueryProfiler profiler;
  EXPECT_FALSE(profiler.active());
  std::size_t h = profiler.open_stage("ghost", TimePoint::origin());
  EXPECT_EQ(h, QueryProfiler::kNoStage);
  profiler.stage(h).considered = 42;  // writes land in the scratch sink
  profiler.close_stage(h, TimePoint::origin());
}

TEST(QueryProfiler, RecordsNestedStagesAndFinishes) {
  QueryProfiler profiler;
  TimePoint t0 = TimePoint::origin();
  profiler.begin("query kind=range", t0);
  ASSERT_TRUE(profiler.active());

  std::size_t outer = profiler.open_stage("plan", t0);
  profiler.stage(outer).estimated = 100.0;
  profiler.push_depth();
  std::size_t inner =
      profiler.open_stage("scan", t0 + Duration::millis(1));
  profiler.stage(inner).actual = 37;
  profiler.stage(inner).pruned = 12;
  profiler.close_stage(inner, t0 + Duration::millis(3));
  profiler.pop_depth();
  profiler.stage(outer).actual = 37;
  profiler.close_stage(outer, t0 + Duration::millis(3));

  QueryProfile profile = profiler.finish(t0 + Duration::millis(4));
  EXPECT_FALSE(profiler.active());
  ASSERT_EQ(profile.stages.size(), 2u);
  EXPECT_EQ(profile.stages[0].depth, 0);
  EXPECT_EQ(profile.stages[1].depth, 1);
  EXPECT_EQ(profile.stages[1].sim_time, Duration::millis(2));
  EXPECT_EQ(profile.latency, Duration::millis(4));
  EXPECT_DOUBLE_EQ(profile.worst_q_error(),
                   q_error(100.0, 37.0));
  EXPECT_EQ(profile.total_pruned(), 12u);
  ASSERT_NE(profile.stage("scan"), nullptr);
  EXPECT_EQ(profile.stage("missing"), nullptr);

  std::string text = profile.render();
  EXPECT_NE(text.find("EXPLAIN"), std::string::npos);
  EXPECT_NE(text.find("plan"), std::string::npos);
  obs::JsonValue v;
  std::string error;
  ASSERT_TRUE(obs::JsonValue::parse(profile.to_json(), v, &error)) << error;
  EXPECT_EQ(v.at("stages").array().size(), 2u);
}

TEST(QueryProfiler, BoundsStageCountAndCountsDrops) {
  QueryProfiler profiler;
  TimePoint t0 = TimePoint::origin();
  profiler.begin("deep search", t0);
  for (std::size_t i = 0; i < QueryProfiler::kMaxStages + 10; ++i) {
    std::size_t h = profiler.open_stage("s", t0);
    profiler.stage(h).considered = i;  // overflow writes hit the scratch
    profiler.close_stage(h, t0);
  }
  QueryProfile profile = profiler.finish(t0);
  EXPECT_EQ(profile.stages.size(), QueryProfiler::kMaxStages);
  EXPECT_EQ(profile.stages_dropped, 10u);
}

// --------------------------------------------------- distributed queries

TEST(Explain, RangeQueryRecordsEstimateSelectionAndScans) {
  auto cluster = make_cluster();
  warm_estimator(*cluster);

  Rect region = populated_region();
  Cluster::ExplainResult out = cluster->explain(
      Query::range(cluster->next_query_id(), region, TimeInterval::all()));
  ASSERT_FALSE(out.result.detections.empty());
  const QueryProfile& profile = out.profile;
  EXPECT_NE(profile.description.find("range"), std::string::npos);
  EXPECT_GT(profile.latency, Duration::zero());
  EXPECT_NE(profile.request_id, 0u);

  // Selectivity estimate: warmed estimator recorded both sides.
  const ExplainStage* estimate = profile.stage("selectivity.estimate");
  ASSERT_NE(estimate, nullptr);
  EXPECT_TRUE(estimate->has_estimate());
  ASSERT_TRUE(estimate->has_actual());
  EXPECT_EQ(estimate->actual,
            static_cast<std::int64_t>(out.result.detections.size()));
  EXPECT_GE(profile.worst_q_error(), 1.0);

  // Partition selection: a small region on a 3x3 spatial grid must prune.
  const ExplainStage* selection = profile.stage("partition_selection");
  ASSERT_NE(selection, nullptr);
  EXPECT_GT(selection->considered, 0u);
  EXPECT_GT(selection->actual, 0);
  EXPECT_GT(selection->pruned, 0u);
  EXPECT_EQ(selection->considered,
            static_cast<std::uint64_t>(selection->actual) + selection->pruned);

  // Worker scans: rows scanned, rows returned, measured wall time.
  auto scans = profile.stages_named("worker.scan");
  ASSERT_FALSE(scans.empty());
  std::uint64_t scanned = 0;
  std::int64_t returned = 0;
  for (const ExplainStage* s : scans) {
    scanned += s->considered;
    returned += s->actual >= 0 ? s->actual : 0;
    EXPECT_GE(s->wall_us, 0);
    EXPECT_GE(s->sim_time, Duration::zero());
  }
  EXPECT_GT(scanned, 0u);
  EXPECT_EQ(returned,
            static_cast<std::int64_t>(out.result.detections.size()));

  // Renders and serializes.
  std::string text = profile.render();
  EXPECT_NE(text.find("partition_selection"), std::string::npos);
  EXPECT_NE(text.find("worker.scan"), std::string::npos);
  obs::JsonValue v;
  std::string error;
  ASSERT_TRUE(obs::JsonValue::parse(profile.to_json(), v, &error)) << error;

  // Estimate-error histogram lit by the warm-up executes and this query.
  EXPECT_GT(
      cluster->coordinator().metrics().histogram("estimate_q_error_x100")
          .count(),
      0u);
}

TEST(Explain, KnnShowsPlanRoundsWithNestedSelection) {
  auto cluster = make_cluster();
  warm_estimator(*cluster);

  const Detection& anchor =
      scenario().trace.detections[scenario().trace.detections.size() / 3];
  Cluster::ExplainResult out = cluster->explain(Query::knn(
      cluster->next_query_id(), anchor.position, 5, TimeInterval::all()));
  EXPECT_EQ(out.result.detections.size(), 5u);
  const QueryProfile& profile = out.profile;

  // The planner stage records its radius guesses and final estimate.
  const ExplainStage* plan = profile.stage("knn.plan");
  ASSERT_NE(plan, nullptr);
  EXPECT_GT(plan->considered, 0u);  // radius guesses examined
  EXPECT_TRUE(plan->has_estimate());

  // At least one expansion round, each with estimated vs actual.
  auto rounds = profile.stages_named("knn.round");
  ASSERT_FALSE(rounds.empty());
  EXPECT_TRUE(rounds.front()->has_estimate());
  EXPECT_TRUE(rounds.front()->has_actual());
  EXPECT_GT(rounds.front()->actual, 0);

  // The per-round circle query nests under the round: partition selection
  // recorded one level deeper, and bounded circles prune partitions.
  auto selections = profile.stages_named("partition_selection");
  ASSERT_FALSE(selections.empty());
  bool nested = false;
  std::uint64_t pruned = 0;
  for (const ExplainStage* s : selections) {
    nested = nested || s->depth > rounds.front()->depth;
    pruned += s->pruned;
  }
  EXPECT_TRUE(nested);
  EXPECT_GT(pruned, 0u);

  EXPECT_GT(
      cluster->coordinator().metrics().histogram("knn_plan_q_error_x100")
          .count(),
      0u);
}

TEST(Explain, ProfileAttachesToSlowQueryLog) {
  ClusterConfig config;
  config.coordinator.slow_query_threshold = Duration::zero();
  auto cluster = make_cluster(config);

  Cluster::ExplainResult out = cluster->explain(Query::range(
      cluster->next_query_id(), populated_region(), TimeInterval::all()));

  const SlowQueryLog& log = cluster->coordinator().slow_query_log();
  ASSERT_GT(log.size(), 0u);
  const SlowQueryLog::Entry& entry = log.entries().back();
  EXPECT_EQ(entry.request_id, out.profile.request_id);
  ASSERT_TRUE(entry.profile.has_value());
  EXPECT_EQ(entry.profile->stages.size(), out.profile.stages.size());
  // The rendered log interleaves the span tree with the EXPLAIN tree.
  std::string text = log.render();
  EXPECT_NE(text.find("partition_selection"), std::string::npos);
}

// ------------------------------------------------- path reconstruction

/// A probe whose object reappears at several distinct cameras.
const Detection* multi_hop_probe(const Trace& trace) {
  std::unordered_map<std::uint64_t, std::vector<const Detection*>> by_object;
  for (const Detection& d : trace.detections) {
    by_object[d.object.value()].push_back(&d);
  }
  for (const auto& [obj, dets] : by_object) {
    if (dets.size() < 4) continue;
    std::set<std::uint64_t> cameras;
    for (const Detection* d : dets) cameras.insert(d->camera.value());
    if (cameras.size() >= 3) return dets.front();
  }
  return nullptr;
}

TEST(Explain, PathReconstructionProfilesConePruningPerHop) {
  auto cluster = make_cluster();
  Scenario& s = scenario();

  TransitionGraph graph;
  graph.learn(s.trace.detections);
  ReidParams reid_params;
  reid_params.cone.max_hops = 2;
  reid_params.cone.min_edge_count = 2;
  reid_params.min_similarity = 0.6;
  reid_params.max_matches = 5;
  ReidEngine engine(graph, reid_params);

  PathParams path_params;
  path_params.beam_width = 3;
  path_params.max_path_length = 5;
  path_params.hop_horizon = Duration::minutes(2);

  DistributedCandidateSource source(*cluster, s.trace.cameras);
  const Detection* probe = multi_hop_probe(s.trace);
  ASSERT_NE(probe, nullptr);

  Cluster::ExplainPathResult out =
      cluster->explain_path(engine, path_params, *probe, source);
  ASSERT_FALSE(out.path.hops.empty());
  EXPECT_EQ(out.path.hops.front().id, probe->id);
  const QueryProfile& profile = out.profile;
  EXPECT_NE(profile.description.find("path"), std::string::npos);

  // Each beam depth records a hop stage: candidates examined vs extensions.
  auto hops = profile.stages_named("path.hop");
  ASSERT_FALSE(hops.empty());
  EXPECT_GT(hops.front()->considered, 0u);

  // Transition-cone pruning: the cone kept a subset of the network's
  // cameras, nested under the hop that ran it.
  auto cones = profile.stages_named("reid.cone");
  ASSERT_FALSE(cones.empty());
  const ExplainStage* cone = cones.front();
  EXPECT_EQ(cone->considered, s.trace.cameras.size());
  EXPECT_GT(cone->pruned, 0u);
  EXPECT_GT(cone->depth, hops.front()->depth);

  // Candidate scoring recorded scanned vs kept.
  auto scans = profile.stages_named("reid.scan");
  ASSERT_FALSE(scans.empty());
  EXPECT_GE(scans.front()->considered,
            static_cast<std::uint64_t>(scans.front()->actual));

  // The distributed camera-window fetches nest under the re-id scan.
  bool deep_selection = false;
  for (const ExplainStage* sel : profile.stages_named("partition_selection")) {
    deep_selection = deep_selection || sel->depth >= 2;
  }
  EXPECT_TRUE(deep_selection);

  EXPECT_GT(profile.total_pruned(), 0u);
  EXPECT_FALSE(profile.render().empty());
  obs::JsonValue v;
  std::string error;
  ASSERT_TRUE(obs::JsonValue::parse(profile.to_json(), v, &error)) << error;
}

}  // namespace
}  // namespace stcn
