#include "index/bloom.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace stcn {
namespace {

TEST(BloomFilter, EmptyContainsNothing) {
  BloomFilter f(1024, 4);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    EXPECT_FALSE(f.may_contain(k));
  }
  EXPECT_DOUBLE_EQ(f.fill_ratio(), 0.0);
  EXPECT_EQ(f.inserted(), 0u);
}

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter f(2048, 4);
  Rng rng(1);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 200; ++i) keys.push_back(rng.next_u64());
  for (std::uint64_t k : keys) f.insert(k);
  for (std::uint64_t k : keys) {
    ASSERT_TRUE(f.may_contain(k)) << "false negative for " << k;
  }
  EXPECT_EQ(f.inserted(), 200u);
}

TEST(BloomFilter, FalsePositiveRateReasonable) {
  BloomFilter f(4096, 4);
  Rng rng(2);
  for (int i = 0; i < 300; ++i) f.insert(rng.next_u64());
  // ~300 keys in 4096 bits with 4 hashes → theoretical fp ≈ 0.5%.
  int false_positives = 0;
  const int probes = 10000;
  for (int i = 0; i < probes; ++i) {
    if (f.may_contain(rng.next_u64())) ++false_positives;
  }
  EXPECT_LT(false_positives, probes / 20)
      << "fp rate " << false_positives << "/" << probes;
}

TEST(BloomFilter, BitsRoundedUpTo64) {
  BloomFilter f(65, 2);
  EXPECT_EQ(f.bit_count(), 128u);
}

TEST(BloomFilter, ClearEmpties) {
  BloomFilter f(1024, 4);
  f.insert(42);
  ASSERT_TRUE(f.may_contain(42));
  f.clear();
  EXPECT_FALSE(f.may_contain(42));
  EXPECT_EQ(f.inserted(), 0u);
}

TEST(BloomFilter, MergeIsUnion) {
  BloomFilter a(1024, 4);
  BloomFilter b(1024, 4);
  a.insert(1);
  a.insert(2);
  b.insert(3);
  a.merge(b);
  EXPECT_TRUE(a.may_contain(1));
  EXPECT_TRUE(a.may_contain(2));
  EXPECT_TRUE(a.may_contain(3));
  EXPECT_EQ(a.inserted(), 3u);
}

TEST(BloomFilter, SerializationRoundTrip) {
  BloomFilter f(2048, 5);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) f.insert(rng.next_u64());
  BinaryWriter w;
  f.serialize_to(w);
  BinaryReader r(w.bytes());
  BloomFilter back = BloomFilter::deserialize_from(r);
  EXPECT_FALSE(r.failed());
  EXPECT_EQ(back, f);
  EXPECT_EQ(back.inserted(), 100u);
}

TEST(BloomFilter, DeserializeRejectsGarbage) {
  BinaryWriter w;
  w.write_u32(0xFFFFFFFF);  // absurd word count
  w.write_u8(4);
  w.write_u64(0);
  BinaryReader r(w.bytes());
  (void)BloomFilter::deserialize_from(r);
  // Must not crash or allocate terabytes; reader state signals failure
  // through the surrounding message decode.
}

TEST(BloomFilter, FillRatioGrowsWithInsertions) {
  BloomFilter f(1024, 4);
  double prev = 0.0;
  Rng rng(4);
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 20; ++i) f.insert(rng.next_u64());
    double ratio = f.fill_ratio();
    EXPECT_GT(ratio, prev);
    prev = ratio;
  }
  EXPECT_LT(prev, 1.0);
}

}  // namespace
}  // namespace stcn
