// Query result limits: semantics and wire-size effects.
#include <gtest/gtest.h>

#include <memory>

#include "baseline/centralized.h"
#include "core/framework.h"
#include "partition/strategies.h"
#include "trace/generator.h"

namespace stcn {
namespace {

struct LimitScenario {
  Trace trace;
  Rect world;
  std::unique_ptr<Cluster> cluster;
  CentralizedIndex oracle;

  LimitScenario()
      : trace(TraceGenerator::generate([] {
          TraceConfig c;
          c.roads.grid_cols = 6;
          c.roads.grid_rows = 6;
          c.cameras.camera_count = 20;
          c.mobility.object_count = 15;
          c.duration = Duration::minutes(3);
          return c;
        }())),
        world(trace.roads.bounds(120.0)),
        oracle(world) {
    oracle.ingest_all(trace.detections);
    ClusterConfig config;
    config.worker_count = 4;
    cluster = std::make_unique<Cluster>(
        world,
        std::make_unique<SpatialGridStrategy>(world, 3, 3, trace.cameras),
        config);
    cluster->ingest_all(trace.detections);
  }
};

LimitScenario& scenario() {
  static LimitScenario s;
  return s;
}

TEST(QueryLimit, ReturnsEarliestNInTimeOrder) {
  LimitScenario& s = scenario();
  Query unlimited = Query::range(s.cluster->next_query_id(), s.world,
                                 TimeInterval::all());
  QueryResult all = s.cluster->execute(unlimited);
  ASSERT_GT(all.detections.size(), 20u);

  Query limited = Query::range(s.cluster->next_query_id(), s.world,
                               TimeInterval::all())
                      .with_limit(20);
  QueryResult first20 = s.cluster->execute(limited);
  ASSERT_EQ(first20.detections.size(), 20u);
  // Must be exactly the global earliest 20, in the same canonical order.
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(first20.detections[i].id, all.detections[i].id) << "rank " << i;
  }
}

TEST(QueryLimit, DistributedMatchesCentralized) {
  LimitScenario& s = scenario();
  for (std::uint32_t limit : {1u, 5u, 50u}) {
    Query q = Query::range(s.cluster->next_query_id(),
                           Rect::centered(s.world.center(), 400.0),
                           TimeInterval::all())
                  .with_limit(limit);
    QueryResult dist = s.cluster->execute(q);
    QueryResult central = s.oracle.execute(q);
    ASSERT_EQ(dist.detections.size(), central.detections.size());
    for (std::size_t i = 0; i < dist.detections.size(); ++i) {
      EXPECT_EQ(dist.detections[i].id, central.detections[i].id);
    }
  }
}

TEST(QueryLimit, LimitLargerThanResultIsNoOp) {
  LimitScenario& s = scenario();
  Query q = Query::range(s.cluster->next_query_id(), s.world,
                         TimeInterval::all())
                .with_limit(1'000'000);
  EXPECT_EQ(s.cluster->execute(q).detections.size(),
            s.trace.detections.size());
}

TEST(QueryLimit, ZeroMeansUnlimited) {
  LimitScenario& s = scenario();
  Query q = Query::range(s.cluster->next_query_id(), s.world,
                         TimeInterval::all())
                .with_limit(0);
  EXPECT_EQ(s.cluster->execute(q).detections.size(),
            s.trace.detections.size());
}

TEST(QueryLimit, BoundsWireBytes) {
  LimitScenario& s = scenario();
  auto bytes_for = [&](std::uint32_t limit) {
    auto before = s.cluster->network().counters().get("bytes_sent");
    Query q = Query::range(s.cluster->next_query_id(), s.world,
                           TimeInterval::all())
                  .with_limit(limit);
    (void)s.cluster->execute(q);
    return s.cluster->network().counters().get("bytes_sent") - before;
  };
  std::uint64_t small = bytes_for(5);
  std::uint64_t large = bytes_for(0);
  EXPECT_LT(small * 4, large)
      << "per-worker truncation must shrink response fragments";
}

TEST(QueryLimit, SurvivesSerialization) {
  Query q = Query::trajectory(QueryId(1), ObjectId(5), TimeInterval::all())
                .with_limit(17);
  BinaryWriter w;
  serialize(w, q);
  BinaryReader r(w.bytes());
  EXPECT_EQ(deserialize_query(r).limit, 17u);
}

TEST(QueryLimit, AppliesToTrajectoryAndCameraWindow) {
  LimitScenario& s = scenario();
  // Busiest object.
  std::unordered_map<std::uint64_t, std::size_t> counts;
  for (const Detection& d : s.trace.detections) ++counts[d.object.value()];
  std::uint64_t busiest = 1;
  for (auto [obj, n] : counts) {
    if (n > counts[busiest]) busiest = obj;
  }
  if (counts[busiest] > 3) {
    Query q = Query::trajectory(s.cluster->next_query_id(),
                                ObjectId(busiest), TimeInterval::all())
                  .with_limit(3);
    QueryResult r = s.cluster->execute(q);
    EXPECT_EQ(r.detections.size(), 3u);
    for (std::size_t i = 1; i < r.detections.size(); ++i) {
      EXPECT_LE(r.detections[i - 1].time, r.detections[i].time);
    }
  }
}

}  // namespace
}  // namespace stcn
