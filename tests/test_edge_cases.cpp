// Degenerate configurations and boundary conditions across modules —
// the inputs a downstream user will eventually feed the library.
#include <gtest/gtest.h>

#include <memory>

#include "baseline/centralized.h"
#include "core/framework.h"
#include "partition/strategies.h"
#include "query/colocation.h"
#include "trace/generator.h"

namespace stcn {
namespace {

Detection make_detection(std::uint64_t id, Point pos, std::int64_t t) {
  Detection d;
  d.id = DetectionId(id);
  d.camera = CameraId(1);
  d.object = ObjectId(1);
  d.position = pos;
  d.time = TimePoint(t);
  return d;
}

TEST(EdgeCases, NegativeCoordinateWorld) {
  // Worlds are often centered on an origin; everything must work with
  // negative coordinates throughout.
  Rect world{{-1000, -1000}, {1000, 1000}};
  CentralizedIndex index(world);
  index.ingest(make_detection(1, {-500, -500}, 100));
  index.ingest(make_detection(2, {500, 500}, 200));
  index.ingest(make_detection(3, {-999, 999}, 300));

  QueryResult r = index.execute(Query::range(
      QueryId(1), {{-600, -600}, {-400, -400}}, TimeInterval::all()));
  ASSERT_EQ(r.detections.size(), 1u);
  EXPECT_EQ(r.detections[0].id, DetectionId(1));

  QueryResult knn =
      index.execute(Query::knn(QueryId(2), {-990, 990}, 1, TimeInterval::all()));
  ASSERT_EQ(knn.detections.size(), 1u);
  EXPECT_EQ(knn.detections[0].id, DetectionId(3));
}

TEST(EdgeCases, SinglePartitionSingleWorkerCluster) {
  Rect world{{0, 0}, {100, 100}};
  RoadNetworkConfig rc;
  rc.grid_cols = 2;
  rc.grid_rows = 2;
  RoadNetwork roads = RoadNetwork::build(rc);
  CameraNetworkConfig cc;
  cc.camera_count = 2;
  CameraNetwork cameras = CameraNetwork::place(roads, cc);

  ClusterConfig config;
  config.worker_count = 1;
  Cluster cluster(world,
                  std::make_unique<SpatialGridStrategy>(world, 1, 1, cameras),
                  config);
  std::vector<Detection> dets = {make_detection(1, {50, 50}, 100)};
  cluster.ingest_all(dets);
  QueryResult r = cluster.execute(
      Query::range(cluster.next_query_id(), world, TimeInterval::all()));
  EXPECT_EQ(r.detections.size(), 1u);
}

TEST(EdgeCases, MoreWorkersThanPartitions) {
  Rect world{{0, 0}, {1000, 1000}};
  RoadNetworkConfig rc;
  rc.grid_cols = 3;
  rc.grid_rows = 3;
  rc.block_size_m = 400.0;
  RoadNetwork roads = RoadNetwork::build(rc);
  CameraNetworkConfig cc;
  cc.camera_count = 4;
  CameraNetwork cameras = CameraNetwork::place(roads, cc);

  ClusterConfig config;
  config.worker_count = 16;  // only 4 partitions exist
  Cluster cluster(world,
                  std::make_unique<SpatialGridStrategy>(world, 2, 2, cameras),
                  config);
  std::vector<Detection> dets;
  for (std::uint64_t i = 1; i <= 20; ++i) {
    dets.push_back(make_detection(
        i, {static_cast<double>(i * 45 % 1000), 500.0},
        static_cast<std::int64_t>(i * 1000)));
  }
  cluster.ingest_all(dets);
  QueryResult r = cluster.execute(
      Query::range(cluster.next_query_id(), world, TimeInterval::all()));
  EXPECT_EQ(r.detections.size(), 20u);
}

TEST(EdgeCases, EmptyClusterAnswersEverything) {
  Rect world{{0, 0}, {100, 100}};
  RoadNetworkConfig rc;
  rc.grid_cols = 2;
  rc.grid_rows = 2;
  RoadNetwork roads = RoadNetwork::build(rc);
  CameraNetworkConfig cc;
  cc.camera_count = 1;
  CameraNetwork cameras = CameraNetwork::place(roads, cc);

  ClusterConfig config;
  config.worker_count = 3;
  Cluster cluster(world,
                  std::make_unique<SpatialGridStrategy>(world, 2, 2, cameras),
                  config);
  EXPECT_TRUE(cluster
                  .execute(Query::range(cluster.next_query_id(), world,
                                        TimeInterval::all()))
                  .detections.empty());
  EXPECT_TRUE(cluster
                  .execute(Query::knn(cluster.next_query_id(), {50, 50}, 5,
                                      TimeInterval::all()))
                  .detections.empty());
  EXPECT_EQ(cluster
                .execute(Query::count(cluster.next_query_id(), world,
                                      TimeInterval::all()))
                .total_count(),
            0u);
  EXPECT_TRUE(cluster
                  .execute(Query::trajectory(cluster.next_query_id(),
                                             ObjectId(1), TimeInterval::all()))
                  .detections.empty());
}

TEST(EdgeCases, DetectionExactlyOnWorldEdge) {
  Rect world{{0, 0}, {100, 100}};
  CentralizedIndex index(world);
  index.ingest(make_detection(1, {0, 0}, 100));       // min corner: inside
  index.ingest(make_detection(2, {100, 100}, 100));   // max corner: outside
                                                      // (half-open), clamped
  QueryResult r = index.execute(
      Query::range(QueryId(1), world, TimeInterval::all()));
  // The min-corner detection is in the region; the max-corner one is not
  // (regions are half-open) but it is still stored.
  ASSERT_EQ(r.detections.size(), 1u);
  EXPECT_EQ(r.detections[0].id, DetectionId(1));
  EXPECT_EQ(index.size(), 2u);
}

TEST(EdgeCases, ZeroDurationIntervalAlwaysEmpty) {
  Rect world{{0, 0}, {100, 100}};
  CentralizedIndex index(world);
  index.ingest(make_detection(1, {50, 50}, 100));
  TimeInterval empty{TimePoint(100), TimePoint(100)};
  EXPECT_TRUE(index.execute(Query::range(QueryId(1), world, empty))
                  .detections.empty());
  EXPECT_TRUE(
      index.execute(Query::knn(QueryId(2), {50, 50}, 3, empty))
          .detections.empty());
}

TEST(EdgeCases, NegativeTimestampsSupported) {
  // Replayed historical traces can sit before the scenario origin.
  Rect world{{0, 0}, {100, 100}};
  CentralizedIndex index(world);
  index.ingest(make_detection(1, {50, 50}, -5'000'000));
  QueryResult r = index.execute(Query::range(
      QueryId(1), world, {TimePoint(-10'000'000), TimePoint(0)}));
  ASSERT_EQ(r.detections.size(), 1u);
}

TEST(EdgeCases, TinyRoadNetwork) {
  RoadNetworkConfig rc;
  rc.grid_cols = 2;
  rc.grid_rows = 2;
  rc.removal_fraction = 0.9;  // tries to remove almost everything
  RoadNetwork roads = RoadNetwork::build(rc);
  // Spanning structure keeps it connected regardless.
  EXPECT_GE(roads.edge_count(), 3u);
  auto path = roads.shortest_path(0, 3);
  EXPECT_GE(path.size(), 2u);
}

TEST(EdgeCases, TraceWithOneObjectOneCamera) {
  TraceConfig tc;
  tc.roads.grid_cols = 2;
  tc.roads.grid_rows = 2;
  tc.cameras.camera_count = 1;
  tc.mobility.object_count = 1;
  tc.duration = Duration::minutes(1);
  Trace trace = TraceGenerator::generate(tc);
  // May legitimately be empty (the object may never pass the camera), but
  // every structure must be well-formed.
  EXPECT_EQ(trace.cameras.size(), 1u);
  EXPECT_EQ(trace.ground_truth.size(), 1u);
  for (const Detection& d : trace.detections) {
    EXPECT_EQ(d.camera, CameraId(1));
    EXPECT_EQ(d.object, ObjectId(1));
  }
}

TEST(EdgeCases, CoLocationWithIdenticalPositions) {
  // Perfectly stacked detections (same spot, same instant).
  std::vector<Detection> ds;
  for (std::uint64_t obj = 1; obj <= 4; ++obj) {
    Detection d = make_detection(obj, {50, 50}, 100);
    d.object = ObjectId(obj);
    ds.push_back(d);
  }
  CoLocationParams p;
  p.max_distance = 1.0;
  p.max_gap = Duration::seconds(1);
  p.min_events = 1;
  auto meetings = find_meetings(ds, p);
  EXPECT_EQ(meetings.size(), 6u);  // C(4,2) pairs
}

TEST(EdgeCases, GridIndexSingleCell) {
  DetectionStore store;
  GridIndex index(GridIndexConfig{{{0, 0}, {10, 10}}, 100.0});  // 1 cell
  EXPECT_EQ(index.cell_count(), 1u);
  for (std::uint64_t i = 1; i <= 50; ++i) {
    index.insert(store, store.append(make_detection(
                            i, {static_cast<double>(i % 10), 5.0},
                            static_cast<std::int64_t>(i))));
  }
  EXPECT_EQ(index
                .query_range(store, {{0, 0}, {10, 10}}, TimeInterval::all())
                .size(),
            50u);
  auto knn = index.query_knn(store, {5, 5}, 5, TimeInterval::all());
  EXPECT_EQ(knn.size(), 5u);
}

}  // namespace
}  // namespace stcn
