#include <gtest/gtest.h>

#include <memory>

#include "baseline/centralized.h"
#include "core/framework.h"
#include "partition/strategies.h"
#include "trace/generator.h"

namespace stcn {
namespace {

Detection make_detection(std::uint64_t id, Point pos, std::int64_t t) {
  Detection d;
  d.id = DetectionId(id);
  d.camera = CameraId(1);
  d.object = ObjectId(1);
  d.time = TimePoint(t);
  d.position = pos;
  return d;
}

TEST(HeatmapQuery, GridShapeHelpers) {
  Query q = Query::heatmap(QueryId(1), {{0, 0}, {100, 50}}, 10.0,
                           TimeInterval::all());
  EXPECT_EQ(q.heatmap_cols(), 10u);
  EXPECT_EQ(q.heatmap_rows(), 5u);
  EXPECT_EQ(q.heatmap_cell({5, 5}), 0u);
  EXPECT_EQ(q.heatmap_cell({15, 5}), 1u);
  EXPECT_EQ(q.heatmap_cell({5, 15}), 10u);
  EXPECT_EQ(q.heatmap_cell({95, 45}), 49u);
}

TEST(HeatmapQuery, SerializationRoundTrip) {
  Query q = Query::heatmap(QueryId(7), {{0, 0}, {100, 100}}, 25.0,
                           {TimePoint(5), TimePoint(10)});
  BinaryWriter w;
  serialize(w, q);
  BinaryReader r(w.bytes());
  Query back = deserialize_query(r);
  EXPECT_FALSE(r.failed());
  EXPECT_EQ(back.kind, QueryKind::kHeatmap);
  EXPECT_DOUBLE_EQ(back.cell_size, 25.0);
  EXPECT_EQ(back.region, q.region);
}

TEST(HeatmapQuery, LocalExecutionCountsPerCell) {
  CentralizedIndex index({{0, 0}, {100, 100}}, 10.0);
  index.ingest(make_detection(1, {5, 5}, 100));    // cell 0
  index.ingest(make_detection(2, {7, 3}, 200));    // cell 0
  index.ingest(make_detection(3, {55, 5}, 300));   // cell 1 (50 m cells)
  index.ingest(make_detection(4, {5, 55}, 400));   // cell 2
  index.ingest(make_detection(5, {55, 55}, 500));  // cell 3

  Query q = Query::heatmap(QueryId(1), {{0, 0}, {100, 100}}, 50.0,
                           TimeInterval::all());
  QueryResult r = index.execute(q);
  EXPECT_EQ(r.counts.at(0), 2u);
  EXPECT_EQ(r.counts.at(1), 1u);
  EXPECT_EQ(r.counts.at(2), 1u);
  EXPECT_EQ(r.counts.at(3), 1u);
  EXPECT_EQ(r.total_count(), 5u);
}

TEST(HeatmapQuery, RespectsTimeInterval) {
  CentralizedIndex index({{0, 0}, {100, 100}}, 10.0);
  index.ingest(make_detection(1, {5, 5}, 100));
  index.ingest(make_detection(2, {5, 5}, 900));
  Query q = Query::heatmap(QueryId(1), {{0, 0}, {100, 100}}, 50.0,
                           {TimePoint(0), TimePoint(500)});
  EXPECT_EQ(index.execute(q).total_count(), 1u);
}

TEST(HeatmapQuery, ZeroCellSizeYieldsEmpty) {
  CentralizedIndex index({{0, 0}, {100, 100}}, 10.0);
  index.ingest(make_detection(1, {5, 5}, 100));
  Query q = Query::heatmap(QueryId(1), {{0, 0}, {100, 100}}, 0.0,
                           TimeInterval::all());
  EXPECT_EQ(index.execute(q).total_count(), 0u);
  EXPECT_EQ(q.heatmap_cols(), 0u);
}

TEST(HeatmapQuery, DistributedMatchesCentralizedAndCountGrid) {
  TraceConfig tc;
  tc.roads.grid_cols = 6;
  tc.roads.grid_rows = 6;
  tc.cameras.camera_count = 20;
  tc.mobility.object_count = 15;
  tc.duration = Duration::minutes(3);
  Trace trace = TraceGenerator::generate(tc);
  Rect world = trace.roads.bounds(120.0);

  CentralizedIndex central(world);
  central.ingest_all(trace.detections);

  ClusterConfig config;
  config.worker_count = 4;
  Cluster cluster(
      world,
      std::make_unique<SpatialGridStrategy>(world, 3, 3, trace.cameras),
      config);
  cluster.ingest_all(trace.detections);

  Query q = Query::heatmap(cluster.next_query_id(), world, 200.0,
                           TimeInterval::all());
  QueryResult distributed = cluster.execute(q);
  QueryResult centralized = central.execute(q);
  EXPECT_EQ(distributed.counts, centralized.counts);
  EXPECT_EQ(distributed.total_count(), trace.detections.size());

  // One heatmap must agree with a grid of individual count queries.
  for (std::size_t cy = 0; cy < q.heatmap_rows(); cy += 3) {
    for (std::size_t cx = 0; cx < q.heatmap_cols(); cx += 3) {
      Rect cell{{world.min.x + static_cast<double>(cx) * 200.0,
                 world.min.y + static_cast<double>(cy) * 200.0},
                {world.min.x + static_cast<double>(cx + 1) * 200.0,
                 world.min.y + static_cast<double>(cy + 1) * 200.0}};
      // Clip to world so positions on the far edge stay comparable.
      QueryResult count = cluster.execute(Query::count(
          cluster.next_query_id(), cell.intersection(world),
          TimeInterval::all()));
      std::uint64_t key = cy * q.heatmap_cols() + cx;
      auto it = distributed.counts.find(key);
      std::uint64_t heat = it == distributed.counts.end() ? 0 : it->second;
      EXPECT_EQ(heat, count.total_count()) << "cell " << key;
    }
  }
}

}  // namespace
}  // namespace stcn
