#include "core/coordinator.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/framework.h"
#include "partition/strategies.h"
#include "trace/generator.h"

namespace stcn {
namespace {

Detection make_detection(std::uint64_t id, Point pos, std::int64_t t,
                         std::uint64_t camera = 1, std::uint64_t object = 1) {
  Detection d;
  d.id = DetectionId(id);
  d.camera = CameraId(camera);
  d.object = ObjectId(object);
  d.time = TimePoint(t);
  d.position = pos;
  return d;
}

struct TestWorld {
  Trace trace = TraceGenerator::generate([] {
    TraceConfig c;
    c.roads.grid_cols = 6;
    c.roads.grid_rows = 6;
    c.cameras.camera_count = 20;
    c.mobility.object_count = 15;
    c.duration = Duration::minutes(3);
    return c;
  }());
  Rect world = trace.roads.bounds(100.0);
};

ClusterConfig cluster_config(std::size_t workers) {
  ClusterConfig c;
  c.worker_count = workers;
  c.network.latency_jitter = Duration::zero();
  return c;
}

TEST(Coordinator, IngestRoutesByStrategy) {
  TestWorld tw;
  Cluster cluster(
      tw.world,
      std::make_unique<SpatialGridStrategy>(tw.world, 2, 2, tw.trace.cameras),
      cluster_config(4));
  // One detection in each quadrant.
  Point c = tw.world.center();
  std::vector<Detection> dets = {
      make_detection(1, {c.x - 100, c.y - 100}, 100),
      make_detection(2, {c.x + 100, c.y - 100}, 200),
      make_detection(3, {c.x - 100, c.y + 100}, 300),
      make_detection(4, {c.x + 100, c.y + 100}, 400),
  };
  cluster.ingest_all(dets);
  // With 4 partitions round-robined on 4 workers, each worker holds exactly
  // one primary partition (plus one backup).
  std::size_t total_primary = 0;
  for (WorkerId w : cluster.worker_ids()) {
    total_primary += cluster.worker(w).counters().get("ingested_primary");
  }
  EXPECT_EQ(total_primary, 4u);
  std::size_t total_replica = 0;
  for (WorkerId w : cluster.worker_ids()) {
    total_replica += cluster.worker(w).counters().get("ingested_replica");
  }
  EXPECT_EQ(total_replica, 4u);  // replication factor 2
}

TEST(Coordinator, RangeQueryFansOutOnlyToFootprint) {
  TestWorld tw;
  Cluster cluster(
      tw.world,
      std::make_unique<SpatialGridStrategy>(tw.world, 4, 4, tw.trace.cameras),
      cluster_config(8));
  cluster.ingest_all(tw.trace.detections);

  // Tiny region → small fan-out.
  Rect tiny = Rect::centered(tw.world.center(), 5.0);
  (void)cluster.execute(
      Query::range(cluster.next_query_id(), tiny, TimeInterval::all()));
  EXPECT_LE(cluster.coordinator().mean_fanout(), 4.0);

  // Whole-world region → everyone.
  (void)cluster.execute(
      Query::range(cluster.next_query_id(), tw.world, TimeInterval::all()));
  EXPECT_GT(cluster.coordinator().counters().get("query_fanout_total"), 8u);
}

TEST(Coordinator, QueryResultsMatchAcrossStrategies) {
  TestWorld tw;
  auto collect_ids = [&](Cluster& cluster, const Rect& region) {
    QueryResult r = cluster.execute(
        Query::range(cluster.next_query_id(), region, TimeInterval::all()));
    std::set<std::uint64_t> ids;
    for (const Detection& d : r.detections) ids.insert(d.id.value());
    return ids;
  };

  Cluster spatial(
      tw.world,
      std::make_unique<SpatialGridStrategy>(tw.world, 3, 3, tw.trace.cameras),
      cluster_config(4));
  spatial.ingest_all(tw.trace.detections);
  Cluster hash(tw.world, std::make_unique<HashStrategy>(9),
               cluster_config(4));
  hash.ingest_all(tw.trace.detections);

  Rect region = Rect::centered(tw.world.center(), 250.0);
  EXPECT_EQ(collect_ids(spatial, region), collect_ids(hash, region));
}

TEST(Coordinator, CountQueryAggregatesAcrossWorkers) {
  TestWorld tw;
  Cluster cluster(
      tw.world,
      std::make_unique<SpatialGridStrategy>(tw.world, 3, 3, tw.trace.cameras),
      cluster_config(4));
  cluster.ingest_all(tw.trace.detections);
  QueryResult count = cluster.execute(Query::count(
      cluster.next_query_id(), tw.world, TimeInterval::all()));
  EXPECT_EQ(count.total_count(), tw.trace.detections.size());

  QueryResult grouped = cluster.execute(
      Query::count(cluster.next_query_id(), tw.world, TimeInterval::all(),
                   GroupBy::kCamera));
  EXPECT_EQ(grouped.total_count(), tw.trace.detections.size());
  std::uint64_t manual = 0;
  for (const Detection& d : tw.trace.detections) {
    manual += (d.camera == CameraId(1)) ? 1 : 0;
  }
  if (manual > 0) {
    EXPECT_EQ(grouped.counts.at(1), manual);
  }
}

TEST(Coordinator, ContinuousMonitorStreamsDeltas) {
  TestWorld tw;
  Cluster cluster(
      tw.world,
      std::make_unique<SpatialGridStrategy>(tw.world, 2, 2, tw.trace.cameras),
      cluster_config(4));
  QueryId monitor_id = cluster.next_query_id();
  Rect region = Rect::centered(tw.world.center(), 300.0);
  cluster.install_monitor({monitor_id, region, Duration::minutes(5)});

  cluster.ingest_all(tw.trace.detections);
  cluster.advance_time(Duration::seconds(5));  // let delta flush timers run

  auto deltas = cluster.drain_deltas(monitor_id);
  std::size_t expected = 0;
  for (const Detection& d : tw.trace.detections) {
    if (region.contains(d.position)) ++expected;
  }
  std::size_t positives = 0;
  for (const DeltaUpdate& d : deltas) {
    if (d.positive) ++positives;
  }
  EXPECT_EQ(positives, expected);
}

TEST(Coordinator, LiveAnswerTracksWindowExpiry) {
  TestWorld tw;
  ClusterConfig config = cluster_config(2);
  Cluster cluster(
      tw.world,
      std::make_unique<SpatialGridStrategy>(tw.world, 2, 2, tw.trace.cameras),
      config);
  QueryId monitor_id = cluster.next_query_id();
  Rect region = tw.world;
  cluster.install_monitor({monitor_id, region, Duration::seconds(30)});

  std::vector<Detection> dets = {
      make_detection(1, tw.world.center(), 1'000'000),
  };
  cluster.ingest_all(dets);
  cluster.advance_time(Duration::seconds(5));
  EXPECT_EQ(cluster.live_answer(monitor_id).size(), 1u);

  // One minute later, the 30 s window has expired the detection.
  cluster.advance_time(Duration::minutes(1));
  EXPECT_TRUE(cluster.live_answer(monitor_id).empty());
}

TEST(Coordinator, TrajectoryQuerySpansWorkers) {
  TestWorld tw;
  Cluster cluster(
      tw.world,
      std::make_unique<SpatialGridStrategy>(tw.world, 3, 3, tw.trace.cameras),
      cluster_config(4));
  cluster.ingest_all(tw.trace.detections);
  // Pick the object with the most detections.
  std::unordered_map<std::uint64_t, std::size_t> counts;
  for (const Detection& d : tw.trace.detections) ++counts[d.object.value()];
  std::uint64_t best_obj = 0;
  std::size_t best_n = 0;
  for (auto [obj, n] : counts) {
    if (n > best_n) {
      best_obj = obj;
      best_n = n;
    }
  }
  QueryResult r = cluster.execute(Query::trajectory(
      cluster.next_query_id(), ObjectId(best_obj), TimeInterval::all()));
  EXPECT_EQ(r.detections.size(), best_n);
  for (std::size_t i = 1; i < r.detections.size(); ++i) {
    EXPECT_LE(r.detections[i - 1].time, r.detections[i].time);
  }
}

}  // namespace
}  // namespace stcn
