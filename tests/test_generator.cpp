#include "trace/generator.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <utility>

namespace stcn {
namespace {

TraceConfig small_trace_config() {
  TraceConfig c;
  c.roads.grid_cols = 8;
  c.roads.grid_rows = 8;
  c.roads.block_size_m = 100.0;
  c.roads.seed = 3;
  c.cameras.camera_count = 24;
  c.cameras.seed = 4;
  c.mobility.object_count = 20;
  c.mobility.seed = 5;
  c.duration = Duration::minutes(4);
  c.tick = Duration::millis(500);
  c.seed = 6;
  return c;
}

TEST(TraceGenerator, ProducesDetections) {
  Trace trace = TraceGenerator::generate(small_trace_config());
  EXPECT_GT(trace.detections.size(), 50u)
      << "a 4-minute trace over 24 cameras should see plenty of traffic";
}

TEST(TraceGenerator, DetectionsAreTimeOrdered) {
  Trace trace = TraceGenerator::generate(small_trace_config());
  for (std::size_t i = 1; i < trace.detections.size(); ++i) {
    EXPECT_LE(trace.detections[i - 1].time, trace.detections[i].time);
  }
}

TEST(TraceGenerator, DetectionIdsAreUnique) {
  Trace trace = TraceGenerator::generate(small_trace_config());
  std::set<std::uint64_t> ids;
  for (const Detection& d : trace.detections) {
    EXPECT_TRUE(ids.insert(d.id.value()).second)
        << "duplicate detection id " << d.id;
  }
}

TEST(TraceGenerator, DetectionsReferenceRealCamerasAndObjects) {
  TraceConfig config = small_trace_config();
  Trace trace = TraceGenerator::generate(config);
  for (const Detection& d : trace.detections) {
    EXPECT_TRUE(trace.cameras.has_camera(d.camera));
    EXPECT_GE(d.object.value(), 1u);
    EXPECT_LE(d.object.value(), config.mobility.object_count);
    EXPECT_TRUE(trace.ground_truth.contains(d.object));
    EXPECT_TRUE(trace.true_appearance.contains(d.object));
  }
}

TEST(TraceGenerator, DetectionPositionsNearCameraFov) {
  TraceConfig config = small_trace_config();
  Trace trace = TraceGenerator::generate(config);
  for (const Detection& d : trace.detections) {
    const Camera& cam = trace.cameras.camera(d.camera);
    // True position was inside the FOV; reported position adds Gaussian
    // noise, so allow range + generous noise slack.
    EXPECT_LE(distance(d.position, cam.fov.apex),
              cam.fov.range + 8 * config.detection.position_noise_m);
  }
}

TEST(TraceGenerator, DetectionTimesWithinDuration) {
  TraceConfig config = small_trace_config();
  Trace trace = TraceGenerator::generate(config);
  for (const Detection& d : trace.detections) {
    EXPECT_GE(d.time, TimePoint::origin());
    EXPECT_LT(d.time, TimePoint::origin() + config.duration);
  }
}

TEST(TraceGenerator, AppearanceFeaturesAreUnitNorm) {
  TraceConfig config = small_trace_config();
  Trace trace = TraceGenerator::generate(config);
  for (const auto& [obj, feature] : trace.true_appearance) {
    EXPECT_EQ(feature.values.size(), config.detection.feature_dim);
    EXPECT_NEAR(feature.similarity(feature), 1.0, 1e-5);
  }
  for (const Detection& d : trace.detections) {
    EXPECT_NEAR(d.appearance.similarity(d.appearance), 1.0, 1e-5);
  }
}

TEST(TraceGenerator, NoisyEmbeddingsCorrelateWithTruth) {
  TraceConfig config = small_trace_config();
  Trace trace = TraceGenerator::generate(config);
  double same_sum = 0.0;
  std::size_t same_n = 0;
  for (const Detection& d : trace.detections) {
    same_sum += d.appearance.similarity(trace.true_appearance.at(d.object));
    ++same_n;
  }
  ASSERT_GT(same_n, 0u);
  // With sigma 0.15 per dim, expected cosine to truth is ~0.8+.
  EXPECT_GT(same_sum / static_cast<double>(same_n), 0.7);
}

TEST(TraceGenerator, GroundTruthSampledEveryTick) {
  TraceConfig config = small_trace_config();
  Trace trace = TraceGenerator::generate(config);
  auto expected_samples = static_cast<std::size_t>(
      config.duration.count_micros() / config.tick.count_micros());
  for (const auto& [obj, samples] : trace.ground_truth) {
    EXPECT_EQ(samples.size(), expected_samples);
    for (std::size_t i = 1; i < samples.size(); ++i) {
      EXPECT_EQ(samples[i].time - samples[i - 1].time, config.tick);
    }
  }
}

TEST(TraceGenerator, RedetectIntervalSuppressesDuplicates) {
  TraceConfig config = small_trace_config();
  Trace trace = TraceGenerator::generate(config);
  // No two detections of the same (camera, object) pair closer than the
  // redetect interval.
  std::map<std::pair<std::uint64_t, std::uint64_t>, TimePoint> last;
  for (const Detection& d : trace.detections) {
    auto key = std::make_pair(d.camera.value(), d.object.value());
    auto it = last.find(key);
    if (it != last.end()) {
      EXPECT_GE(d.time - it->second, config.detection.redetect_interval);
    }
    last[key] = d.time;
  }
}

TEST(TraceGenerator, MissRateReducesVolume) {
  TraceConfig reliable = small_trace_config();
  reliable.detection.miss_rate = 0.0;
  TraceConfig flaky = small_trace_config();
  flaky.detection.miss_rate = 0.6;
  Trace a = TraceGenerator::generate(reliable);
  Trace b = TraceGenerator::generate(flaky);
  EXPECT_GT(a.detections.size(), b.detections.size());
}

TEST(TraceGenerator, DeterministicForConfig) {
  Trace a = TraceGenerator::generate(small_trace_config());
  Trace b = TraceGenerator::generate(small_trace_config());
  ASSERT_EQ(a.detections.size(), b.detections.size());
  for (std::size_t i = 0; i < a.detections.size(); ++i) {
    EXPECT_EQ(a.detections[i], b.detections[i]);
  }
}

TEST(TraceGenerator, RandomEmbeddingIsNormalized) {
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    AppearanceFeature f = TraceGenerator::random_embedding(rng, 16);
    EXPECT_EQ(f.values.size(), 16u);
    EXPECT_NEAR(f.similarity(f), 1.0, 1e-5);
  }
}

TEST(TraceGenerator, NoisyEmbeddingSimilarityDropsWithSigma) {
  Rng rng(2);
  AppearanceFeature truth = TraceGenerator::random_embedding(rng, 16);
  double low_noise = 0.0;
  double high_noise = 0.0;
  for (int i = 0; i < 200; ++i) {
    low_noise += truth.similarity(
        TraceGenerator::noisy_embedding(rng, truth, 0.05));
    high_noise += truth.similarity(
        TraceGenerator::noisy_embedding(rng, truth, 0.5));
  }
  EXPECT_GT(low_noise, high_noise);
  EXPECT_GT(low_noise / 200.0, 0.95);
}

}  // namespace
}  // namespace stcn
