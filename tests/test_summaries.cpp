// Object-presence summaries: trajectory-query fan-out pruning.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "baseline/centralized.h"
#include "core/framework.h"
#include "partition/strategies.h"
#include "trace/generator.h"

namespace stcn {
namespace {

struct SummaryScenario {
  Trace trace;
  Rect world;
  std::unique_ptr<Cluster> cluster;
  CentralizedIndex oracle;

  SummaryScenario()
      : trace(TraceGenerator::generate([] {
          TraceConfig c;
          c.roads.grid_cols = 8;
          c.roads.grid_rows = 8;
          c.cameras.camera_count = 30;
          c.mobility.object_count = 25;
          c.duration = Duration::minutes(4);
          return c;
        }())),
        world(trace.roads.bounds(120.0)),
        oracle(world) {
    oracle.ingest_all(trace.detections);
    ClusterConfig config;
    config.worker_count = 6;
    cluster = std::make_unique<Cluster>(
        world,
        std::make_unique<SpatialGridStrategy>(world, 4, 4, trace.cameras),
        config);
    cluster->ingest_all(trace.detections);
    // Let summary ticks publish (every 5 monitor ticks = 5 s).
    cluster->advance_time(Duration::seconds(12));
  }
};

std::set<std::uint64_t> ids_of(const QueryResult& r) {
  std::set<std::uint64_t> ids;
  for (const Detection& d : r.detections) ids.insert(d.id.value());
  return ids;
}

TEST(ObjectSummaries, PublishedForEveryPartition) {
  SummaryScenario s;
  // Every partition holding data has a summary at the coordinator.
  EXPECT_GE(s.cluster->coordinator().summarized_partitions(), 10u);
  std::uint64_t published = 0;
  for (WorkerId w : s.cluster->worker_ids()) {
    published += s.cluster->worker(w).counters().get("summaries_published");
  }
  EXPECT_GT(published, 0u);
}

TEST(ObjectSummaries, PruneTrajectoryFanout) {
  SummaryScenario s;
  // Bounded-interval trajectory query: summaries cover it → pruning fires.
  TimeInterval covered{TimePoint::origin(),
                       TimePoint::origin() + Duration::minutes(4)};
  auto pruned0 = s.cluster->coordinator().counters().get(
      "trajectory_partitions_pruned");
  for (std::uint64_t obj = 1; obj <= 10; ++obj) {
    (void)s.cluster->execute(Query::trajectory(s.cluster->next_query_id(),
                                               ObjectId(obj), covered));
  }
  auto pruned = s.cluster->coordinator().counters().get(
                    "trajectory_partitions_pruned") -
                pruned0;
  EXPECT_GT(pruned, 0u)
      << "objects do not visit every partition; some must be pruned";
}

TEST(ObjectSummaries, PrunedResultsStillExact) {
  SummaryScenario s;
  TimeInterval covered{TimePoint::origin(),
                       TimePoint::origin() + Duration::minutes(4)};
  for (std::uint64_t obj = 1; obj <= 25; ++obj) {
    Query q = Query::trajectory(s.cluster->next_query_id(), ObjectId(obj),
                                covered);
    ASSERT_EQ(ids_of(s.cluster->execute(q)), ids_of(s.oracle.execute(q)))
        << "obj " << obj;
  }
}

TEST(ObjectSummaries, UnknownObjectPrunesEverywhereAndReturnsEmpty) {
  SummaryScenario s;
  TimeInterval covered{TimePoint::origin(),
                       TimePoint::origin() + Duration::minutes(4)};
  auto fanout0 =
      s.cluster->coordinator().counters().get("query_fanout_total");
  QueryResult r = s.cluster->execute(Query::trajectory(
      s.cluster->next_query_id(), ObjectId(999'999), covered));
  EXPECT_TRUE(r.detections.empty());
  auto fanout =
      s.cluster->coordinator().counters().get("query_fanout_total") - fanout0;
  // A Bloom false positive can leak a worker or two, but nowhere near the
  // whole fleet.
  EXPECT_LE(fanout, 2u);
}

TEST(ObjectSummaries, IntervalBeyondWatermarkNeverPruned) {
  SummaryScenario s;
  // A query whose interval extends past every summary's as_of cannot be
  // pruned — freshness gate (future data may exist the summary missed).
  auto pruned0 = s.cluster->coordinator().counters().get(
      "trajectory_partitions_pruned");
  (void)s.cluster->execute(Query::trajectory(
      s.cluster->next_query_id(), ObjectId(999'999), TimeInterval::all()));
  auto pruned = s.cluster->coordinator().counters().get(
                    "trajectory_partitions_pruned") -
                pruned0;
  EXPECT_EQ(pruned, 0u);
}

TEST(ObjectSummaries, FreshDataEventuallyCoveredByNewSummaries) {
  SummaryScenario s;
  // Ingest a brand-new object *after* the initial summaries.
  Detection fresh;
  fresh.id = DetectionId(10'000'000);
  fresh.object = ObjectId(500);
  fresh.camera = CameraId(1);
  fresh.position = s.world.center();
  fresh.time = s.cluster->now();
  std::vector<Detection> batch{fresh};
  s.cluster->ingest_all(batch);

  // Immediately query with an interval ending after the old watermarks:
  // no pruning applies, so the fresh detection is found.
  TimeInterval whole{TimePoint::origin(), fresh.time + Duration::seconds(1)};
  QueryResult now = s.cluster->execute(Query::trajectory(
      s.cluster->next_query_id(), ObjectId(500), whole));
  ASSERT_EQ(now.detections.size(), 1u);

  // After the next summary round, the same bounded query gets pruned
  // routing yet still finds the detection (its partition's Bloom now
  // contains object 500).
  s.cluster->advance_time(Duration::seconds(12));
  QueryResult later = s.cluster->execute(Query::trajectory(
      s.cluster->next_query_id(), ObjectId(500), whole));
  ASSERT_EQ(later.detections.size(), 1u);
  EXPECT_EQ(later.detections[0].id, fresh.id);
}

TEST(ObjectSummaries, CanBeDisabled) {
  TraceConfig tc;
  tc.roads.grid_cols = 5;
  tc.roads.grid_rows = 5;
  tc.cameras.camera_count = 12;
  tc.mobility.object_count = 8;
  tc.duration = Duration::minutes(2);
  Trace trace = TraceGenerator::generate(tc);
  Rect world = trace.roads.bounds(120.0);
  ClusterConfig config;
  config.worker_count = 2;
  config.summary_every_ticks = 0;  // disabled
  Cluster cluster(
      world,
      std::make_unique<SpatialGridStrategy>(world, 2, 2, trace.cameras),
      config);
  cluster.ingest_all(trace.detections);
  cluster.advance_time(Duration::seconds(20));
  EXPECT_EQ(cluster.coordinator().summarized_partitions(), 0u);
}

}  // namespace
}  // namespace stcn
