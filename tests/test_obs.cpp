// Observability layer: JSON writer/parser, metrics registry (handles,
// histogram quantiles, export round-trips), tracer span trees, and the
// slow-query log.
#include <gtest/gtest.h>

#include <string>

#include "common/stats.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "obs/tracer.h"

namespace stcn {
namespace {

// ------------------------------------------------------------------ JSON

TEST(Json, WriterParserRoundTrip) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("name");
  w.value("cluster \"a\"\n");
  w.key("count");
  w.value(std::uint64_t{42});
  w.key("ratio");
  w.value(0.5);
  w.key("ok");
  w.value(true);
  w.key("items");
  w.begin_array();
  w.value(1);
  w.value(2);
  w.end_array();
  w.key("nested");
  w.raw_value("{\"x\":7}");
  w.end_object();

  obs::JsonValue v;
  std::string error;
  ASSERT_TRUE(obs::JsonValue::parse(w.str(), v, &error)) << error;
  EXPECT_EQ(v.at("name").string(), "cluster \"a\"\n");
  EXPECT_DOUBLE_EQ(v.at("count").number(), 42.0);
  EXPECT_DOUBLE_EQ(v.at("ratio").number(), 0.5);
  EXPECT_TRUE(v.at("ok").boolean());
  ASSERT_EQ(v.at("items").array().size(), 2u);
  EXPECT_DOUBLE_EQ(v.at("nested").at("x").number(), 7.0);
}

TEST(Json, EscapesControlCharsAndRoundTrips) {
  // Every ASCII control character must be escaped (a raw 0x01 in output
  // would break downstream parsers); UTF-8 passes through verbatim.
  std::string nasty;
  for (char c = 1; c < 0x20; ++c) nasty += c;
  nasty += '\0';
  nasty += "caf\xC3\xA9 \xE2\x82\xAC";  // café €

  obs::JsonWriter w;
  w.begin_object();
  w.key("s");
  w.value(nasty);
  w.end_object();
  std::string text = w.take();
  for (char c : text) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u)
        << "raw control byte leaked into JSON output";
  }
  EXPECT_NE(text.find("\\u0001"), std::string::npos);
  EXPECT_NE(text.find("\\u0000"), std::string::npos);
  EXPECT_NE(text.find("caf\xC3\xA9"), std::string::npos);

  obs::JsonValue v;
  std::string error;
  ASSERT_TRUE(obs::JsonValue::parse(text, v, &error)) << error;
  EXPECT_EQ(v.at("s").string(), nasty);
}

TEST(Json, NonAsciiMetricNamesSurviveRegistryRoundTrip) {
  MetricsRegistry registry;
  registry.counter("zone/\xC3\xBC" "ber\tcamera\x01").add(7);
  MetricsRegistry restored;
  ASSERT_TRUE(metrics_registry_from_json(registry.to_json(), restored));
  EXPECT_EQ(restored.counter("zone/\xC3\xBC" "ber\tcamera\x01").value(), 7u);
  EXPECT_EQ(registry.to_json(), restored.to_json());
}

TEST(Json, ControlCharTagsSurviveChromeTraceExport) {
  Tracer tracer;
  TimePoint t0 = TimePoint::origin();
  TraceContext root = tracer.start_trace("q\x02uery", 0, t0);
  tracer.tag(root, "label", std::string("a\x1f") + "b");
  tracer.end_span(root, t0 + Duration::millis(1));

  obs::JsonValue v;
  std::string error;
  ASSERT_TRUE(
      obs::JsonValue::parse(tracer.to_chrome_json(root.trace_id), v, &error))
      << error;
  const auto& events = v.at("traceEvents").array();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].at("name").string(), "q\x02uery");
  EXPECT_EQ(events[0].at("args").at("label").string(),
            std::string("a\x1f") + "b");
}

TEST(Json, ParserRejectsMalformed) {
  obs::JsonValue v;
  EXPECT_FALSE(obs::JsonValue::parse("{\"a\":}", v));
  EXPECT_FALSE(obs::JsonValue::parse("[1,2", v));
  EXPECT_FALSE(obs::JsonValue::parse("", v));
  EXPECT_FALSE(obs::JsonValue::parse("{} trailing", v));
}

// --------------------------------------------------------------- metrics

TEST(LatencyHistogram, BucketsAndQuantiles) {
  LatencyHistogram h;
  EXPECT_EQ(LatencyHistogram::bucket_index(0.0), 0);
  EXPECT_EQ(LatencyHistogram::bucket_index(0.5), 0);
  EXPECT_EQ(LatencyHistogram::bucket_index(1.0), 1);
  EXPECT_EQ(LatencyHistogram::bucket_index(2.0), 2);
  EXPECT_EQ(LatencyHistogram::bucket_index(1e30), LatencyHistogram::kBuckets - 1);

  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 500.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  // Log-bucket interpolation is coarse; quantiles must land in the right
  // bucket neighbourhood and be monotone.
  double p50 = h.p50();
  double p95 = h.p95();
  double p99 = h.p99();
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 1024.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, 1000.0);  // clamped to observed max
}

TEST(LatencyHistogram, MergeAccumulates) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.observe(10.0);
  b.observe(1000.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.min(), 10.0);
  EXPECT_DOUBLE_EQ(a.max(), 1000.0);
}

TEST(MetricsRegistry, HandlesAreStableAndSynced) {
  MetricsRegistry registry;
  Counter& c = registry.counter("events");
  c.inc();
  c.add(4);
  EXPECT_EQ(registry.counter("events").value(), 5u);  // same handle

  registry.gauge("depth").set(3.5);
  registry.histogram("lat_us").observe(12.0);

  CounterSet sink;
  sink.add("preexisting", 7);
  registry.sync_counters_into(sink);
  EXPECT_EQ(sink.get("events"), 5u);
  EXPECT_EQ(sink.get("preexisting"), 7u);  // untouched
}

TEST(MetricsRegistry, JsonRoundTripIsExact) {
  MetricsRegistry registry;
  registry.counter("messages_sent").add(12345);
  registry.counter("bytes_sent").add(987654321);
  registry.gauge("queue_depth").set(17.25);
  LatencyHistogram& h = registry.histogram("query_latency_us");
  h.observe(3.0);
  h.observe(250.0);
  h.observe(90000.0);

  MetricsRegistry restored;
  ASSERT_TRUE(metrics_registry_from_json(registry.to_json(), restored));

  EXPECT_EQ(restored.counter("messages_sent").value(), 12345u);
  EXPECT_EQ(restored.counter("bytes_sent").value(), 987654321u);
  EXPECT_DOUBLE_EQ(restored.gauge("queue_depth").value(), 17.25);
  const LatencyHistogram& rh = restored.histogram("query_latency_us");
  EXPECT_EQ(rh.count(), h.count());
  EXPECT_DOUBLE_EQ(rh.sum(), h.sum());
  EXPECT_DOUBLE_EQ(rh.min(), h.min());
  EXPECT_DOUBLE_EQ(rh.max(), h.max());
  EXPECT_DOUBLE_EQ(rh.p50(), h.p50());
  EXPECT_DOUBLE_EQ(rh.p95(), h.p95());
  EXPECT_DOUBLE_EQ(rh.p99(), h.p99());

  // Second generation must serialize identically (fixed point).
  EXPECT_EQ(registry.to_json(), restored.to_json());
}

TEST(MetricsRegistry, RejectsMalformedJson) {
  MetricsRegistry out;
  EXPECT_FALSE(metrics_registry_from_json("not json", out));
  EXPECT_FALSE(metrics_registry_from_json("[]", out));
}

TEST(MetricsRegistry, PrometheusExport) {
  MetricsRegistry registry;
  registry.counter("net.messages_sent").add(3);
  registry.histogram("query_latency_us").observe(100.0);
  std::string text = registry.to_prometheus();
  EXPECT_NE(text.find("stcn_net_messages_sent 3"), std::string::npos);
  EXPECT_NE(text.find("stcn_query_latency_us"), std::string::npos);
  EXPECT_NE(text.find("# TYPE"), std::string::npos);
}

TEST(MetricsRegistry, LabelsRoundTripThroughJson) {
  MetricsRegistry registry;
  registry.gauge("partition.hottest_load").set(42.0);
  registry.set_labels("partition.hottest_load", {{"partition", "p12"}});
  // Label keys and values with every escaping hazard: control chars,
  // quotes, backslashes, separators the exposition format reserves.
  registry.counter("advisor.moves").add(3);
  registry.set_labels("advisor.moves",
                      {{"from-worker", "w\"1\\\n"},
                       {"0rank", std::string("a\x01") + "b"}});

  MetricsRegistry restored;
  ASSERT_TRUE(metrics_registry_from_json(registry.to_json(), restored));
  EXPECT_EQ(restored.labels("partition.hottest_load").at("partition"),
            "p12");
  EXPECT_EQ(restored.labels("advisor.moves").at("from-worker"), "w\"1\\\n");
  EXPECT_EQ(restored.labels("advisor.moves").at("0rank"),
            std::string("a\x01") + "b");
  // Byte-exact fixed point, with and without the labels section.
  EXPECT_EQ(registry.to_json(), restored.to_json());
  MetricsRegistry unlabeled;
  unlabeled.counter("plain").add(1);
  MetricsRegistry unlabeled_restored;
  ASSERT_TRUE(metrics_registry_from_json(unlabeled.to_json(),
                                         unlabeled_restored));
  EXPECT_EQ(unlabeled.to_json(), unlabeled_restored.to_json());
  EXPECT_EQ(unlabeled.to_json().find("labels"), std::string::npos);
}

TEST(MetricsRegistry, PrometheusEscapesLabelKeysAndValues) {
  MetricsRegistry registry;
  registry.gauge("partition.hottest_load").set(9.0);
  // The key needs mangling (dash, leading digit); the value needs escaping
  // (quote, backslash, newline).
  registry.set_labels("partition.hottest_load",
                      {{"partition-id", "p\"1\\2\n"}, {"9rank", "top"}});
  registry.histogram("heat.scan_us", "Scan heat").observe(50.0);
  registry.set_labels("heat.scan_us", {{"partition", "p3"}});

  std::string text = registry.to_prometheus();
  // Gauge line: mangled keys, escaped value, sorted label order.
  EXPECT_NE(text.find("stcn_partition_hottest_load{_9rank=\"top\","
                      "partition_id=\"p\\\"1\\\\2\\n\"} 9"),
            std::string::npos);
  // Histogram lines splice labels beside `le` and suffix _sum/_count.
  EXPECT_NE(text.find("stcn_heat_scan_us_bucket{partition=\"p3\",le=\"64\"}"),
            std::string::npos);
  EXPECT_NE(text.find("stcn_heat_scan_us_bucket{partition=\"p3\","
                      "le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("stcn_heat_scan_us_count{partition=\"p3\"} 1"),
            std::string::npos);
  // No raw control bytes or unescaped quotes leak into label values.
  for (std::size_t i = 0; i < text.size(); ++i) {
    EXPECT_TRUE(text[i] == '\n' ||
                static_cast<unsigned char>(text[i]) >= 0x20u)
        << "raw control byte at offset " << i;
  }
  // Labels survive a snapshot merge under a prefix.
  MetricsRegistry snapshot;
  registry.merge_into(snapshot, "coordinator.");
  EXPECT_EQ(snapshot.labels("coordinator.heat.scan_us").at("partition"),
            "p3");
}

TEST(MetricsRegistry, MergeAndImportSkipHandleBackedNames) {
  MetricsRegistry worker;
  worker.counter("ingested").add(10);
  worker.histogram("scan_wall_us").observe(5.0);

  MetricsRegistry snapshot;
  worker.merge_into(snapshot, "worker.");
  worker.merge_into(snapshot, "worker.");  // second worker with same names
  EXPECT_EQ(snapshot.counter("worker.ingested").value(), 20u);
  EXPECT_EQ(snapshot.histogram("worker.scan_wall_us").count(), 2u);

  // import_counter_set must not double-count names the registry already
  // mirrors into the CounterSet.
  CounterSet legacy;
  worker.sync_counters_into(legacy);
  legacy.add("eager_only", 3);
  MetricsRegistry merged;
  worker.merge_into(merged, "");
  merged.import_counter_set(legacy, "");
  EXPECT_EQ(merged.counter("ingested").value(), 10u);
  EXPECT_EQ(merged.counter("eager_only").value(), 3u);
}

TEST(MetricsRegistry, ImportCounterSetSumsEagerNamesAcrossOwners) {
  // Two nodes whose CounterSets mirror their handle-backed counters
  // (sync_counters_into) and also hold eager-only counters. Snapshot
  // assembly must skip the mirrored names (already merged via merge_into)
  // but SUM the eager names — the old prefix-collision guard dropped the
  // second node's eager counters entirely.
  MetricsRegistry w1;
  MetricsRegistry w2;
  w1.counter("ingested").add(10);
  w2.counter("ingested").add(5);
  CounterSet c1;
  CounterSet c2;
  w1.sync_counters_into(c1);
  w2.sync_counters_into(c2);
  c1.add("frames", 3);
  c2.add("frames", 4);

  MetricsRegistry snapshot;
  w1.merge_into(snapshot, "worker.");
  w2.merge_into(snapshot, "worker.");
  snapshot.import_counter_set(c1, "worker.", &w1);
  snapshot.import_counter_set(c2, "worker.", &w2);
  EXPECT_EQ(snapshot.counter("worker.ingested").value(), 15u);  // no dupes
  EXPECT_EQ(snapshot.counter("worker.frames").value(), 7u);     // summed
}

// ------------------------------------------------------ quantile recorder

TEST(QuantileRecorder, BatchQuantilesMatchSingleCalls) {
  QuantileRecorder r;
  for (int i = 1000; i >= 1; --i) r.add(i);
  auto qs = r.quantiles({0.5, 0.95, 0.99});
  ASSERT_EQ(qs.size(), 3u);
  EXPECT_DOUBLE_EQ(qs[0], r.quantile(0.5));
  EXPECT_DOUBLE_EQ(qs[1], r.quantile(0.95));
  EXPECT_DOUBLE_EQ(qs[2], r.quantile(0.99));
  EXPECT_NEAR(qs[0], 500.0, 2.0);
  EXPECT_DOUBLE_EQ(r.mean(), 500.5);
}

TEST(QuantileRecorder, ReservoirCapsMemoryButCountsAll) {
  QuantileRecorder r(/*max_samples=*/128);
  for (int i = 0; i < 100000; ++i) r.add(static_cast<double>(i % 1000));
  EXPECT_EQ(r.count(), 100000u);
  EXPECT_EQ(r.retained(), 128u);
  // The reservoir is a uniform sample of [0, 1000); the median estimate
  // must land well inside the central band.
  double p50 = r.quantile(0.5);
  EXPECT_GT(p50, 250.0);
  EXPECT_LT(p50, 750.0);
}

// ---------------------------------------------------------------- tracer

TEST(Tracer, SpanTreeStructureAndTags) {
  Tracer tracer;
  TimePoint t0 = TimePoint::origin();
  TraceContext root = tracer.start_trace("gateway.execute", 0, t0);
  ASSERT_TRUE(root.valid());
  TraceContext fanout = tracer.start_span("coordinator.fanout", root,
                                          1'000'000, t0);
  tracer.tag(fanout, "kind", "range");
  TraceContext frag =
      tracer.start_span("fragment", fanout, 1'000'000, t0);
  tracer.instant("net.retransmit", frag, 1'000'000,
                 t0 + Duration::millis(10));
  tracer.end_span(frag, t0 + Duration::millis(12));
  tracer.end_span(fanout, t0 + Duration::millis(12));
  tracer.end_span(root, t0 + Duration::millis(13));

  SpanTree tree(tracer.trace(root.trace_id));
  ASSERT_EQ(tree.roots().size(), 1u);
  const SpanRecord& root_span = tree.spans()[tree.roots()[0]];
  EXPECT_EQ(root_span.name, "gateway.execute");
  EXPECT_EQ(root_span.duration(), Duration::millis(13));

  auto fanouts = tree.named("coordinator.fanout");
  ASSERT_EQ(fanouts.size(), 1u);
  EXPECT_TRUE(fanouts[0]->has_tag("kind", "range"));
  EXPECT_EQ(fanouts[0]->parent_id, root_span.span_id);

  auto retransmits = tree.named("net.retransmit");
  ASSERT_EQ(retransmits.size(), 1u);
  EXPECT_EQ(retransmits[0]->duration(), Duration::zero());

  EXPECT_FALSE(tree.render().empty());
}

TEST(Tracer, FifoEvictionBoundsRetention) {
  TracerConfig config;
  config.max_traces = 2;
  Tracer tracer(config);
  TimePoint t0 = TimePoint::origin();
  TraceContext a = tracer.start_trace("a", 0, t0);
  TraceContext b = tracer.start_trace("b", 0, t0);
  TraceContext c = tracer.start_trace("c", 0, t0);
  EXPECT_EQ(tracer.trace_count(), 2u);
  EXPECT_FALSE(tracer.has_trace(a.trace_id));
  EXPECT_TRUE(tracer.has_trace(b.trace_id));
  EXPECT_TRUE(tracer.has_trace(c.trace_id));
}

TEST(Tracer, DisabledTracerIsNoop) {
  TracerConfig config;
  config.max_traces = 0;
  Tracer tracer(config);
  TraceContext ctx =
      tracer.start_trace("x", 0, TimePoint::origin());
  EXPECT_FALSE(ctx.valid());
  EXPECT_EQ(tracer.trace_count(), 0u);
}

TEST(Tracer, ChromeJsonExportParses) {
  Tracer tracer;
  TimePoint t0 = TimePoint::origin();
  TraceContext root = tracer.start_trace("gateway.execute", 0, t0);
  TraceContext child = tracer.start_span("worker.query", root, 7, t0);
  tracer.tag(child, "sub_id", "3");
  tracer.end_span(child, t0 + Duration::millis(2));
  tracer.end_span(root, t0 + Duration::millis(3));

  std::string json = tracer.to_chrome_json(root.trace_id);
  obs::JsonValue v;
  std::string error;
  ASSERT_TRUE(obs::JsonValue::parse(json, v, &error)) << error;
  const auto& events = v.at("traceEvents").array();
  ASSERT_EQ(events.size(), 2u);
  bool saw_worker = false;
  for (const auto& e : events) {
    EXPECT_EQ(e.at("ph").string(), "X");
    if (e.at("name").string() == "worker.query") {
      saw_worker = true;
      EXPECT_EQ(e.at("args").at("sub_id").string(), "3");
      EXPECT_DOUBLE_EQ(e.at("dur").number(), 2000.0);
    }
  }
  EXPECT_TRUE(saw_worker);
}

// ---------------------------------------------------------- slow queries

TEST(SlowQueryLog, RecordsOnlyAboveThreshold) {
  Tracer tracer;
  TimePoint t0 = TimePoint::origin();
  TraceContext root = tracer.start_trace("gateway.execute", 0, t0);
  tracer.end_span(root, t0 + Duration::millis(40));

  SlowQueryLog log(Duration::millis(25), /*max_entries=*/2);
  EXPECT_FALSE(log.maybe_record(tracer, root.trace_id, 1, "range",
                                Duration::millis(10)));
  EXPECT_TRUE(log.maybe_record(tracer, root.trace_id, 2, "range",
                               Duration::millis(40)));
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.entries().front().request_id, 2u);
  EXPECT_FALSE(log.entries().front().spans.empty());

  // Bounded retention.
  log.maybe_record(tracer, root.trace_id, 3, "range", Duration::millis(30));
  log.maybe_record(tracer, root.trace_id, 4, "range", Duration::millis(30));
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.entries().front().request_id, 3u);

  obs::JsonValue v;
  ASSERT_TRUE(obs::JsonValue::parse(log.to_json(), v));
  EXPECT_EQ(v.array().size(), 2u);
  EXPECT_FALSE(log.render().empty());
}

TEST(SlowQueryLog, ThresholdBoundaryIsInclusive) {
  Tracer tracer;
  TimePoint t0 = TimePoint::origin();
  TraceContext root = tracer.start_trace("gateway.execute", 0, t0);
  tracer.end_span(root, t0 + Duration::millis(25));

  SlowQueryLog log(Duration::millis(25));
  // Exactly at the threshold records; one microsecond under does not.
  EXPECT_FALSE(log.maybe_record(tracer, root.trace_id, 1, "range",
                                Duration::millis(25) - Duration::micros(1)));
  EXPECT_TRUE(log.maybe_record(tracer, root.trace_id, 2, "range",
                               Duration::millis(25)));
  EXPECT_EQ(log.size(), 1u);
}

TEST(SlowQueryLog, EvictsOldestFirst) {
  Tracer tracer;
  TimePoint t0 = TimePoint::origin();
  TraceContext root = tracer.start_trace("gateway.execute", 0, t0);
  tracer.end_span(root, t0 + Duration::millis(40));

  SlowQueryLog log(Duration::millis(1), /*max_entries=*/3);
  for (std::uint64_t request = 1; request <= 5; ++request) {
    log.maybe_record(tracer, root.trace_id, request, "range",
                     Duration::millis(30));
  }
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log.entries().front().request_id, 3u);  // oldest surviving
  EXPECT_EQ(log.entries().back().request_id, 5u);   // newest
}

TEST(SlowQueryLog, SpanTreesSurviveTracerEviction) {
  TracerConfig config;
  config.max_traces = 1;
  Tracer tracer(config);
  TimePoint t0 = TimePoint::origin();
  TraceContext slow = tracer.start_trace("gateway.execute", 0, t0);
  TraceContext child = tracer.start_span("fragment", slow, 1, t0);
  tracer.end_span(child, t0 + Duration::millis(20));
  tracer.end_span(slow, t0 + Duration::millis(30));

  SlowQueryLog log(Duration::millis(1));
  ASSERT_TRUE(log.maybe_record(tracer, slow.trace_id, 1, "range",
                               Duration::millis(30)));

  // A new trace evicts the recorded one from the tracer's FIFO retention;
  // the log's snapshot must be unaffected.
  tracer.start_trace("gateway.execute", 0, t0 + Duration::millis(40));
  ASSERT_FALSE(tracer.has_trace(slow.trace_id));
  ASSERT_EQ(log.entries().front().spans.size(), 2u);
  std::string text = log.render();
  EXPECT_NE(text.find("fragment"), std::string::npos);
}

TEST(SlowQueryLog, AttachProfileMatchesNewestEntryByRequest) {
  Tracer tracer;
  TimePoint t0 = TimePoint::origin();
  TraceContext root = tracer.start_trace("gateway.execute", 0, t0);
  tracer.end_span(root, t0 + Duration::millis(40));

  SlowQueryLog log(Duration::millis(1));
  log.maybe_record(tracer, root.trace_id, 7, "range", Duration::millis(30));
  log.maybe_record(tracer, root.trace_id, 8, "knn", Duration::millis(35));

  QueryProfile profile;
  profile.request_id = 8;
  ExplainStage stage;
  stage.name = "partition_selection";
  stage.pruned = 6;
  profile.stages.push_back(stage);
  ASSERT_TRUE(log.attach_profile(profile));
  EXPECT_FALSE(log.entries().front().profile.has_value());
  ASSERT_TRUE(log.entries().back().profile.has_value());
  EXPECT_EQ(log.entries().back().profile->total_pruned(), 6u);

  // The profile embeds in both renderings.
  EXPECT_NE(log.render().find("partition_selection"), std::string::npos);
  obs::JsonValue v;
  ASSERT_TRUE(obs::JsonValue::parse(log.to_json(), v));
  EXPECT_EQ(v.array()
                .back()
                .at("profile")
                .at("stages")
                .array()
                .size(),
            1u);

  // No matching request: nothing to attach.
  QueryProfile orphan;
  orphan.request_id = 99;
  EXPECT_FALSE(log.attach_profile(orphan));
}

}  // namespace
}  // namespace stcn
