#include "core/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <thread>

#include "partition/strategies.h"
#include "trace/generator.h"

namespace stcn {
namespace {

struct ShardedScenario {
  Trace trace;
  Rect world;
  std::vector<std::unique_ptr<WorkerIndexes>> shards;
  std::vector<const WorkerIndexes*> shard_ptrs;

  explicit ShardedScenario(std::size_t shard_count) {
    TraceConfig tc;
    tc.roads.grid_cols = 8;
    tc.roads.grid_rows = 8;
    tc.cameras.camera_count = 25;
    tc.mobility.object_count = 20;
    tc.duration = Duration::minutes(4);
    trace = TraceGenerator::generate(tc);
    world = trace.roads.bounds(120.0);

    HashStrategy strategy(shard_count);
    for (std::size_t i = 0; i < shard_count; ++i) {
      shards.push_back(std::make_unique<WorkerIndexes>(
          GridIndexConfig{world, 50.0}));
    }
    for (const Detection& d : trace.detections) {
      std::size_t shard =
          strategy.partition_of(d.camera, d.position, d.time).value();
      shards[shard]->ingest(d);
    }
    for (const auto& s : shards) shard_ptrs.push_back(s.get());
  }
};

std::set<std::uint64_t> ids_of(const QueryResult& r) {
  std::set<std::uint64_t> ids;
  for (const Detection& d : r.detections) ids.insert(d.id.value());
  return ids;
}

class ParallelThreads : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelThreads, RangeEqualsSequential) {
  ShardedScenario s(7);
  ParallelScatterGather sequential(1);
  ParallelScatterGather parallel(GetParam());
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    Query q = Query::range(
        QueryId(static_cast<std::uint64_t>(trial + 1)),
        Rect::centered({rng.uniform(s.world.min.x, s.world.max.x),
                        rng.uniform(s.world.min.y, s.world.max.y)},
                       rng.uniform(50, 500)),
        TimeInterval::all());
    QueryResult a = sequential.execute(s.shard_ptrs, q);
    QueryResult b = parallel.execute(s.shard_ptrs, q);
    ASSERT_EQ(ids_of(a), ids_of(b));
    // Canonical ordering must match exactly, not just set equality.
    ASSERT_EQ(a.detections.size(), b.detections.size());
    for (std::size_t i = 0; i < a.detections.size(); ++i) {
      ASSERT_EQ(a.detections[i].id, b.detections[i].id);
    }
  }
}

TEST_P(ParallelThreads, KnnEqualsSequential) {
  ShardedScenario s(5);
  ParallelScatterGather sequential(1);
  ParallelScatterGather parallel(GetParam());
  Query q = Query::knn(QueryId(1), s.world.center(), 15, TimeInterval::all());
  QueryResult a = sequential.execute(s.shard_ptrs, q);
  QueryResult b = parallel.execute(s.shard_ptrs, q);
  ASSERT_EQ(a.detections.size(), b.detections.size());
  for (std::size_t i = 0; i < a.detections.size(); ++i) {
    EXPECT_EQ(a.detections[i].id, b.detections[i].id) << "rank " << i;
  }
}

TEST_P(ParallelThreads, CountsEqualSequential) {
  ShardedScenario s(5);
  ParallelScatterGather parallel(GetParam());
  Query q = Query::count(QueryId(1), s.world, TimeInterval::all(),
                         GroupBy::kCamera);
  QueryResult r = parallel.execute(s.shard_ptrs, q);
  EXPECT_EQ(r.total_count(), s.trace.detections.size());
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelThreads,
                         ::testing::Values(2, 4, 8, 16));

TEST(ParallelScatterGather, EmptyShardList) {
  ParallelScatterGather runner(4);
  Query q = Query::range(QueryId(1), {{0, 0}, {1, 1}}, TimeInterval::all());
  QueryResult r = runner.execute({}, q);
  EXPECT_TRUE(r.detections.empty());
}

TEST(ParallelScatterGather, MoreThreadsThanShards) {
  ShardedScenario s(2);
  ParallelScatterGather runner(16);
  Query q = Query::range(QueryId(1), s.world, TimeInterval::all());
  QueryResult r = runner.execute(s.shard_ptrs, q);
  EXPECT_EQ(r.detections.size(), s.trace.detections.size());
}

TEST(TaskPool, ReusesThreadsAcrossRounds) {
  TaskPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::mutex m;
  std::set<std::thread::id> first_round;
  pool.run(4, [&](std::size_t) {
    std::lock_guard<std::mutex> lock(m);
    first_round.insert(std::this_thread::get_id());
  });
  EXPECT_EQ(first_round.size(), 4u);
  // Every later round must run on the SAME threads — no per-call spawning.
  for (int round = 0; round < 50; ++round) {
    pool.run(4, [&](std::size_t) {
      std::lock_guard<std::mutex> lock(m);
      EXPECT_TRUE(first_round.count(std::this_thread::get_id()) == 1);
    });
  }
}

TEST(TaskPool, PartialFanOutAndSlotIds) {
  TaskPool pool(8);
  std::atomic<std::uint64_t> slot_mask{0};
  std::atomic<int> calls{0};
  pool.run(3, [&](std::size_t slot) {
    slot_mask.fetch_or(std::uint64_t{1} << slot);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 3);
  EXPECT_EQ(slot_mask.load(), 0b111u);
  pool.run(0, [&](std::size_t) { calls.fetch_add(100); });
  EXPECT_EQ(calls.load(), 3);  // fan_out 0 is a no-op
}

TEST(ParallelScatterGather, RepeatedRunsDeterministic) {
  ShardedScenario s(6);
  ParallelScatterGather runner(8);
  Query q = Query::range(QueryId(1), Rect::centered(s.world.center(), 400),
                         TimeInterval::all());
  QueryResult first = runner.execute(s.shard_ptrs, q);
  for (int i = 0; i < 10; ++i) {
    QueryResult again = runner.execute(s.shard_ptrs, q);
    ASSERT_EQ(again.detections.size(), first.detections.size());
    for (std::size_t d = 0; d < first.detections.size(); ++d) {
      ASSERT_EQ(again.detections[d].id, first.detections[d].id);
    }
  }
}

}  // namespace
}  // namespace stcn
