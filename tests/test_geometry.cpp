#include "common/geometry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace stcn {
namespace {

TEST(Point, Arithmetic) {
  Point a{1.0, 2.0};
  Point b{3.0, -1.0};
  EXPECT_EQ((a + b), (Point{4.0, 1.0}));
  EXPECT_EQ((a - b), (Point{-2.0, 3.0}));
  EXPECT_EQ((a * 2.0), (Point{2.0, 4.0}));
  EXPECT_EQ((2.0 * a), (Point{2.0, 4.0}));
}

TEST(Point, DotAndCross) {
  EXPECT_DOUBLE_EQ(dot({1, 0}, {0, 1}), 0.0);
  EXPECT_DOUBLE_EQ(dot({2, 3}, {4, 5}), 23.0);
  EXPECT_DOUBLE_EQ(cross({1, 0}, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(cross({0, 1}, {1, 0}), -1.0);
}

TEST(Point, Distances) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(squared_distance({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(norm({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(squared_norm({3, 4}), 25.0);
}

TEST(NormalizeAngle, WrapsIntoHalfOpenRange) {
  EXPECT_NEAR(normalize_angle(0.0), 0.0, 1e-12);
  EXPECT_NEAR(normalize_angle(2 * std::numbers::pi), 0.0, 1e-12);
  EXPECT_NEAR(normalize_angle(3 * std::numbers::pi), -std::numbers::pi, 1e-12);
  EXPECT_NEAR(normalize_angle(-3 * std::numbers::pi), -std::numbers::pi,
              1e-12);
  EXPECT_NEAR(normalize_angle(std::numbers::pi / 2), std::numbers::pi / 2,
              1e-12);
  // Result always in [-pi, pi).
  for (double a = -20.0; a < 20.0; a += 0.37) {
    double n = normalize_angle(a);
    EXPECT_GE(n, -std::numbers::pi);
    EXPECT_LT(n, std::numbers::pi);
  }
}

TEST(Rect, ContainsIsHalfOpen) {
  Rect r{{0, 0}, {10, 10}};
  EXPECT_TRUE(r.contains(Point{0, 0}));
  EXPECT_TRUE(r.contains(Point{9.999, 9.999}));
  EXPECT_FALSE(r.contains(Point{10, 5}));
  EXPECT_FALSE(r.contains(Point{5, 10}));
  EXPECT_FALSE(r.contains(Point{-0.001, 5}));
}

TEST(Rect, EmptyRect) {
  EXPECT_TRUE(Rect::empty().is_empty());
  EXPECT_DOUBLE_EQ(Rect::empty().area(), 0.0);
  Rect inverted{{5, 5}, {1, 1}};
  EXPECT_TRUE(inverted.is_empty());
}

TEST(Rect, Spanning) {
  Rect r = Rect::spanning({5, 1}, {2, 7});
  EXPECT_EQ(r.min, (Point{2, 1}));
  EXPECT_EQ(r.max, (Point{5, 7}));
}

TEST(Rect, Centered) {
  Rect r = Rect::centered({10, 10}, 3);
  EXPECT_EQ(r.min, (Point{7, 7}));
  EXPECT_EQ(r.max, (Point{13, 13}));
  EXPECT_DOUBLE_EQ(r.area(), 36.0);
}

TEST(Rect, OverlapSymmetricAndHalfOpen) {
  Rect a{{0, 0}, {10, 10}};
  Rect b{{5, 5}, {15, 15}};
  Rect c{{10, 0}, {20, 10}};  // touches a's max edge: no overlap (half-open)
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_FALSE(c.overlaps(a));
}

TEST(Rect, Intersection) {
  Rect a{{0, 0}, {10, 10}};
  Rect b{{5, 5}, {15, 15}};
  Rect i = a.intersection(b);
  EXPECT_EQ(i.min, (Point{5, 5}));
  EXPECT_EQ(i.max, (Point{10, 10}));
  Rect disjoint{{20, 20}, {30, 30}};
  EXPECT_TRUE(a.intersection(disjoint).is_empty());
}

TEST(Rect, UnionWith) {
  Rect a{{0, 0}, {1, 1}};
  Rect b{{5, 5}, {6, 7}};
  Rect u = a.union_with(b);
  EXPECT_EQ(u.min, (Point{0, 0}));
  EXPECT_EQ(u.max, (Point{6, 7}));
  EXPECT_EQ(Rect::empty().union_with(a), a);
  EXPECT_EQ(a.union_with(Rect::empty()), a);
}

TEST(Rect, ContainsRect) {
  Rect outer{{0, 0}, {10, 10}};
  EXPECT_TRUE(outer.contains(Rect{{1, 1}, {9, 9}}));
  EXPECT_TRUE(outer.contains(outer));
  EXPECT_FALSE(outer.contains(Rect{{1, 1}, {11, 9}}));
}

TEST(Rect, DistanceTo) {
  Rect r{{0, 0}, {10, 10}};
  EXPECT_DOUBLE_EQ(r.distance_to({5, 5}), 0.0);   // inside
  EXPECT_DOUBLE_EQ(r.distance_to({15, 5}), 5.0);  // right of
  EXPECT_DOUBLE_EQ(r.distance_to({13, 14}), 5.0); // diagonal (3,4,5)
  EXPECT_DOUBLE_EQ(r.distance_to({-3, -4}), 5.0);
}

TEST(Circle, ContainsAndOverlaps) {
  Circle c{{0, 0}, 5};
  EXPECT_TRUE(c.contains({3, 4}));     // on the boundary
  EXPECT_FALSE(c.contains({3.1, 4}));  // just outside
  EXPECT_TRUE(c.overlaps(Rect{{3, 3}, {10, 10}}));   // corner at dist √18 < 5
  EXPECT_FALSE(c.overlaps(Rect{{4, 4}, {10, 10}}));  // corner at dist √32 > 5
  EXPECT_FALSE(c.overlaps(Rect{{10, 10}, {20, 20}}));
  Rect bb = c.bounding_box();
  EXPECT_EQ(bb.min, (Point{-5, -5}));
  EXPECT_EQ(bb.max, (Point{5, 5}));
}

TEST(FieldOfView, ContainsRespectsRangeAndAngle) {
  FieldOfView fov;
  fov.apex = {0, 0};
  fov.heading = 0.0;  // looking along +x
  fov.half_angle = std::numbers::pi / 4;
  fov.range = 10.0;

  EXPECT_TRUE(fov.contains({5, 0}));
  EXPECT_TRUE(fov.contains({5, 4.9}));    // within 45 degrees
  EXPECT_FALSE(fov.contains({5, 5.1}));   // beyond 45 degrees
  EXPECT_FALSE(fov.contains({11, 0}));    // beyond range
  EXPECT_FALSE(fov.contains({-5, 0}));    // behind
  EXPECT_TRUE(fov.contains({0, 0}));      // apex itself
}

TEST(FieldOfView, ContainsAcrossAngleWrap) {
  FieldOfView fov;
  fov.apex = {0, 0};
  fov.heading = std::numbers::pi;  // looking along -x, wedge wraps ±pi
  fov.half_angle = 0.5;
  fov.range = 10.0;
  EXPECT_TRUE(fov.contains({-5, 0.1}));
  EXPECT_TRUE(fov.contains({-5, -0.1}));
  EXPECT_FALSE(fov.contains({5, 0}));
}

TEST(FieldOfView, BoundingBoxContainsSampledWedgePoints) {
  FieldOfView fov;
  fov.apex = {100, 50};
  fov.heading = 1.1;
  fov.half_angle = 0.7;
  fov.range = 40.0;
  Rect box = fov.bounding_box();
  // Sample strictly interior angles: the wedge edge itself is subject to
  // floating-point boundary effects.
  for (double a = fov.heading - fov.half_angle + 1e-6;
       a <= fov.heading + fov.half_angle - 1e-6; a += 0.01) {
    for (double r = 0.0; r <= fov.range - 1e-6; r += 5.0) {
      Point p = fov.apex + Point{std::cos(a), std::sin(a)} * r;
      ASSERT_TRUE(fov.contains(p)) << "sample must be inside the wedge";
      EXPECT_TRUE(box.contains(p))
          << "bbox must contain wedge point " << p;
    }
  }
}

TEST(Polyline, LengthAndArcSampling) {
  Polyline line;
  line.points = {{0, 0}, {3, 0}, {3, 4}};
  EXPECT_DOUBLE_EQ(line.length(), 7.0);
  EXPECT_EQ(line.at_arc_length(-1.0), (Point{0, 0}));
  EXPECT_EQ(line.at_arc_length(0.0), (Point{0, 0}));
  EXPECT_EQ(line.at_arc_length(1.5), (Point{1.5, 0}));
  EXPECT_EQ(line.at_arc_length(3.0), (Point{3, 0}));
  EXPECT_EQ(line.at_arc_length(5.0), (Point{3, 2}));
  EXPECT_EQ(line.at_arc_length(7.0), (Point{3, 4}));
  EXPECT_EQ(line.at_arc_length(100.0), (Point{3, 4}));  // clamped
}

TEST(Polyline, DegenerateCases) {
  Polyline empty;
  EXPECT_DOUBLE_EQ(empty.length(), 0.0);
  EXPECT_EQ(empty.at_arc_length(1.0), (Point{}));

  Polyline single;
  single.points = {{2, 3}};
  EXPECT_DOUBLE_EQ(single.length(), 0.0);
  EXPECT_EQ(single.at_arc_length(5.0), (Point{2, 3}));

  Polyline repeated;
  repeated.points = {{1, 1}, {1, 1}, {2, 1}};
  EXPECT_DOUBLE_EQ(repeated.length(), 1.0);
  EXPECT_EQ(repeated.at_arc_length(0.5), (Point{1.5, 1}));
}

}  // namespace
}  // namespace stcn
