// Failure injection: queries stay correct across worker crashes thanks to
// replication + failover, and restarted workers resync their data.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "baseline/centralized.h"
#include "core/framework.h"
#include "partition/strategies.h"
#include "trace/generator.h"

namespace stcn {
namespace {

struct FailureScenario {
  Trace trace;
  Rect world;

  FailureScenario() {
    TraceConfig c;
    c.roads.grid_cols = 6;
    c.roads.grid_rows = 6;
    c.cameras.camera_count = 20;
    c.mobility.object_count = 20;
    c.duration = Duration::minutes(3);
    c.seed = 555;
    trace = TraceGenerator::generate(c);
    world = trace.roads.bounds(120.0);
  }
};

std::set<std::uint64_t> ids_of(const QueryResult& r) {
  std::set<std::uint64_t> ids;
  for (const Detection& d : r.detections) ids.insert(d.id.value());
  return ids;
}

ClusterConfig config_with_workers(std::size_t n) {
  ClusterConfig c;
  c.worker_count = n;
  c.network.latency_jitter = Duration::zero();
  c.coordinator.query_timeout = Duration::millis(20);
  // These tests exercise the timeout-driven failover path specifically;
  // hedging would answer from the backups before the timeout ever fires.
  c.coordinator.hedge_queries = false;
  return c;
}

TEST(FailureRecovery, QueriesCorrectAfterCrashViaFailover) {
  FailureScenario s;
  Cluster cluster(
      s.world,
      std::make_unique<SpatialGridStrategy>(s.world, 3, 3, s.trace.cameras),
      config_with_workers(4));
  cluster.ingest_all(s.trace.detections);

  CentralizedIndex oracle(s.world);
  oracle.ingest_all(s.trace.detections);

  Query q = Query::range(cluster.next_query_id(), s.world,
                         TimeInterval::all());
  auto expected = ids_of(oracle.execute(q));
  ASSERT_EQ(ids_of(cluster.execute(q)), expected);

  // Crash one worker; the query must still return the complete answer via
  // the promoted backups.
  cluster.crash_worker(WorkerId(2));
  Query q2 = Query::range(cluster.next_query_id(), s.world,
                          TimeInterval::all());
  auto after_crash = ids_of(cluster.execute(q2));
  EXPECT_EQ(after_crash, expected);
  EXPECT_GT(cluster.coordinator().counters().get("failover_retries"), 0u);
}

TEST(FailureRecovery, CrashLosesStateRestartResyncsIt) {
  FailureScenario s;
  Cluster cluster(
      s.world,
      std::make_unique<SpatialGridStrategy>(s.world, 2, 2, s.trace.cameras),
      config_with_workers(3));
  cluster.ingest_all(s.trace.detections);

  WorkerId victim(1);
  std::size_t before = cluster.worker(victim).stored_detections();
  ASSERT_GT(before, 0u);

  cluster.crash_worker(victim);
  EXPECT_EQ(cluster.worker(victim).stored_detections(), 0u);

  Duration recovery = cluster.restart_worker(victim);
  EXPECT_GT(recovery, Duration::zero());
  EXPECT_TRUE(cluster.worker(victim).resync_complete());
  EXPECT_EQ(cluster.worker(victim).stored_detections(), before)
      << "resync must restore every lost detection";
}

TEST(FailureRecovery, QueriesCorrectAfterRestartAndResync) {
  FailureScenario s;
  Cluster cluster(
      s.world,
      std::make_unique<SpatialGridStrategy>(s.world, 3, 3, s.trace.cameras),
      config_with_workers(4));
  cluster.ingest_all(s.trace.detections);
  CentralizedIndex oracle(s.world);
  oracle.ingest_all(s.trace.detections);

  cluster.crash_worker(WorkerId(3));
  cluster.restart_worker(WorkerId(3));

  Query q = Query::range(cluster.next_query_id(), s.world,
                         TimeInterval::all());
  EXPECT_EQ(ids_of(cluster.execute(q)), ids_of(oracle.execute(q)));
}

TEST(FailureRecovery, IngestDuringDowntimeSurvivesOnReplicas) {
  FailureScenario s;
  Cluster cluster(
      s.world,
      std::make_unique<SpatialGridStrategy>(s.world, 2, 2, s.trace.cameras),
      config_with_workers(3));

  // First half before the crash, second half during downtime.
  std::size_t half = s.trace.detections.size() / 2;
  std::span<const Detection> first(s.trace.detections.data(), half);
  std::span<const Detection> second(s.trace.detections.data() + half,
                                    s.trace.detections.size() - half);
  cluster.ingest_all(first);
  cluster.crash_worker(WorkerId(1));
  // Promote backups so new ingest routes around the dead primary.
  cluster.coordinator().promote_backups_of(WorkerId(1));
  cluster.ingest_all(second);
  cluster.restart_worker(WorkerId(1));

  CentralizedIndex oracle(s.world);
  oracle.ingest_all(s.trace.detections);
  Query q = Query::range(cluster.next_query_id(), s.world,
                         TimeInterval::all());
  EXPECT_EQ(ids_of(cluster.execute(q)), ids_of(oracle.execute(q)));
}

TEST(FailureRecovery, PartialResultsWhenNoReplicaSurvives) {
  FailureScenario s;
  // Single worker: no distinct backup exists, so a crash must surface as a
  // partial (empty) answer rather than a hang.
  Cluster cluster(
      s.world,
      std::make_unique<SpatialGridStrategy>(s.world, 2, 2, s.trace.cameras),
      config_with_workers(1));
  cluster.ingest_all(s.trace.detections);
  cluster.crash_worker(WorkerId(1));
  Query q = Query::range(cluster.next_query_id(), s.world,
                         TimeInterval::all());
  QueryResult r = cluster.execute(q);
  EXPECT_TRUE(r.detections.empty());
  EXPECT_GT(cluster.coordinator().counters().get("queries_partial"), 0u);
}

TEST(FailureRecovery, MultipleSequentialFailures) {
  FailureScenario s;
  Cluster cluster(
      s.world,
      std::make_unique<SpatialGridStrategy>(s.world, 3, 3, s.trace.cameras),
      config_with_workers(5));
  cluster.ingest_all(s.trace.detections);
  CentralizedIndex oracle(s.world);
  oracle.ingest_all(s.trace.detections);
  Query probe = Query::range(cluster.next_query_id(), s.world,
                             TimeInterval::all());
  auto expected = ids_of(oracle.execute(probe));

  for (std::uint64_t w = 1; w <= 3; ++w) {
    cluster.crash_worker(WorkerId(w));
    cluster.restart_worker(WorkerId(w));
    Query q = Query::range(cluster.next_query_id(), s.world,
                           TimeInterval::all());
    ASSERT_EQ(ids_of(cluster.execute(q)), expected)
        << "after crash/restart of worker " << w;
  }
}

}  // namespace
}  // namespace stcn
