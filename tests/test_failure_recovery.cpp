// Failure injection: queries stay correct across worker crashes thanks to
// replication + failover, and restarted workers resync their data.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "baseline/centralized.h"
#include "core/framework.h"
#include "partition/strategies.h"
#include "trace/generator.h"

namespace stcn {
namespace {

struct FailureScenario {
  Trace trace;
  Rect world;

  FailureScenario() {
    TraceConfig c;
    c.roads.grid_cols = 6;
    c.roads.grid_rows = 6;
    c.cameras.camera_count = 20;
    c.mobility.object_count = 20;
    c.duration = Duration::minutes(3);
    c.seed = 555;
    trace = TraceGenerator::generate(c);
    world = trace.roads.bounds(120.0);
  }
};

std::set<std::uint64_t> ids_of(const QueryResult& r) {
  std::set<std::uint64_t> ids;
  for (const Detection& d : r.detections) ids.insert(d.id.value());
  return ids;
}

ClusterConfig config_with_workers(std::size_t n) {
  ClusterConfig c;
  c.worker_count = n;
  c.network.latency_jitter = Duration::zero();
  c.coordinator.query_timeout = Duration::millis(20);
  // These tests exercise the timeout-driven failover path specifically;
  // hedging would answer from the backups before the timeout ever fires.
  c.coordinator.hedge_queries = false;
  return c;
}

TEST(FailureRecovery, QueriesCorrectAfterCrashViaFailover) {
  FailureScenario s;
  Cluster cluster(
      s.world,
      std::make_unique<SpatialGridStrategy>(s.world, 3, 3, s.trace.cameras),
      config_with_workers(4));
  cluster.ingest_all(s.trace.detections);

  CentralizedIndex oracle(s.world);
  oracle.ingest_all(s.trace.detections);

  Query q = Query::range(cluster.next_query_id(), s.world,
                         TimeInterval::all());
  auto expected = ids_of(oracle.execute(q));
  ASSERT_EQ(ids_of(cluster.execute(q)), expected);

  // Crash one worker; the query must still return the complete answer via
  // the promoted backups.
  cluster.crash_worker(WorkerId(2));
  Query q2 = Query::range(cluster.next_query_id(), s.world,
                          TimeInterval::all());
  auto after_crash = ids_of(cluster.execute(q2));
  EXPECT_EQ(after_crash, expected);
  EXPECT_GT(cluster.coordinator().counters().get("failover_retries"), 0u);
}

TEST(FailureRecovery, CrashLosesStateRestartResyncsIt) {
  FailureScenario s;
  Cluster cluster(
      s.world,
      std::make_unique<SpatialGridStrategy>(s.world, 2, 2, s.trace.cameras),
      config_with_workers(3));
  cluster.ingest_all(s.trace.detections);

  WorkerId victim(1);
  std::size_t before = cluster.worker(victim).stored_detections();
  ASSERT_GT(before, 0u);

  cluster.crash_worker(victim);
  EXPECT_EQ(cluster.worker(victim).stored_detections(), 0u);

  Cluster::RecoveryReport recovery = cluster.restart_worker(victim);
  EXPECT_GT(recovery.duration, Duration::zero());
  EXPECT_TRUE(recovery.completed);
  EXPECT_GT(recovery.partitions_total, 0u);
  EXPECT_EQ(recovery.partitions_recovered + recovery.partitions_failed,
            recovery.partitions_total);
  EXPECT_EQ(recovery.partitions_failed, 0u);
  EXPECT_TRUE(cluster.worker(victim).resync_complete());
  EXPECT_EQ(cluster.worker(victim).stored_detections(), before)
      << "resync must restore every lost detection";
}

TEST(FailureRecovery, QueriesCorrectAfterRestartAndResync) {
  FailureScenario s;
  Cluster cluster(
      s.world,
      std::make_unique<SpatialGridStrategy>(s.world, 3, 3, s.trace.cameras),
      config_with_workers(4));
  cluster.ingest_all(s.trace.detections);
  CentralizedIndex oracle(s.world);
  oracle.ingest_all(s.trace.detections);

  cluster.crash_worker(WorkerId(3));
  cluster.restart_worker(WorkerId(3));

  Query q = Query::range(cluster.next_query_id(), s.world,
                         TimeInterval::all());
  EXPECT_EQ(ids_of(cluster.execute(q)), ids_of(oracle.execute(q)));
}

TEST(FailureRecovery, IngestDuringDowntimeSurvivesOnReplicas) {
  FailureScenario s;
  Cluster cluster(
      s.world,
      std::make_unique<SpatialGridStrategy>(s.world, 2, 2, s.trace.cameras),
      config_with_workers(3));

  // First half before the crash, second half during downtime.
  std::size_t half = s.trace.detections.size() / 2;
  std::span<const Detection> first(s.trace.detections.data(), half);
  std::span<const Detection> second(s.trace.detections.data() + half,
                                    s.trace.detections.size() - half);
  cluster.ingest_all(first);
  cluster.crash_worker(WorkerId(1));
  // Promote backups so new ingest routes around the dead primary.
  cluster.coordinator().promote_backups_of(WorkerId(1));
  cluster.ingest_all(second);
  cluster.restart_worker(WorkerId(1));

  CentralizedIndex oracle(s.world);
  oracle.ingest_all(s.trace.detections);
  Query q = Query::range(cluster.next_query_id(), s.world,
                         TimeInterval::all());
  EXPECT_EQ(ids_of(cluster.execute(q)), ids_of(oracle.execute(q)));
}

TEST(FailureRecovery, PartialResultsWhenNoReplicaSurvives) {
  FailureScenario s;
  // Single worker: no distinct backup exists, so a crash must surface as a
  // partial (empty) answer rather than a hang.
  Cluster cluster(
      s.world,
      std::make_unique<SpatialGridStrategy>(s.world, 2, 2, s.trace.cameras),
      config_with_workers(1));
  cluster.ingest_all(s.trace.detections);
  cluster.crash_worker(WorkerId(1));
  Query q = Query::range(cluster.next_query_id(), s.world,
                         TimeInterval::all());
  QueryResult r = cluster.execute(q);
  EXPECT_TRUE(r.detections.empty());
  EXPECT_GT(cluster.coordinator().counters().get("queries_partial"), 0u);
}

TEST(FailureRecovery, MultipleSequentialFailures) {
  FailureScenario s;
  Cluster cluster(
      s.world,
      std::make_unique<SpatialGridStrategy>(s.world, 3, 3, s.trace.cameras),
      config_with_workers(5));
  cluster.ingest_all(s.trace.detections);
  CentralizedIndex oracle(s.world);
  oracle.ingest_all(s.trace.detections);
  Query probe = Query::range(cluster.next_query_id(), s.world,
                             TimeInterval::all());
  auto expected = ids_of(oracle.execute(probe));

  for (std::uint64_t w = 1; w <= 3; ++w) {
    cluster.crash_worker(WorkerId(w));
    cluster.restart_worker(WorkerId(w));
    Query q = Query::range(cluster.next_query_id(), s.world,
                           TimeInterval::all());
    ASSERT_EQ(ids_of(cluster.execute(q)), expected)
        << "after crash/restart of worker " << w;
  }
}

// --------------------------------------------------------- recovery chaos
//
// Crash/recovery interleavings around the snapshot + replay-log resync
// path. The fixture name is load-bearing: ci.sh re-runs RecoveryChaos.*
// under ASan/UBSan.

/// Restarts `victim` by hand (network heal + routing flip + recovery kick)
/// WITHOUT pumping to completion, so tests can interleave faults and
/// queries while the recovery is in flight.
Coordinator::RecoveryPlan begin_manual_restart(Cluster& cluster,
                                               WorkerId victim) {
  SimNetwork& net = cluster.network();
  net.restart(NodeId(victim.value()));
  cluster.worker(victim).restart_ticks(net);
  cluster.coordinator().clear_suspicion(victim);
  return cluster.coordinator().begin_worker_recovery(victim);
}

/// Pumps until the victim's recovery tasks drain (or `budget` expires).
void pump_recovery(Cluster& cluster, WorkerId victim, Duration budget) {
  TimePoint deadline = cluster.now() + budget;
  while (!cluster.worker(victim).resync_complete() &&
         cluster.now() < deadline) {
    if (!cluster.network().step()) break;
  }
  cluster.pump();  // deliver trailing RecoveryDone messages
}

TEST(RecoveryChaos, CompletenessWhileRestartInFlight) {
  FailureScenario s;
  Cluster cluster(
      s.world,
      std::make_unique<SpatialGridStrategy>(s.world, 2, 2, s.trace.cameras),
      config_with_workers(3));
  cluster.ingest_all(s.trace.detections);
  CentralizedIndex oracle(s.world);
  oracle.ingest_all(s.trace.detections);
  Query probe = Query::range(cluster.next_query_id(), s.world,
                             TimeInterval::all());
  auto expected = ids_of(oracle.execute(probe));

  WorkerId victim(1);
  cluster.crash_worker(victim);
  auto plan = begin_manual_restart(cluster, victim);
  ASSERT_FALSE(plan.specs.empty());
  ASSERT_GT(cluster.coordinator().recovering_count_for(victim), 0u);

  // Wedge the rejoiner behind a partition BEFORE its recovery exchanges go
  // out: routing has flipped, but no data can reach the victim, so every
  // recovering partition must be served entirely by the surviving holder.
  std::vector<NodeId> rest{cluster.coordinator().node_id()};
  for (WorkerId w : cluster.worker_ids()) {
    if (w != victim) rest.push_back(NodeId(w.value()));
  }
  cluster.network().partition({NodeId(victim.value())}, rest);
  cluster.worker(victim).start_recovery(plan.recovery_id, plan.specs, {},
                                        cluster.network());

  std::uint64_t partial0 =
      cluster.coordinator().counters().get("queries_partial");
  for (int i = 0; i < 5; ++i) {
    Query q = Query::range(cluster.next_query_id(), s.world,
                           TimeInterval::all());
    ASSERT_EQ(ids_of(cluster.execute(q)), expected)
        << "query " << i << " lost data while restart was in flight";
  }
  EXPECT_EQ(cluster.coordinator().counters().get("queries_partial"),
            partial0)
      << "queries during recovery must be complete, not partial";
  EXPECT_GT(cluster.coordinator().recovering_count_for(victim), 0u)
      << "recovery must still be in flight while the victim is wedged";

  cluster.network().heal();
  pump_recovery(cluster, victim, Duration::seconds(40));
  EXPECT_TRUE(cluster.worker(victim).resync_complete());
  EXPECT_EQ(cluster.worker(victim).recovery_failed_count(), 0u);
  EXPECT_EQ(cluster.coordinator().recovering_count_for(victim), 0u)
      << "RecoveryDone must flip routing back after catch-up";
  Query after = Query::range(cluster.next_query_id(), s.world,
                             TimeInterval::all());
  EXPECT_EQ(ids_of(cluster.execute(after)), expected);
}

TEST(RecoveryChaos, HolderCrashMidResync) {
  FailureScenario s;
  Cluster cluster(
      s.world,
      std::make_unique<SpatialGridStrategy>(s.world, 2, 2, s.trace.cameras),
      config_with_workers(3));
  cluster.ingest_all(s.trace.detections);
  CentralizedIndex oracle(s.world);
  oracle.ingest_all(s.trace.detections);
  Query probe = Query::range(cluster.next_query_id(), s.world,
                             TimeInterval::all());
  auto expected = ids_of(oracle.execute(probe));

  // Checkpoint everything first: the double fault below must only be able
  // to cost availability, never snapshot-covered data.
  for (WorkerId w : cluster.worker_ids()) {
    cluster.worker(w).take_snapshots(cluster.now());
  }

  WorkerId a(1);
  cluster.crash_worker(a);
  auto plan = begin_manual_restart(cluster, a);
  ASSERT_FALSE(plan.specs.empty());
  NodeId holder_node(0);
  for (const RecoverySpec& spec : plan.specs) {
    if (spec.holder != NodeId(0)) {
      holder_node = spec.holder;
      break;
    }
  }
  ASSERT_NE(holder_node.value(), 0u);
  cluster.worker(a).start_recovery(plan.recovery_id, plan.specs, {},
                                   cluster.network());
  // The replica holder dies before any sync response lands.
  WorkerId b(holder_node.value());
  cluster.crash_worker(b);

  // Pump past the whole retry ladder: exchanges against the dead holder
  // must give up loudly instead of hanging.
  pump_recovery(cluster, a, Duration::seconds(45));
  EXPECT_TRUE(cluster.worker(a).resync_complete());
  EXPECT_GT(cluster.worker(a).recovery_failed_count(), 0u);
  EXPECT_GT(cluster.worker(a).counters().get("recovery_failed"), 0u);

  // Queries still terminate; partitions with no live holder are flagged
  // partial — never a silent hole.
  std::uint64_t partial0 =
      cluster.coordinator().counters().get("queries_partial");
  QueryResult during = cluster.execute(Query::range(
      cluster.next_query_id(), s.world, TimeInterval::all()));
  EXPECT_FALSE(during.detections.empty());
  EXPECT_GT(cluster.coordinator().counters().get("queries_partial"),
            partial0)
      << "missing partitions must surface as a partial result";

  // Bring both workers back; the cluster must converge to the full answer.
  Cluster::RecoveryReport rb = cluster.restart_worker(b);
  EXPECT_TRUE(rb.completed);
  Cluster::RecoveryReport ra = cluster.restart_worker(a);
  EXPECT_TRUE(ra.completed);
  Query final_q = Query::range(cluster.next_query_id(), s.world,
                               TimeInterval::all());
  QueryResult final_r = cluster.execute(final_q);
  auto got = ids_of(final_r);
  EXPECT_EQ(final_r.detections.size(), got.size()) << "duplicate detections";
  EXPECT_EQ(got, expected);
}

TEST(RecoveryChaos, RecoveringWorkerCrashesAgain) {
  FailureScenario s;
  Cluster cluster(
      s.world,
      std::make_unique<SpatialGridStrategy>(s.world, 2, 2, s.trace.cameras),
      config_with_workers(3));
  cluster.ingest_all(s.trace.detections);
  CentralizedIndex oracle(s.world);
  oracle.ingest_all(s.trace.detections);
  Query probe = Query::range(cluster.next_query_id(), s.world,
                             TimeInterval::all());
  auto expected = ids_of(oracle.execute(probe));

  WorkerId a(2);
  cluster.crash_worker(a);
  auto plan = begin_manual_restart(cluster, a);
  ASSERT_FALSE(plan.specs.empty());
  std::uint64_t first_rid = plan.recovery_id;
  cluster.worker(a).start_recovery(plan.recovery_id, plan.specs, {},
                                   cluster.network());
  // Before the catch-up lands, the rejoiner dies again.
  cluster.crash_worker(a);

  // A full restart supersedes the dead plan: a fresh recovery id means any
  // straggler completions from the first incarnation are ignored.
  Cluster::RecoveryReport report = cluster.restart_worker(a);
  EXPECT_TRUE(report.completed);
  EXPECT_GT(cluster.coordinator().counters().get("recoveries_started"), 0u);
  EXPECT_EQ(cluster.coordinator().recovering_count_for(a), 0u);
  auto plan2_used = cluster.coordinator().counters().get("recovery_done_stale");
  (void)plan2_used;  // stale completions are timing-dependent; just counted
  EXPECT_NE(first_rid, 0u);

  QueryResult final_r = cluster.execute(Query::range(
      cluster.next_query_id(), s.world, TimeInterval::all()));
  auto got = ids_of(final_r);
  EXPECT_EQ(final_r.detections.size(), got.size()) << "duplicate detections";
  EXPECT_EQ(got, expected);
}

TEST(RecoveryChaos, SnapshotInstallRacesLiveStream) {
  FailureScenario s;
  Cluster cluster(
      s.world,
      std::make_unique<SpatialGridStrategy>(s.world, 2, 2, s.trace.cameras),
      config_with_workers(3));

  std::size_t half = s.trace.detections.size() / 2;
  ASSERT_GT(half, 0u);
  cluster.ingest_all(
      std::span<const Detection>(s.trace.detections.data(), half));

  WorkerId victim(2);
  cluster.worker(victim).take_snapshots(cluster.now());
  EXPECT_FALSE(cluster.worker(victim).snapshot_vault().empty());
  cluster.crash_worker(victim);

  auto plan = begin_manual_restart(cluster, victim);
  ASSERT_FALSE(plan.specs.empty());
  cluster.worker(victim).start_recovery(plan.recovery_id, plan.specs, {},
                                        cluster.network());
  // Live ingest resumes immediately: the rejoiner (riding as backup while
  // recovering) receives fresh replica batches racing its snapshot install
  // and delta replay. Dedup must keep the store exact — no dup, no loss.
  cluster.ingest_all(std::span<const Detection>(
      s.trace.detections.data() + half, s.trace.detections.size() - half));
  pump_recovery(cluster, victim, Duration::seconds(40));
  EXPECT_TRUE(cluster.worker(victim).resync_complete());
  EXPECT_EQ(cluster.worker(victim).recovery_failed_count(), 0u);
  EXPECT_EQ(cluster.coordinator().recovering_count_for(victim), 0u);
  EXPECT_GT(cluster.worker(victim).counters().get("snapshots_installed"),
            0u);

  CentralizedIndex oracle(s.world);
  oracle.ingest_all(s.trace.detections);
  Query q = Query::range(cluster.next_query_id(), s.world,
                         TimeInterval::all());
  QueryResult r = cluster.execute(q);
  auto got = ids_of(r);
  EXPECT_EQ(r.detections.size(), got.size()) << "duplicate detections";
  EXPECT_EQ(got, ids_of(oracle.execute(q)));
}

}  // namespace
}  // namespace stcn
