#include "query/planner.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/framework.h"
#include "partition/strategies.h"
#include "trace/generator.h"

namespace stcn {
namespace {

SelectivityConfig estimator_config(Rect world) {
  SelectivityConfig c;
  c.world = world;
  c.grid_cols = 16;
  c.grid_rows = 16;
  return c;
}

TEST(KnnPlanner, DarkEstimatorPlansDegenerate) {
  Rect world{{0, 0}, {1600, 1600}};
  SelectivityEstimator estimator(estimator_config(world));
  KnnPlanner planner(estimator, world);
  KnnPlan plan = planner.plan({800, 800}, 5, TimeInterval::all());
  EXPECT_TRUE(plan.degenerate);
  EXPECT_DOUBLE_EQ(plan.initial_radius, 1600.0);
}

TEST(KnnPlanner, DenseRegionPlansSmallRadius) {
  Rect world{{0, 0}, {1600, 1600}};
  SelectivityEstimator estimator(estimator_config(world));
  // Teach the estimator the whole world is dense.
  estimator.observe(world, {TimePoint(0), TimePoint(60'000'000)}, 100'000);
  KnnPlanner planner(estimator, world);
  KnnPlan plan =
      planner.plan({800, 800}, 5, {TimePoint(0), TimePoint(60'000'000)});
  EXPECT_FALSE(plan.degenerate);
  EXPECT_LE(plan.initial_radius, 100.0);
  EXPECT_GE(plan.estimated_count, 15.0);  // ≥ k × overshoot
}

TEST(KnnPlanner, SparseRegionPlansLargerRadius) {
  Rect world{{0, 0}, {1600, 1600}};
  SelectivityEstimator estimator(estimator_config(world));
  estimator.observe(world, {TimePoint(0), TimePoint(60'000'000)}, 200);
  KnnPlanner planner(estimator, world);
  KnnPlan dense_plan =
      planner.plan({800, 800}, 1, {TimePoint(0), TimePoint(60'000'000)});
  KnnPlan sparse_plan =
      planner.plan({800, 800}, 50, {TimePoint(0), TimePoint(60'000'000)});
  EXPECT_GT(sparse_plan.initial_radius, dense_plan.initial_radius);
}

TEST(KnnPlanner, GrowDoubles) {
  Rect world{{0, 0}, {100, 100}};
  SelectivityEstimator estimator(estimator_config(world));
  KnnPlanner planner(estimator, world);
  EXPECT_DOUBLE_EQ(planner.grow(50.0), 100.0);
  EXPECT_DOUBLE_EQ(planner.world_radius(), 100.0);
}

struct AdaptiveScenario {
  Trace trace;
  Rect world;
  std::unique_ptr<Cluster> cluster;

  AdaptiveScenario() {
    TraceConfig tc;
    tc.roads.grid_cols = 10;
    tc.roads.grid_rows = 10;
    tc.cameras.camera_count = 50;
    tc.mobility.object_count = 40;
    tc.duration = Duration::minutes(4);
    trace = TraceGenerator::generate(tc);
    world = trace.roads.bounds(120.0);
    ClusterConfig config;
    config.worker_count = 8;
    cluster = std::make_unique<Cluster>(
        world,
        std::make_unique<SpatialGridStrategy>(world, 4, 4, trace.cameras),
        config);
    cluster->ingest_all(trace.detections);
  }

  /// Lights the estimator with feedback queries.
  void warm_up() {
    Rng rng(3);
    for (int i = 0; i < 40; ++i) {
      Rect region = Rect::centered(
          {rng.uniform(world.min.x, world.max.x),
           rng.uniform(world.min.y, world.max.y)},
          300.0);
      (void)cluster->execute(Query::range(cluster->next_query_id(), region,
                                          TimeInterval::all()));
    }
  }
};

TEST(AdaptiveKnn, MatchesBroadcastKnnExactly) {
  AdaptiveScenario s;
  s.warm_up();
  Rng rng(9);
  for (int trial = 0; trial < 15; ++trial) {
    Point center{rng.uniform(s.world.min.x, s.world.max.x),
                 rng.uniform(s.world.min.y, s.world.max.y)};
    auto k = static_cast<std::uint32_t>(1 + rng.uniform_index(20));
    QueryResult adaptive =
        s.cluster->execute_knn_adaptive(center, k, TimeInterval::all());
    QueryResult broadcast = s.cluster->execute(
        Query::knn(s.cluster->next_query_id(), center, k,
                   TimeInterval::all()));
    ASSERT_EQ(adaptive.detections.size(), broadcast.detections.size());
    for (std::size_t i = 0; i < adaptive.detections.size(); ++i) {
      ASSERT_NEAR(distance(adaptive.detections[i].position, center),
                  distance(broadcast.detections[i].position, center), 1e-9)
          << "trial " << trial << " rank " << i;
    }
  }
}

TEST(AdaptiveKnn, WarmedPlannerReducesFanout) {
  AdaptiveScenario s;
  s.warm_up();

  auto fanout_of = [&](auto&& run) {
    auto queries0 =
        s.cluster->coordinator().counters().get("queries_submitted");
    auto fanout0 =
        s.cluster->coordinator().counters().get("query_fanout_total");
    run();
    auto queries =
        s.cluster->coordinator().counters().get("queries_submitted") -
        queries0;
    auto fanout =
        s.cluster->coordinator().counters().get("query_fanout_total") -
        fanout0;
    return static_cast<double>(fanout) / static_cast<double>(queries);
  };

  Rng rng(11);
  std::vector<Point> centers;
  for (int i = 0; i < 20; ++i) {
    centers.push_back({rng.uniform(s.world.min.x, s.world.max.x),
                       rng.uniform(s.world.min.y, s.world.max.y)});
  }
  double adaptive_fanout = fanout_of([&] {
    for (Point c : centers) {
      (void)s.cluster->execute_knn_adaptive(c, 5, TimeInterval::all());
    }
  });
  double broadcast_fanout = fanout_of([&] {
    for (Point c : centers) {
      (void)s.cluster->execute(Query::knn(s.cluster->next_query_id(), c, 5,
                                          TimeInterval::all()));
    }
  });
  EXPECT_LT(adaptive_fanout, broadcast_fanout)
      << "planned circles must touch fewer workers than broadcast k-NN";
}

TEST(AdaptiveKnn, ColdPlannerStillCorrect) {
  AdaptiveScenario s;  // estimator dark: degenerate plan, still exact
  QueryResult adaptive = s.cluster->execute_knn_adaptive(
      s.world.center(), 7, TimeInterval::all());
  QueryResult broadcast = s.cluster->execute(
      Query::knn(s.cluster->next_query_id(), s.world.center(), 7,
                 TimeInterval::all()));
  ASSERT_EQ(adaptive.detections.size(), broadcast.detections.size());
  EXPECT_GT(s.cluster->coordinator().counters().get(
                "knn_adaptive_degenerate"),
            0u);
}

TEST(AdaptiveKnn, KLargerThanDatasetReturnsEverything) {
  AdaptiveScenario s;
  QueryResult r = s.cluster->execute_knn_adaptive(
      s.world.center(), 1'000'000, TimeInterval::all());
  EXPECT_EQ(r.detections.size(), s.trace.detections.size());
}

TEST(SelectivityFeedback, ClusterLearnsFromItsOwnQueries) {
  AdaptiveScenario s;
  EXPECT_DOUBLE_EQ(s.cluster->selectivity().coverage(), 0.0);
  s.warm_up();
  EXPECT_GT(s.cluster->selectivity().coverage(), 0.1);
}

}  // namespace
}  // namespace stcn
