#include "query/query.h"

#include <gtest/gtest.h>

#include <set>

#include "query/executor.h"
#include "query/result.h"

namespace stcn {
namespace {

Detection make_detection(std::uint64_t id, Point pos, std::int64_t t,
                         std::uint64_t object = 1, std::uint64_t camera = 1) {
  Detection d;
  d.id = DetectionId(id);
  d.camera = CameraId(camera);
  d.object = ObjectId(object);
  d.time = TimePoint(t);
  d.position = pos;
  return d;
}

class ExecutorFixture : public ::testing::Test {
 protected:
  ExecutorFixture() : indexes_(GridIndexConfig{{{0, 0}, {100, 100}}, 10.0}) {
    // A small fixed dataset exercised by every query kind.
    indexes_.ingest(make_detection(1, {10, 10}, 100, /*object=*/1, /*camera=*/1));
    indexes_.ingest(make_detection(2, {20, 20}, 200, 1, 2));
    indexes_.ingest(make_detection(3, {80, 80}, 300, 2, 3));
    indexes_.ingest(make_detection(4, {15, 15}, 400, 2, 1));
    indexes_.ingest(make_detection(5, {50, 50}, 500, 3, 2));
  }

  WorkerIndexes indexes_;
};

TEST_F(ExecutorFixture, RangeQuery) {
  Query q = Query::range(QueryId(1), {{0, 0}, {30, 30}}, TimeInterval::all());
  QueryResult r = LocalExecutor::execute(indexes_, q);
  std::set<std::uint64_t> ids;
  for (const Detection& d : r.detections) ids.insert(d.id.value());
  EXPECT_EQ(ids, (std::set<std::uint64_t>{1, 2, 4}));
}

TEST_F(ExecutorFixture, RangeQueryWithTimeFilter) {
  Query q = Query::range(QueryId(1), {{0, 0}, {30, 30}},
                         {TimePoint(150), TimePoint(450)});
  QueryResult r = LocalExecutor::execute(indexes_, q);
  std::set<std::uint64_t> ids;
  for (const Detection& d : r.detections) ids.insert(d.id.value());
  EXPECT_EQ(ids, (std::set<std::uint64_t>{2, 4}));
}

TEST_F(ExecutorFixture, CircleQuery) {
  Query q = Query::circle_query(QueryId(1), {{12, 12}, 5.0},
                                TimeInterval::all());
  QueryResult r = LocalExecutor::execute(indexes_, q);
  std::set<std::uint64_t> ids;
  for (const Detection& d : r.detections) ids.insert(d.id.value());
  EXPECT_EQ(ids, (std::set<std::uint64_t>{1, 4}));
}

TEST_F(ExecutorFixture, KnnQuery) {
  Query q = Query::knn(QueryId(1), {10, 10}, 2, TimeInterval::all());
  QueryResult r = LocalExecutor::execute(indexes_, q);
  ASSERT_EQ(r.detections.size(), 2u);
  std::set<std::uint64_t> ids;
  for (const Detection& d : r.detections) ids.insert(d.id.value());
  EXPECT_EQ(ids, (std::set<std::uint64_t>{1, 4}));
}

TEST_F(ExecutorFixture, TrajectoryQuery) {
  Query q = Query::trajectory(QueryId(1), ObjectId(2), TimeInterval::all());
  QueryResult r = LocalExecutor::execute(indexes_, q);
  ASSERT_EQ(r.detections.size(), 2u);
  EXPECT_EQ(r.detections[0].id, DetectionId(3));
  EXPECT_EQ(r.detections[1].id, DetectionId(4));
}

TEST_F(ExecutorFixture, CountQueryUngrouped) {
  Query q = Query::count(QueryId(1), {{0, 0}, {100, 100}},
                         TimeInterval::all());
  QueryResult r = LocalExecutor::execute(indexes_, q);
  EXPECT_TRUE(r.detections.empty());
  EXPECT_EQ(r.total_count(), 5u);
}

TEST_F(ExecutorFixture, CountQueryGroupedByCamera) {
  Query q = Query::count(QueryId(1), {{0, 0}, {100, 100}},
                         TimeInterval::all(), GroupBy::kCamera);
  QueryResult r = LocalExecutor::execute(indexes_, q);
  EXPECT_EQ(r.counts.at(1), 2u);
  EXPECT_EQ(r.counts.at(2), 2u);
  EXPECT_EQ(r.counts.at(3), 1u);
  EXPECT_EQ(r.total_count(), 5u);
}

TEST_F(ExecutorFixture, CameraWindowQuery) {
  Query q = Query::camera_window(QueryId(1), CameraId(1),
                                 {TimePoint(0), TimePoint(450)});
  QueryResult r = LocalExecutor::execute(indexes_, q);
  ASSERT_EQ(r.detections.size(), 2u);
  EXPECT_EQ(r.detections[0].id, DetectionId(1));
  EXPECT_EQ(r.detections[1].id, DetectionId(4));
}

TEST(QueryModel, SpatialFootprints) {
  Query range = Query::range(QueryId(1), {{0, 0}, {5, 5}},
                             TimeInterval::all());
  EXPECT_TRUE(range.has_spatial_footprint());
  EXPECT_EQ(range.spatial_footprint(), (Rect{{0, 0}, {5, 5}}));

  Query circ =
      Query::circle_query(QueryId(2), {{5, 5}, 2.0}, TimeInterval::all());
  EXPECT_TRUE(circ.has_spatial_footprint());
  EXPECT_EQ(circ.spatial_footprint(), (Rect{{3, 3}, {7, 7}}));

  Query knn = Query::knn(QueryId(3), {0, 0}, 5, TimeInterval::all());
  EXPECT_FALSE(knn.has_spatial_footprint());
  Query traj = Query::trajectory(QueryId(4), ObjectId(1), TimeInterval::all());
  EXPECT_FALSE(traj.has_spatial_footprint());
}

TEST(ResultMerger, DedupsDuplicateDetections) {
  Query q = Query::range(QueryId(9), {{0, 0}, {100, 100}},
                         TimeInterval::all());
  ResultMerger merger(q);
  QueryResult a;
  a.query = q.id;
  a.detections = {make_detection(1, {1, 1}, 100),
                  make_detection(2, {2, 2}, 200)};
  QueryResult b;
  b.query = q.id;
  b.detections = {make_detection(2, {2, 2}, 200),   // duplicate
                  make_detection(3, {3, 3}, 50)};
  merger.add(a);
  merger.add(b);
  QueryResult merged = merger.take();
  ASSERT_EQ(merged.detections.size(), 3u);
  // Time-ordered.
  EXPECT_EQ(merged.detections[0].id, DetectionId(3));
  EXPECT_EQ(merged.detections[1].id, DetectionId(1));
  EXPECT_EQ(merged.detections[2].id, DetectionId(2));
}

TEST(ResultMerger, KnnKeepsGlobalTopK) {
  Query q = Query::knn(QueryId(9), {0, 0}, 2, TimeInterval::all());
  ResultMerger merger(q);
  QueryResult a;
  a.detections = {make_detection(1, {10, 0}, 0), make_detection(2, {1, 0}, 0)};
  QueryResult b;
  b.detections = {make_detection(3, {5, 0}, 0), make_detection(4, {20, 0}, 0)};
  merger.add(a);
  merger.add(b);
  QueryResult merged = merger.take();
  ASSERT_EQ(merged.detections.size(), 2u);
  EXPECT_EQ(merged.detections[0].id, DetectionId(2));  // distance 1
  EXPECT_EQ(merged.detections[1].id, DetectionId(3));  // distance 5
}

TEST(ResultMerger, SumsCounts) {
  Query q = Query::count(QueryId(9), {{0, 0}, {1, 1}}, TimeInterval::all(),
                         GroupBy::kCamera);
  ResultMerger merger(q);
  QueryResult a;
  a.counts = {{1, 5}, {2, 3}};
  QueryResult b;
  b.counts = {{2, 2}, {3, 7}};
  merger.add(a);
  merger.add(b);
  QueryResult merged = merger.take();
  EXPECT_EQ(merged.counts.at(1), 5u);
  EXPECT_EQ(merged.counts.at(2), 5u);
  EXPECT_EQ(merged.counts.at(3), 7u);
  EXPECT_EQ(merged.total_count(), 17u);
}

}  // namespace
}  // namespace stcn
