#include "trace/road_network.h"

#include <gtest/gtest.h>

#include <queue>
#include <set>

namespace stcn {
namespace {

RoadNetworkConfig small_config() {
  RoadNetworkConfig c;
  c.grid_cols = 8;
  c.grid_rows = 6;
  c.block_size_m = 100.0;
  c.removal_fraction = 0.15;
  c.seed = 11;
  return c;
}

std::size_t reachable_count(const RoadNetwork& net, RoadNodeIndex start) {
  std::set<RoadNodeIndex> visited{start};
  std::queue<RoadNodeIndex> frontier;
  frontier.push(start);
  while (!frontier.empty()) {
    RoadNodeIndex u = frontier.front();
    frontier.pop();
    for (RoadNodeIndex v : net.neighbors(u)) {
      if (visited.insert(v).second) frontier.push(v);
    }
  }
  return visited.size();
}

TEST(RoadNetwork, NodeCountAndPositions) {
  RoadNetwork net = RoadNetwork::build(small_config());
  EXPECT_EQ(net.node_count(), 48u);
  EXPECT_EQ(net.node_position(0), (Point{0, 0}));
  EXPECT_EQ(net.node_position(1), (Point{100, 0}));
  EXPECT_EQ(net.node_position(8), (Point{0, 100}));
}

TEST(RoadNetwork, StaysConnectedAfterRemoval) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    RoadNetworkConfig c = small_config();
    c.seed = seed;
    c.removal_fraction = 0.3;
    RoadNetwork net = RoadNetwork::build(c);
    EXPECT_EQ(reachable_count(net, 0), net.node_count())
        << "seed " << seed << " produced a disconnected network";
  }
}

TEST(RoadNetwork, RemovalActuallyRemovesEdges) {
  RoadNetworkConfig keep_all = small_config();
  keep_all.removal_fraction = 0.0;
  RoadNetworkConfig remove_some = small_config();
  remove_some.removal_fraction = 0.2;
  RoadNetwork full = RoadNetwork::build(keep_all);
  RoadNetwork pruned = RoadNetwork::build(remove_some);
  EXPECT_GT(full.edge_count(), pruned.edge_count());
  // Full grid: cols*(rows-1) + rows*(cols-1) edges.
  EXPECT_EQ(full.edge_count(), 8u * 5u + 6u * 7u);
}

TEST(RoadNetwork, AdjacencyIsSymmetric) {
  RoadNetwork net = RoadNetwork::build(small_config());
  for (std::size_t u = 0; u < net.node_count(); ++u) {
    for (RoadNodeIndex v : net.neighbors(static_cast<RoadNodeIndex>(u))) {
      const auto& back = net.neighbors(v);
      EXPECT_NE(std::find(back.begin(), back.end(),
                          static_cast<RoadNodeIndex>(u)),
                back.end());
    }
  }
}

TEST(RoadNetwork, ShortestPathEndpointsAndContinuity) {
  RoadNetwork net = RoadNetwork::build(small_config());
  auto path = net.shortest_path(0, static_cast<RoadNodeIndex>(
                                       net.node_count() - 1));
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), net.node_count() - 1);
  // Consecutive path nodes must be adjacent.
  for (std::size_t i = 1; i < path.size(); ++i) {
    const auto& nbrs = net.neighbors(path[i - 1]);
    EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), path[i]), nbrs.end());
  }
}

TEST(RoadNetwork, ShortestPathToSelf) {
  RoadNetwork net = RoadNetwork::build(small_config());
  auto path = net.shortest_path(5, 5);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 5u);
}

TEST(RoadNetwork, ShortestPathIsOptimalOnFullGrid) {
  RoadNetworkConfig c = small_config();
  c.removal_fraction = 0.0;
  RoadNetwork net = RoadNetwork::build(c);
  // On a full grid the shortest path between opposite corners has
  // manhattan-distance + 1 nodes.
  auto path = net.shortest_path(0, 47);  // (0,0) → (7,5)
  EXPECT_EQ(path.size(), 7u + 5u + 1u);
}

TEST(RoadNetwork, PathPolylineMatchesNodePositions) {
  RoadNetwork net = RoadNetwork::build(small_config());
  auto path = net.shortest_path(0, 10);
  Polyline line = net.path_polyline(path);
  ASSERT_EQ(line.points.size(), path.size());
  for (std::size_t i = 0; i < path.size(); ++i) {
    EXPECT_EQ(line.points[i], net.node_position(path[i]));
  }
}

TEST(RoadNetwork, BoundsCoverAllNodesWithMargin) {
  RoadNetwork net = RoadNetwork::build(small_config());
  Rect bounds = net.bounds(50.0);
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    EXPECT_TRUE(
        bounds.contains(net.node_position(static_cast<RoadNodeIndex>(i))));
  }
  EXPECT_LE(bounds.min.x, -50.0 + 1e-9);
  EXPECT_GE(bounds.max.x, 700.0 + 50.0 - 1e-9);
}

TEST(RoadNetwork, DeterministicForSeed) {
  RoadNetwork a = RoadNetwork::build(small_config());
  RoadNetwork b = RoadNetwork::build(small_config());
  ASSERT_EQ(a.node_count(), b.node_count());
  EXPECT_EQ(a.edge_count(), b.edge_count());
  for (std::size_t i = 0; i < a.node_count(); ++i) {
    EXPECT_EQ(a.neighbors(static_cast<RoadNodeIndex>(i)),
              b.neighbors(static_cast<RoadNodeIndex>(i)));
  }
}

TEST(RoadNetwork, RandomNodeInRange) {
  RoadNetwork net = RoadNetwork::build(small_config());
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(net.random_node(rng), net.node_count());
  }
}

}  // namespace
}  // namespace stcn
